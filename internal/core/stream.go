package core

import (
	"context"
	"fmt"
	"sync"

	"hyperq/internal/colbuf"
	"hyperq/internal/pgdb"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/xtra"
)

// RowSink receives one backend result set as a stream: a schema, then rows
// (typed or wire-text form depending on the backend), then the command tag.
// Implementations must tolerate the stream stopping early on error.
type RowSink interface {
	// Schema starts a result. hint, when >= 0, is the expected row count
	// (exact for the embedded engine, an estimate for wire backends).
	Schema(cols []BackendCol, hint int) error
	// Row delivers one row of engine-typed values (nil, bool, int64,
	// float64, string — the pgdb value vocabulary). The slice is only valid
	// during the call.
	Row(vals []any) error
	// TextRow delivers one row of PostgreSQL text-format cells. A nil cell
	// is SQL NULL; a non-nil empty cell is an empty string. The slices are
	// only valid during the call.
	TextRow(fields [][]byte) error
	// Tag delivers the command tag after the last row.
	Tag(tag string)
}

// StreamBackend is the typed, streaming result API (the columnar result
// pipeline). Backends that implement it deliver rows to the sink as they are
// produced instead of materializing a text BackendResult; Session prefers it
// when the columnar result path is configured.
type StreamBackend interface {
	ExecStream(ctx context.Context, sql string, sink RowSink) error
}

// TableSink builds a Q table from a streamed result using pooled column
// builders: cells append into typed slices chosen once per column from the
// schema, and Table finishes them as qval vectors without per-cell atom
// boxing. Cells whose runtime type doesn't match the column's mapped Q type
// fall back to the text rendering + text parse the materialized path uses,
// so both paths agree cell-for-cell by construction.
type TableSink struct {
	b       *colbuf.TableBuilder
	specs   []colbuf.Spec
	sqlType []string
	scratch []byte
	tag     string
}

var tableSinkPool = sync.Pool{New: func() any { return &TableSink{} }}

// GetTableSink returns a pooled sink ready for one ExecStream call.
func GetTableSink() *TableSink {
	return tableSinkPool.Get().(*TableSink)
}

// Release returns the sink (and its builder scratch) to their pools. Vectors
// already taken by Table are unaffected: the builder hands off column
// storage on Build.
func (s *TableSink) Release() {
	if s.b != nil {
		s.b.Release()
		s.b = nil
	}
	s.specs = s.specs[:0]
	s.sqlType = s.sqlType[:0]
	s.tag = ""
	tableSinkPool.Put(s)
}

// Schema implements RowSink.
func (s *TableSink) Schema(cols []BackendCol, hint int) error {
	if s.b == nil {
		s.b = colbuf.Get()
	}
	s.specs = s.specs[:0]
	s.sqlType = s.sqlType[:0]
	for _, c := range cols {
		s.specs = append(s.specs, colbuf.Spec{
			Name:    c.Name,
			QType:   xtra.QTypeForSQL(c.SQLType),
			Discard: c.Name == xtra.OrdCol || c.Name == "hq_rn",
		})
		s.sqlType = append(s.sqlType, c.SQLType)
	}
	s.b.Reset(s.specs, hint)
	return nil
}

// Row implements RowSink for engine-typed values.
func (s *TableSink) Row(vals []any) error {
	b := s.b
	for j, v := range vals {
		if v == nil {
			b.AppendNull(j)
			continue
		}
		var err error
		switch sp := &s.specs[j]; sp.QType {
		case qval.KBool:
			if x, ok := v.(bool); ok {
				b.AppendBool(j, x)
			} else {
				err = s.textCell(j, v)
			}
		case qval.KShort, qval.KInt, qval.KLong, qval.KDate, qval.KTime, qval.KTimestamp:
			if x, ok := v.(int64); ok {
				err = b.AppendInt(j, x)
			} else {
				err = s.textCell(j, v)
			}
		case qval.KReal, qval.KFloat:
			switch x := v.(type) {
			case float64:
				err = b.AppendFloat(j, x)
			case int64:
				err = b.AppendFloat(j, float64(x))
			default:
				err = s.textCell(j, v)
			}
		default:
			if x, ok := v.(string); ok {
				b.AppendSym(j, x)
			} else {
				err = s.textCell(j, v)
			}
		}
		if err != nil {
			return fmt.Errorf("column %s: %w", s.specs[j].Name, err)
		}
	}
	b.FinishRow()
	return nil
}

// textCell is the typed-mismatch fallback: render the engine value exactly
// as the text path would (pgdb.FormatValue) into reused scratch, then decode
// with the shared text parser.
func (s *TableSink) textCell(j int, v any) error {
	s.scratch = pgdb.AppendValue(s.scratch[:0], v, s.sqlType[j])
	return s.b.AppendText(j, s.scratch)
}

// TextRow implements RowSink for wire-text cells.
func (s *TableSink) TextRow(fields [][]byte) error {
	b := s.b
	for j, f := range fields {
		if f == nil {
			b.AppendNull(j)
			continue
		}
		if err := b.AppendText(j, f); err != nil {
			return fmt.Errorf("column %s: %w", s.specs[j].Name, err)
		}
	}
	b.FinishRow()
	return nil
}

// Tag implements RowSink.
func (s *TableSink) Tag(tag string) { s.tag = tag }

// CommandTag returns the streamed statement's command tag.
func (s *TableSink) CommandTag() string { return s.tag }

// Table finishes the built columns as a Q table (ownership of column
// storage transfers to the table; the sink can then be Released).
func (s *TableSink) Table() *qval.Table {
	names, data := s.b.Build()
	if data == nil {
		data = []qval.Value{}
	}
	return qval.NewTable(names, data)
}

// FeedResult streams a materialized embedded-engine result into a sink —
// the DirectBackend half of the columnar pipeline. The context is polled at
// the same 1024-row boundaries the engine uses during execution.
func FeedResult(ctx context.Context, res *pgdb.Result, sink RowSink) error {
	cols := make([]BackendCol, len(res.Cols))
	for j, c := range res.Cols {
		cols[j] = BackendCol{Name: c.Name, SQLType: c.Type}
	}
	if err := sink.Schema(cols, len(res.Rows)); err != nil {
		return err
	}
	for i, row := range res.Rows {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := sink.Row(row); err != nil {
			return err
		}
	}
	sink.Tag(res.Tag)
	return nil
}

// emptyCell marks a non-NULL empty text cell in replayed rows (a nil cell
// means NULL).
var emptyCell = []byte{}

// ReplayResult streams an already-materialized text result into a sink. It
// is the compatibility bridge for backends that only implement Exec.
func ReplayResult(res *BackendResult, sink RowSink) error {
	if err := sink.Schema(res.Cols, len(res.Rows)); err != nil {
		return err
	}
	fields := make([][]byte, len(res.Cols))
	for _, row := range res.Rows {
		for j := range row {
			f := &row[j]
			switch {
			case f.Null:
				fields[j] = nil
			case len(f.Text) == 0:
				fields[j] = emptyCell
			default:
				fields[j] = []byte(f.Text)
			}
		}
		if err := sink.TextRow(fields); err != nil {
			return err
		}
	}
	sink.Tag(res.Tag)
	return nil
}
