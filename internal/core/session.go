package core

import (
	"context"
	"fmt"
	"time"

	"hyperq/internal/binder"
	"hyperq/internal/mdi"
	"hyperq/internal/qcache"
	"hyperq/internal/qlang/ast"
	"hyperq/internal/qlang/parse"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/serializer"
	"hyperq/internal/xformer"
	"hyperq/internal/xtra"
)

// Materialization selects how variable assignments are materialized in the
// backend (paper §4.3): logical materialization uses views; physical
// materialization uses temporary tables — required when subsequent
// statements must observe side effects in situ.
type Materialization int

// Materialization modes.
const (
	// Physical creates CREATE TEMPORARY TABLE ... AS for assignments.
	Physical Materialization = iota
	// Logical creates views instead; cheaper but re-executes on reference.
	Logical
)

// ResultPath selects how backend results become Q tables.
type ResultPath int

// Result-path modes.
const (
	// ColumnarPath streams rows into pooled typed column builders
	// (StreamBackend) — the default. Backends without ExecStream fall back
	// to the text path transparently.
	ColumnarPath ResultPath = iota
	// TextPath materializes a text BackendResult and re-parses it via
	// ResultToQ — the compatibility fallback and differential oracle.
	TextPath
)

// Config tunes a platform session.
type Config struct {
	Xformer         xformer.Config
	Materialization Materialization
	// ResultPath selects the columnar streaming pipeline (default) or the
	// materialized text path for result conversion.
	ResultPath ResultPath
	// MDITTL is the metadata cache expiration (0 disables caching).
	MDITTL time.Duration
	// MDI, when set, is a shared (process-wide) metadata interface used
	// instead of a per-session one — the concurrent serving runtime shares
	// one MDI across all sessions. MDITTL is ignored when MDI is set.
	MDI *mdi.MDI
	// Cache, when set, is the shared query-translation cache consulted
	// before the translation pipeline (nil disables caching).
	Cache *qcache.Cache
}

// StageTiming records per-stage translation times — the quantities Figures
// 6 and 7 report.
type StageTiming struct {
	Parse     time.Duration
	Bind      time.Duration // algebrization incl. metadata lookup
	Xform     time.Duration // optimization
	Serialize time.Duration
}

// Translation returns the total translation time across all stages.
func (t StageTiming) Translation() time.Duration {
	return t.Parse + t.Bind + t.Xform + t.Serialize
}

// Add accumulates another timing.
func (t *StageTiming) Add(o StageTiming) {
	t.Parse += o.Parse
	t.Bind += o.Bind
	t.Xform += o.Xform
	t.Serialize += o.Serialize
}

// RunStats reports what one Run did: stage timings, execution time, and the
// SQL statements sent to the backend.
type RunStats struct {
	Stages  StageTiming
	Execute time.Duration
	SQLs    []string
	// CacheHit marks that the translation was served from the query cache,
	// skipping parse/bind/xform/serialize entirely.
	CacheHit bool
	// Saved is the per-stage translation cost the cache hit avoided — the
	// cost the original translation paid, recorded in the cache entry.
	Saved StageTiming
}

// Platform is the shared Hyper-Q state across sessions: the server-level
// variable scope (paper §3.2.3).
type Platform struct {
	Server *binder.ServerStore
}

// NewPlatform creates an empty platform.
func NewPlatform() *Platform {
	return &Platform{Server: binder.NewServerStore()}
}

// Session is one Q client connection through Hyper-Q: its scope hierarchy,
// its binder, Xformer, serializer and backend.
type Session struct {
	platform *Platform
	backend  Backend
	mdi      *mdi.MDI
	binder   *binder.Binder
	xf       *xformer.Xformer
	cache    *qcache.Cache
	cfg      Config
	tempN    int
}

// NewSession opens a session over a backend.
func (p *Platform) NewSession(b Backend, cfg Config) *Session {
	m := cfg.MDI
	if m == nil {
		opts := []mdi.Option{}
		if cfg.MDITTL != 0 {
			opts = append(opts, mdi.WithTTL(cfg.MDITTL))
		}
		m = mdi.New(b, opts...)
	}
	scopes := binder.NewScopes(p.Server, m)
	return &Session{
		platform: p,
		backend:  b,
		mdi:      m,
		binder:   binder.New(scopes),
		xf:       xformer.New(cfg.Xformer),
		cache:    cfg.Cache,
		cfg:      cfg,
	}
}

// MDI exposes the session's metadata interface (for cache statistics).
func (s *Session) MDI() *mdi.MDI { return s.mdi }

// Close destroys the session: per §3.2.3, session variables are promoted to
// the server scope as part of session-scope destruction.
func (s *Session) Close() error {
	s.scopes().DestroySession()
	return s.backend.Close()
}

// Run executes a complete Q request: parse, then per statement bind /
// transform / serialize / execute, returning the last statement's value.
// With a query cache configured, side-effect-free single-statement requests
// are served from (and populate) the cache, skipping every translation
// stage on a warm hit.
func (s *Session) Run(ctx context.Context, qsrc string) (qval.Value, *RunStats, error) {
	stats := &RunStats{}
	if e, ok := s.cachedTranslation(ctx, qsrc, stats); ok {
		v, err := s.execCached(ctx, e, stats)
		return v, stats, err
	}
	t0 := time.Now()
	prog, err := parse.Parse(qsrc)
	if err != nil {
		return nil, stats, err
	}
	stats.Stages.Parse += time.Since(t0)
	var last qval.Value = qval.Identity
	for _, stmt := range prog.Stmts {
		v, ret, err := s.execStatement(ctx, stmt, stats)
		if err != nil {
			return nil, stats, err
		}
		last = v
		if ret {
			break
		}
	}
	return last, stats, nil
}

// Translate performs translation only — the quantity Figure 6 measures —
// returning the SQL for the (single) final statement without executing the
// final query. Materializing assignments still execute, since later
// statements' binding depends on them (paper §4.3).
func (s *Session) Translate(ctx context.Context, qsrc string) (string, *RunStats, error) {
	stats := &RunStats{}
	if e, ok := s.cachedTranslation(ctx, qsrc, stats); ok && e.Kind == qcache.Select {
		return e.SQL, stats, nil
	} else if ok {
		// scalar entries don't satisfy Translate (parity with the uncached
		// path, which rejects statements without a relational plan)
		stats = &RunStats{}
	}
	t0 := time.Now()
	prog, err := parse.Parse(qsrc)
	if err != nil {
		return "", stats, err
	}
	stats.Stages.Parse += time.Since(t0)
	sql := ""
	for i, stmt := range prog.Stmts {
		if i < len(prog.Stmts)-1 {
			if _, _, err := s.execStatement(ctx, stmt, stats); err != nil {
				return "", stats, err
			}
			continue
		}
		sql, err = s.translateOne(ctx, stmt, stats)
		if err != nil {
			return "", stats, err
		}
	}
	return sql, stats, nil
}

// translateOne binds, transforms and serializes a single statement without
// executing it.
func (s *Session) translateOne(ctx context.Context, stmt ast.Node, stats *RunStats) (string, error) {
	t0 := time.Now()
	bound, err := s.binder.BindStatement(ctx, stmt)
	stats.Stages.Bind += time.Since(t0)
	if err != nil {
		return "", err
	}
	if bound.Rel == nil {
		return "", fmt.Errorf("statement %s does not translate to SQL", stmt.QString())
	}
	t1 := time.Now()
	root := s.xf.Apply(bound.Rel)
	stats.Stages.Xform += time.Since(t1)
	t2 := time.Now()
	sql, err := serializer.Serialize(root)
	stats.Stages.Serialize += time.Since(t2)
	return sql, err
}

// execStatement runs one statement through the full pipeline. The second
// return is true when the statement was an explicit function return.
func (s *Session) execStatement(ctx context.Context, stmt ast.Node, stats *RunStats) (qval.Value, bool, error) {
	// a canceled request stops between statements, before more backend work
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	// explicit return inside unrolled function bodies
	if ret, ok := stmt.(*ast.Return); ok {
		v, _, err := s.execStatement(ctx, ret.Expr, stats)
		return v, true, err
	}
	// function invocation: f[args] where f is a stored function — unrolled
	// by re-algebrizing the stored definition (paper §4.3)
	if ap, ok := stmt.(*ast.Apply); ok {
		if v, isVar := ap.Fn.(*ast.Var); isVar {
			def, err := s.scopes().Lookup(ctx, v.Name)
			if err == nil && def != nil && def.Kind == binder.KindFunction {
				val, err := s.unrollFunction(ctx, v.Name, def, ap.Args, stats)
				return val, false, err
			}
		}
	}
	t0 := time.Now()
	bound, err := s.binder.BindStatement(ctx, stmt)
	stats.Stages.Bind += time.Since(t0)
	if err != nil {
		return nil, false, err
	}
	switch {
	case bound.FuncDef != nil:
		if bound.Assign == "" {
			return qval.Identity, false, nil // anonymous lambda: nothing to do
		}
		def := *bound.FuncDef
		def.Name = bound.Assign
		if bound.Global {
			s.scopes().UpsertGlobal(&def)
		} else {
			s.scopes().Upsert(&def)
		}
		return qval.Identity, false, nil
	case bound.Scalar != nil:
		if bound.Assign != "" {
			def := &binder.VarDef{Name: bound.Assign, Kind: binder.KindScalar, Value: bound.Scalar}
			if bound.Global {
				s.scopes().UpsertGlobal(def)
			} else {
				s.scopes().Upsert(def)
			}
		}
		return bound.Scalar, false, nil
	case bound.ScalarExpr != nil:
		t2 := time.Now()
		sql, err := serializer.SerializeScalarSelect(bound.ScalarExpr)
		stats.Stages.Serialize += time.Since(t2)
		if err != nil {
			return nil, false, err
		}
		tbl, err := s.execToQ(ctx, sql, stats)
		if err != nil {
			return nil, false, err
		}
		var out qval.Value = qval.Identity
		if tbl.NumCols() == 1 && tbl.Len() == 1 {
			out = qval.Index(tbl.Data[0], 0)
		}
		if bound.Assign != "" {
			def := &binder.VarDef{Name: bound.Assign, Kind: binder.KindScalar, Value: out}
			if bound.Global {
				s.scopes().UpsertGlobal(def)
			} else {
				s.scopes().Upsert(def)
			}
		}
		return out, false, nil
	case bound.Rel != nil:
		t1 := time.Now()
		root := s.xf.Apply(bound.Rel)
		stats.Stages.Xform += time.Since(t1)
		t2 := time.Now()
		sql, err := serializer.Serialize(root)
		stats.Stages.Serialize += time.Since(t2)
		if err != nil {
			return nil, false, err
		}
		if bound.Assign != "" {
			return s.materialize(ctx, bound, root, sql, stats)
		}
		tbl, err := s.execToQ(ctx, sql, stats)
		if err != nil {
			return nil, false, err
		}
		// q's exec of a single column yields the bare vector, not a table
		if tpl, ok := stmt.(*ast.SQLTemplate); ok && tpl.Kind == ast.Exec && tbl.NumCols() == 1 {
			return tbl.Data[0], false, nil
		}
		return tbl, false, nil
	default:
		return qval.Identity, false, nil
	}
}

func (s *Session) scopes() *binder.Scopes { return s.binder.Scopes }

// execToQ runs one query on the backend and pivots the result into a Q
// table. On the (default) columnar path with a streaming-capable backend,
// rows flow into pooled typed column builders as they are produced; the
// text path — also taken when the backend only implements Exec —
// materializes a text result and re-parses it via ResultToQ.
func (s *Session) execToQ(ctx context.Context, sql string, stats *RunStats) (*qval.Table, error) {
	if s.cfg.ResultPath == ColumnarPath {
		if sb, ok := s.backend.(StreamBackend); ok {
			sink := GetTableSink()
			defer sink.Release()
			t0 := time.Now()
			err := sb.ExecStream(ctx, sql, sink)
			stats.Execute += time.Since(t0)
			stats.SQLs = append(stats.SQLs, sql)
			if err != nil {
				return nil, err
			}
			return sink.Table(), nil
		}
	}
	t0 := time.Now()
	res, err := s.backend.Exec(ctx, sql)
	stats.Execute += time.Since(t0)
	stats.SQLs = append(stats.SQLs, sql)
	if err != nil {
		return nil, err
	}
	return ResultToQ(res)
}

// cachedTranslation consults the query cache for qsrc, translating (once,
// under single-flight) and populating it on a miss when the request is
// cacheable. The bool reports whether a usable entry was obtained — callers
// fall back to the full pipeline otherwise. The cache key ties the entry to
// the exact variable-scope and metadata state it was translated under, so
// DDL and variable-store mutations invalidate implicitly.
func (s *Session) cachedTranslation(ctx context.Context, qsrc string, stats *RunStats) (*qcache.Entry, bool) {
	if s.cache == nil || s.scopes().InFunction() {
		return nil, false
	}
	key := qcache.Key{
		Query: qcache.Normalize(qsrc),
		Scope: s.scopes().Fingerprint(),
		Meta:  s.mdi.Generation(),
	}
	e, shared, err := s.cache.Do(ctx, key, func(ctx context.Context) (*qcache.Entry, error) {
		return s.translateCacheable(ctx, qsrc)
	})
	if err != nil || e == nil {
		// not cacheable (or the leader's translation failed): take the full
		// pipeline, which reproduces any error with proper attribution
		return nil, false
	}
	if shared {
		stats.CacheHit = true
		stats.Saved = timingFromCost(e.Cost)
	} else {
		stats.Stages = timingFromCost(e.Cost) // leader paid the full cost
	}
	return e, true
}

// translateCacheable runs the translation pipeline for requests whose
// translation is pure: a single statement, no assignment, no function
// invocation (unrolling executes side effects), producing either a
// relational plan or a backend-evaluated scalar. Anything else returns
// (nil, nil) so callers fall back to the ordinary pipeline.
func (s *Session) translateCacheable(ctx context.Context, qsrc string) (*qcache.Entry, error) {
	var cost qcache.Cost
	t0 := time.Now()
	prog, err := parse.Parse(qsrc)
	cost.Parse = time.Since(t0)
	if err != nil || len(prog.Stmts) != 1 {
		return nil, nil
	}
	stmt := prog.Stmts[0]
	if _, ok := stmt.(*ast.Return); ok {
		return nil, nil
	}
	if ap, ok := stmt.(*ast.Apply); ok {
		if v, isVar := ap.Fn.(*ast.Var); isVar {
			if def, err := s.scopes().Lookup(ctx, v.Name); err == nil && def != nil && def.Kind == binder.KindFunction {
				return nil, nil
			}
		}
	}
	t1 := time.Now()
	bound, err := s.binder.BindStatement(ctx, stmt)
	cost.Bind = time.Since(t1)
	if err != nil || bound.Assign != "" || bound.Global || bound.FuncDef != nil || bound.Scalar != nil {
		return nil, nil
	}
	switch {
	case bound.ScalarExpr != nil:
		t2 := time.Now()
		sql, err := serializer.SerializeScalarSelect(bound.ScalarExpr)
		cost.Serialize = time.Since(t2)
		if err != nil {
			return nil, nil
		}
		return &qcache.Entry{SQL: sql, Kind: qcache.ScalarSelect, Cost: cost}, nil
	case bound.Rel != nil:
		t2 := time.Now()
		root := s.xf.Apply(bound.Rel)
		cost.Xform = time.Since(t2)
		t3 := time.Now()
		sql, err := serializer.Serialize(root)
		cost.Serialize = time.Since(t3)
		if err != nil {
			return nil, nil
		}
		tpl, isTpl := stmt.(*ast.SQLTemplate)
		return &qcache.Entry{SQL: sql, IsExec: isTpl && tpl.Kind == ast.Exec, Cost: cost}, nil
	}
	return nil, nil
}

// execCached executes a cached translation, mirroring execStatement's
// result conversion for the cacheable statement shapes.
func (s *Session) execCached(ctx context.Context, e *qcache.Entry, stats *RunStats) (qval.Value, error) {
	tbl, err := s.execToQ(ctx, e.SQL, stats)
	if err != nil {
		return nil, err
	}
	if e.Kind == qcache.ScalarSelect {
		var out qval.Value = qval.Identity
		if tbl.NumCols() == 1 && tbl.Len() == 1 {
			out = qval.Index(tbl.Data[0], 0)
		}
		return out, nil
	}
	if e.IsExec && tbl.NumCols() == 1 {
		return tbl.Data[0], nil
	}
	return tbl, nil
}

func timingFromCost(c qcache.Cost) StageTiming {
	return StageTiming{Parse: c.Parse, Bind: c.Bind, Xform: c.Xform, Serialize: c.Serialize}
}

// materialize implements eager materialization of variable assignments
// (paper §4.3): physical (temporary table) or logical (view), and registers
// the variable in the appropriate scope so subsequent statements bind
// against it.
func (s *Session) materialize(ctx context.Context, bound *binder.Bound, root xtra.Node, sql string, stats *RunStats) (qval.Value, bool, error) {
	s.tempN++
	var backing, ddl string
	kind := binder.KindTable
	if s.cfg.Materialization == Logical && !s.scopes().InFunction() {
		backing = fmt.Sprintf("hq_view_%d", s.tempN)
		ddl = "CREATE VIEW " + backing + " AS " + sql
		kind = binder.KindView
	} else {
		backing = fmt.Sprintf("hq_temp_%d", s.tempN)
		ddl = "CREATE TEMPORARY TABLE " + backing + " AS " + sql
	}
	t0 := time.Now()
	_, err := s.backend.Exec(ctx, ddl)
	stats.Execute += time.Since(t0)
	stats.SQLs = append(stats.SQLs, ddl)
	if err != nil {
		return nil, false, err
	}
	meta := &mdi.TableMeta{Name: backing}
	for _, c := range root.Props().Cols {
		meta.Cols = append(meta.Cols, mdi.ColMeta{Name: c.Name, SQLType: c.SQLType, QType: c.QType})
		if c.Name == xtra.OrdCol {
			meta.HasOrdCol = true
		}
	}
	def := &binder.VarDef{Name: bound.Assign, Kind: kind, Meta: meta, Backing: backing}
	if bound.Global {
		s.scopes().UpsertGlobal(def)
	} else {
		s.scopes().Upsert(def)
	}
	return qval.Identity, false, nil
}

// unrollFunction re-algebrizes a stored function definition and executes its
// body with arguments bound in a fresh local scope (paper §4.3 and §5's
// "unrolling a large class of Q user-defined functions without the need to
// create user-defined functions in PG").
func (s *Session) unrollFunction(ctx context.Context, name string, def *binder.VarDef, args []ast.Node, stats *RunStats) (qval.Value, error) {
	t0 := time.Now()
	node, err := parse.ParseExpr(def.Source)
	stats.Stages.Parse += time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("re-algebrizing %s: %w", name, err)
	}
	lam, ok := node.(*ast.Lambda)
	if !ok {
		return nil, fmt.Errorf("'type (%s is not a function)", name)
	}
	if len(args) > len(lam.Params) {
		return nil, fmt.Errorf("'rank (%s takes %d arguments)", name, len(lam.Params))
	}
	// bind arguments as constants before entering the local scope
	argDefs := make([]*binder.VarDef, 0, len(args))
	for i, a := range args {
		if a == nil {
			return nil, fmt.Errorf("'nyi (projection of %s)", name)
		}
		ab, err := s.binder.BindStatement(ctx, a)
		if err != nil {
			return nil, err
		}
		switch {
		case ab.Scalar != nil:
			argDefs = append(argDefs, &binder.VarDef{Name: lam.Params[i], Kind: binder.KindScalar, Value: ab.Scalar})
		case ab.Rel != nil:
			// table-valued argument: materialize it and pass by reference
			root := s.xf.Apply(ab.Rel)
			sql, err := serializer.Serialize(root)
			if err != nil {
				return nil, err
			}
			s.tempN++
			backing := fmt.Sprintf("hq_temp_%d", s.tempN)
			t1 := time.Now()
			_, err = s.backend.Exec(ctx, "CREATE TEMPORARY TABLE "+backing+" AS "+sql)
			stats.Execute += time.Since(t1)
			stats.SQLs = append(stats.SQLs, "CREATE TEMPORARY TABLE "+backing+" AS "+sql)
			if err != nil {
				return nil, err
			}
			meta := &mdi.TableMeta{Name: backing}
			for _, c := range root.Props().Cols {
				meta.Cols = append(meta.Cols, mdi.ColMeta{Name: c.Name, SQLType: c.SQLType, QType: c.QType})
				if c.Name == xtra.OrdCol {
					meta.HasOrdCol = true
				}
			}
			argDefs = append(argDefs, &binder.VarDef{Name: lam.Params[i], Kind: binder.KindTable, Meta: meta, Backing: backing})
		default:
			return nil, fmt.Errorf("'type (argument %d of %s)", i, name)
		}
	}
	s.scopes().PushLocal()
	defer s.scopes().PopLocal()
	for _, d := range argDefs {
		s.scopes().Upsert(d)
	}
	var last qval.Value = qval.Identity
	for _, stmt := range lam.Body {
		v, ret, err := s.execStatement(ctx, stmt, stats)
		if err != nil {
			return nil, err
		}
		last = v
		if ret {
			return v, nil
		}
	}
	return last, nil
}
