package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"hyperq/internal/colbuf"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/xtra"
)

// ResultToQ pivots a row-oriented backend result into a column-oriented Q
// table (paper §4.2: Hyper-Q buffers the streamed rows, then extracts
// columns to form the single QIPC message). The implicit order column is
// stripped — it is translation plumbing, not application data.
func ResultToQ(res *BackendResult) (*qval.Table, error) {
	var cols []string
	var keep []int
	for j, c := range res.Cols {
		if c.Name == xtra.OrdCol || c.Name == "hq_rn" {
			continue
		}
		cols = append(cols, c.Name)
		keep = append(keep, j)
	}
	data := make([]qval.Value, len(keep))
	for k, j := range keep {
		col, err := columnToQ(res, j)
		if err != nil {
			return nil, fmt.Errorf("column %s: %w", res.Cols[j].Name, err)
		}
		data[k] = col
	}
	return qval.NewTable(cols, data), nil
}

func columnToQ(res *BackendResult, j int) (qval.Value, error) {
	qt := xtra.QTypeForSQL(res.Cols[j].SQLType)
	atoms := make([]qval.Value, len(res.Rows))
	for i, row := range res.Rows {
		f := row[j]
		if f.Null {
			atoms[i] = qval.Null(qt)
			continue
		}
		v, err := parseQAtom(f.Text, qt)
		if err != nil {
			return nil, err
		}
		atoms[i] = v
	}
	if len(atoms) == 0 {
		return qval.EmptyVec(qt), nil
	}
	return qval.FromAtoms(atoms), nil
}

// parseQAtom converts PostgreSQL text output into a Q atom of the mapped
// type.
func parseQAtom(text string, qt qval.Type) (qval.Value, error) {
	switch qt {
	case qval.KBool:
		return qval.Bool(text == "t" || text == "true" || text == "1"), nil
	case qval.KShort:
		n, err := strconv.ParseInt(text, 10, 16)
		if err != nil {
			return nil, err
		}
		return qval.Short(int16(n)), nil
	case qval.KInt:
		n, err := strconv.ParseInt(text, 10, 32)
		if err != nil {
			return nil, err
		}
		return qval.Int(int32(n)), nil
	case qval.KLong:
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, err
		}
		return qval.Long(n), nil
	case qval.KReal:
		f, err := strconv.ParseFloat(text, 32)
		if err != nil {
			return nil, err
		}
		return qval.Real(float32(f)), nil
	case qval.KFloat:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, err
		}
		return qval.Float(f), nil
	case qval.KDate:
		// colbuf shares these temporal parsers with the streaming pipeline,
		// so both result paths decode identically by construction (and the
		// time.Parse allocation churn is gone from this path too)
		d, err := colbuf.ParseDateText(text)
		if err != nil {
			return nil, err
		}
		return qval.Temporal{T: qval.KDate, V: d}, nil
	case qval.KTime:
		ms, err := colbuf.ParseTimeText(text)
		if err != nil {
			return nil, err
		}
		return qval.Temporal{T: qval.KTime, V: ms}, nil
	case qval.KTimestamp:
		ns, err := colbuf.ParseTimestampText(text)
		if err != nil {
			return nil, err
		}
		return qval.Temporal{T: qval.KTimestamp, V: ns}, nil
	default:
		return qval.Symbol(text), nil
	}
}

// QAtomToSQLText renders a Q atom as PostgreSQL text input for its mapped
// SQL type, used when loading Q tables into the backend.
func QAtomToSQLText(v qval.Value) (text string, null bool) {
	b, null := AppendQAtomSQLText(nil, v)
	return string(b), null
}

// AppendQAtomSQLText is QAtomToSQLText into a reusable scratch buffer: the
// rendering appends to dst, so bulk loaders avoid a string allocation per
// cell.
func AppendQAtomSQLText(dst []byte, v qval.Value) (text []byte, null bool) {
	if qval.IsNull(v) {
		return dst, true
	}
	switch x := v.(type) {
	case qval.Bool:
		if x {
			return append(dst, "true"...), false
		}
		return append(dst, "false"...), false
	case qval.Real:
		return appendFloatText(dst, float64(x)), false
	case qval.Float:
		return appendFloatText(dst, float64(x)), false
	case qval.Symbol:
		return append(dst, x...), false
	case qval.CharVec:
		return append(dst, x...), false
	case qval.Temporal:
		switch x.T {
		case qval.KDate:
			return qval.TimeFromDate(x.V).AppendFormat(dst, "2006-01-02"), false
		case qval.KTime:
			ms := x.V
			return fmt.Appendf(dst, "%02d:%02d:%02d.%03d", ms/3600000, ms/60000%60, ms/1000%60, ms%1000), false
		case qval.KTimestamp:
			return qval.TimeFromTimestamp(x.V).AppendFormat(dst, "2006-01-02 15:04:05.999999999"), false
		default:
			return fmt.Appendf(dst, "%v", x.V), false
		}
	default:
		s := v.String()
		s = strings.TrimSuffix(s, "f")
		s = strings.TrimSuffix(s, "i")
		s = strings.TrimSuffix(s, "h")
		s = strings.TrimSuffix(s, "e")
		return append(dst, s...), false
	}
}

// appendFloatText renders a float magnitude as PostgreSQL text input; Q's
// ±0w spellings are not valid SQL float input, PostgreSQL wants "Infinity".
func appendFloatText(dst []byte, f float64) []byte {
	switch {
	case math.IsInf(f, 1):
		return append(dst, "Infinity"...)
	case math.IsInf(f, -1):
		return append(dst, "-Infinity"...)
	default:
		return strconv.AppendFloat(dst, f, 'g', -1, 64)
	}
}
