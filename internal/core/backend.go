// Package core is the Hyper-Q platform (paper §3): it drives the query life
// cycle — parse, algebrize (bind), transform, serialize, execute, convert —
// over a pluggable backend, manages the variable-scope hierarchy and eager
// materialization of intermediate results (§4.3), and instruments every
// translation stage with the timers behind Figures 6 and 7.
package core

import (
	"context"
	"strconv"
	"strings"
	"time"

	"hyperq/internal/pgdb"
)

// Field is one backend result cell: text representation plus a null flag,
// mirroring the PG v3 DataRow encoding where NULL is length -1.
type Field struct {
	Null bool
	Text string
}

// BackendCol describes one result column from the backend.
type BackendCol struct {
	Name    string
	SQLType string
}

// BackendResult is a backend result set in text form — what arrives over the
// PG v3 wire before Hyper-Q pivots it into QIPC column format (§4.2).
type BackendResult struct {
	Cols []BackendCol
	Rows [][]Field
	Tag  string
}

// Backend abstracts the PostgreSQL-compatible database behind Hyper-Q. The
// in-process implementation runs the embedded pgdb engine directly; the
// networked implementation is the Gateway speaking PG v3 over TCP (§3.1).
// The context on every call is the request's: its deadline bounds the
// statement (mapped onto socket I/O by networked backends, polled at
// row-batch boundaries by the embedded engine) and its cancellation aborts
// execution with an error satisfying errors.Is(err, ctx.Err()).
type Backend interface {
	// Exec runs one SQL statement under ctx.
	Exec(ctx context.Context, sql string) (*BackendResult, error)
	// QueryCatalog runs a metadata query under ctx, returning text rows
	// (MDI use).
	QueryCatalog(ctx context.Context, sql string) ([][]string, error)
	// Close releases the backend connection/session.
	Close() error
}

// TypedBackend is implemented by backends that can return engine-typed
// results: values carrying their runtime Go types instead of wire text.
// The scatter-gather coordinator prefers it for aggregate partials — the
// text round-trip collapses value-dependent type refinement (an integer
// column holding a runtime float renders indistinguishably from an
// integer) and the engine's refinement is part of observable semantics.
type TypedBackend interface {
	ExecTyped(ctx context.Context, sql string) (*pgdb.Result, error)
}

// DirectBackend runs SQL against an embedded pgdb session in-process.
type DirectBackend struct {
	session *pgdb.Session
	// Delay injects artificial per-statement latency, used by benchmarks to
	// model a networked MPP backend.
	Delay time.Duration
}

// NewDirectBackend opens a session on an embedded database.
func NewDirectBackend(db *pgdb.DB) *DirectBackend {
	return &DirectBackend{session: db.NewSession()}
}

// Exec implements Backend. The artificial Delay models a networked
// backend's data motion, so cancellation interrupts it the way it would
// abort in-flight I/O.
func (b *DirectBackend) Exec(ctx context.Context, sql string) (*BackendResult, error) {
	if b.Delay > 0 {
		timer := time.NewTimer(b.Delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
	res, err := b.session.ExecContext(ctx, sql)
	if err != nil {
		return nil, err
	}
	return ToBackendResult(res), nil
}

// ExecStream implements StreamBackend: engine-typed values flow straight
// into the sink with no text rendering. The artificial Delay applies as in
// Exec.
func (b *DirectBackend) ExecStream(ctx context.Context, sql string, sink RowSink) error {
	if b.Delay > 0 {
		timer := time.NewTimer(b.Delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		}
	}
	res, err := b.session.ExecContext(ctx, sql)
	if err != nil {
		return err
	}
	return FeedResult(ctx, res, sink)
}

// ExecTyped implements TypedBackend: the engine result's Go values reach
// the caller untouched. The artificial Delay applies as in Exec.
func (b *DirectBackend) ExecTyped(ctx context.Context, sql string) (*pgdb.Result, error) {
	if b.Delay > 0 {
		timer := time.NewTimer(b.Delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
	return b.session.ExecContext(ctx, sql)
}

// QueryCatalog implements Backend.
func (b *DirectBackend) QueryCatalog(ctx context.Context, sql string) ([][]string, error) {
	res, err := b.session.ExecContext(ctx, sql)
	if err != nil {
		return nil, err
	}
	out := make([][]string, len(res.Rows))
	for i, row := range res.Rows {
		r := make([]string, len(row))
		for j, v := range row {
			r[j] = pgdb.FormatValue(v, res.Cols[j].Type)
		}
		out[i] = r
	}
	return out, nil
}

// Ping reports whether the backend session is usable (pool health checks).
// It bypasses the artificial Delay — a health probe models no data motion.
func (b *DirectBackend) Ping() error {
	_, err := b.session.Exec("SELECT 1")
	return err
}

// Close implements Backend.
func (b *DirectBackend) Close() error {
	b.session.Close()
	return nil
}

// ToBackendResult renders an embedded-engine result into the text form the
// materialized path consumes — the conversion the columnar pipeline's
// ExecStream avoids (kept as the fallback and as the benchmark baseline).
func ToBackendResult(res *pgdb.Result) *BackendResult {
	out := &BackendResult{Tag: res.Tag}
	for _, c := range res.Cols {
		out.Cols = append(out.Cols, BackendCol{Name: c.Name, SQLType: c.Type})
	}
	for _, row := range res.Rows {
		r := make([]Field, len(row))
		for j, v := range row {
			if v == nil {
				r[j] = Field{Null: true}
			} else {
				r[j] = Field{Text: pgdb.FormatValue(v, res.Cols[j].Type)}
			}
		}
		out.Rows = append(out.Rows, r)
	}
	return out
}

// RowsAffected parses the trailing count out of a command tag. Tags whose
// last word is not a count (e.g. "CREATE TABLE") report 0.
func RowsAffected(tag string) int {
	n, _ := ParseRowsAffected(tag)
	return n
}

// ParseRowsAffected parses the trailing count out of a command tag and
// reports whether the tag actually carried one, so callers that aggregate
// counts across backends (the shard layer summing per-shard DML tags) can
// distinguish "0 rows" from "no count at all".
func ParseRowsAffected(tag string) (int, bool) {
	parts := strings.Fields(tag)
	if len(parts) == 0 {
		return 0, false
	}
	n, err := strconv.Atoi(parts[len(parts)-1])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
