package core

import (
	"context"
	"strconv"
	"strings"

	"hyperq/internal/qlang/qval"
	"hyperq/internal/xtra"
)

// LoadQTable creates a backend table for a Q table and bulk-loads its rows.
// An explicit implicit-order column is added as the first column, giving the
// backend the ordering anchor Q semantics require (paper §2.2: "providing
// implicit ordering using SQL requires database schema changes"). The paper
// assumes data is loaded into the underlying system independently (§1); this
// loader is that independent path for examples, tests and benchmarks.
// Statements build in reused scratch buffers: one cell rendering and one
// INSERT per batch, not one string per cell.
func LoadQTable(ctx context.Context, b Backend, name string, t *qval.Table) error {
	if err := CreateQTable(ctx, b, name, t); err != nil {
		return err
	}
	return LoadQTableRows(ctx, b, name, t, 0, t.Len())
}

// CreateQTable drops and recreates the backend table for a Q table without
// loading any rows.
func CreateQTable(ctx context.Context, b Backend, name string, t *qval.Table) error {
	var defs []string
	defs = append(defs, xtra.OrdCol+" bigint")
	for i, c := range t.Cols {
		defs = append(defs, quoteIdent(c)+" "+xtra.SQLTypeFor(t.Data[i].Type()))
	}
	if _, err := b.Exec(ctx, "DROP TABLE IF EXISTS "+quoteIdent(name)); err != nil {
		return err
	}
	_, err := b.Exec(ctx, "CREATE TABLE "+quoteIdent(name)+" ("+strings.Join(defs, ", ")+")")
	return err
}

// LoadQTableRows bulk-inserts rows [lo, hi) of a Q table into an existing
// backend table. The implicit-order value of each row is its global index in
// t, so loading a table in stages produces exactly the rows a single
// LoadQTable call would.
func LoadQTableRows(ctx context.Context, b Backend, name string, t *qval.Table, lo, hi int) error {
	if hi > t.Len() {
		hi = t.Len()
	}
	const batch = 500
	prefix := "INSERT INTO " + quoteIdent(name) + " VALUES "
	var sb, cell []byte
	for bl := lo; bl < hi; bl += batch {
		bh := bl + batch
		if bh > hi {
			bh = hi
		}
		sb = append(sb[:0], prefix...)
		for r := bl; r < bh; r++ {
			if r > bl {
				sb = append(sb, ", "...)
			}
			sb = append(sb, '(')
			sb = strconv.AppendInt(sb, int64(r), 10)
			for c := range t.Cols {
				sb = append(sb, ", "...)
				sb, cell = appendSQLLiteral(sb, cell, qval.Index(t.Data[c], r))
			}
			sb = append(sb, ')')
		}
		if _, err := b.Exec(ctx, string(sb)); err != nil {
			return err
		}
	}
	return nil
}

// appendSQLLiteral appends the SQL literal spelling of a Q atom to dst,
// rendering the atom's text form into the reused cell scratch first. It
// returns both buffers (possibly regrown).
func appendSQLLiteral(dst, cell []byte, v qval.Value) ([]byte, []byte) {
	cell, null := AppendQAtomSQLText(cell[:0], v)
	if null {
		return append(dst, "NULL"...), cell
	}
	switch v.(type) {
	case qval.Symbol, qval.CharVec, qval.Char:
		dst = append(dst, '\'')
		dst = appendEscaped(dst, cell)
		return append(dst, '\''), cell
	case qval.Real, qval.Float:
		// infinities need the quoted-and-cast PostgreSQL spelling
		if string(cell) == "Infinity" || string(cell) == "-Infinity" {
			dst = append(dst, '\'')
			dst = append(dst, cell...)
			return append(dst, "'::double precision"...), cell
		}
		return append(dst, cell...), cell
	case qval.Temporal:
		t := v.(qval.Temporal)
		var cast string
		switch t.T {
		case qval.KDate:
			cast = "'::date"
		case qval.KTime:
			cast = "'::time"
		case qval.KTimestamp:
			cast = "'::timestamp"
		default:
			return append(dst, cell...), cell
		}
		dst = append(dst, '\'')
		dst = append(dst, cell...)
		return append(dst, cast...), cell
	case qval.Bool:
		if bool(v.(qval.Bool)) {
			return append(dst, "TRUE"...), cell
		}
		return append(dst, "FALSE"...), cell
	default:
		return append(dst, cell...), cell
	}
}

func quoteIdent(s string) string {
	plain := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c == '_' || (i > 0 && c >= '0' && c <= '9') {
			continue
		}
		plain = false
		break
	}
	if plain {
		return s
	}
	return `"` + s + `"`
}

// appendEscaped copies s into dst doubling single quotes.
func appendEscaped(dst, s []byte) []byte {
	for _, c := range s {
		if c == '\'' {
			dst = append(dst, '\'', '\'')
		} else {
			dst = append(dst, c)
		}
	}
	return dst
}
