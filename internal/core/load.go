package core

import (
	"context"
	"fmt"
	"strings"

	"hyperq/internal/qlang/qval"
	"hyperq/internal/xtra"
)

// LoadQTable creates a backend table for a Q table and bulk-loads its rows.
// An explicit implicit-order column is added as the first column, giving the
// backend the ordering anchor Q semantics require (paper §2.2: "providing
// implicit ordering using SQL requires database schema changes"). The paper
// assumes data is loaded into the underlying system independently (§1); this
// loader is that independent path for examples, tests and benchmarks.
func LoadQTable(ctx context.Context, b Backend, name string, t *qval.Table) error {
	var defs []string
	defs = append(defs, xtra.OrdCol+" bigint")
	for i, c := range t.Cols {
		defs = append(defs, quoteIdent(c)+" "+xtra.SQLTypeFor(t.Data[i].Type()))
	}
	if _, err := b.Exec(ctx, "DROP TABLE IF EXISTS "+quoteIdent(name)); err != nil {
		return err
	}
	if _, err := b.Exec(ctx, "CREATE TABLE "+quoteIdent(name)+" ("+strings.Join(defs, ", ")+")"); err != nil {
		return err
	}
	n := t.Len()
	const batch = 500
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		var rows []string
		for r := lo; r < hi; r++ {
			vals := make([]string, 0, len(t.Cols)+1)
			vals = append(vals, fmt.Sprint(r))
			for c := range t.Cols {
				vals = append(vals, sqlLiteral(qval.Index(t.Data[c], r)))
			}
			rows = append(rows, "("+strings.Join(vals, ", ")+")")
		}
		sql := "INSERT INTO " + quoteIdent(name) + " VALUES " + strings.Join(rows, ", ")
		if _, err := b.Exec(ctx, sql); err != nil {
			return err
		}
	}
	return nil
}

func sqlLiteral(v qval.Value) string {
	text, null := QAtomToSQLText(v)
	if null {
		return "NULL"
	}
	switch v.(type) {
	case qval.Symbol, qval.CharVec, qval.Char:
		return "'" + strings.ReplaceAll(text, "'", "''") + "'"
	case qval.Real, qval.Float:
		// infinities need the quoted-and-cast PostgreSQL spelling
		if text == "Infinity" || text == "-Infinity" {
			return "'" + text + "'::double precision"
		}
		return text
	case qval.Temporal:
		t := v.(qval.Temporal)
		switch t.T {
		case qval.KDate:
			return "'" + text + "'::date"
		case qval.KTime:
			return "'" + text + "'::time"
		case qval.KTimestamp:
			return "'" + text + "'::timestamp"
		default:
			return text
		}
	case qval.Bool:
		return strings.ToUpper(text)
	default:
		return text
	}
}

func quoteIdent(s string) string {
	plain := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c == '_' || (i > 0 && c >= '0' && c <= '9') {
			continue
		}
		plain = false
		break
	}
	if plain {
		return s
	}
	return `"` + s + `"`
}
