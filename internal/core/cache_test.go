package core

import (
	"sync"
	"testing"

	"hyperq/internal/pgdb"
	"hyperq/internal/qcache"
	"hyperq/internal/qlang/qval"
)

// newCachedStack is newStack plus a shared query cache.
func newCachedStack(t *testing.T) (*Platform, *Session, Backend, *qcache.Cache) {
	t.Helper()
	cache := qcache.New(64)
	p, s, b := newStack(t, Config{Cache: cache})
	return p, s, b, cache
}

func TestCacheWarmHitSkipsTranslation(t *testing.T) {
	_, s, _, cache := newCachedStack(t)
	const q = "select Price, Size from trades where Symbol=`GOOG"

	cold, stats1, err := s.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if stats1.CacheHit {
		t.Fatal("first run cannot be a cache hit")
	}
	if stats1.Stages.Translation() == 0 {
		t.Fatal("cold run should record translation cost")
	}

	warm, stats2, err := s.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !stats2.CacheHit {
		t.Fatal("second run should hit the cache")
	}
	if stats2.Stages.Translation() != 0 {
		t.Fatalf("warm run must skip every stage, got %+v", stats2.Stages)
	}
	if stats2.Saved.Translation() == 0 {
		t.Fatal("warm run should report the translation cost it saved")
	}
	if !qval.EqualValues(cold, warm) {
		t.Fatalf("cached result differs:\ncold: %v\nwarm: %v", cold, warm)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("cache stats = %+v", st)
	}
}

func TestCacheWhitespaceNormalization(t *testing.T) {
	_, s, _, cache := newCachedStack(t)
	if _, _, err := s.Run(ctx, "select Price from trades where Symbol=`IBM"); err != nil {
		t.Fatal(err)
	}
	_, stats, err := s.Run(ctx, "select   Price  from\ttrades  where Symbol=`IBM")
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CacheHit {
		t.Fatal("whitespace variants should share a cache entry")
	}
	if cache.Len() != 1 {
		t.Fatalf("entries = %d, want 1", cache.Len())
	}
}

func TestCacheInvalidatesOnSessionVariableChange(t *testing.T) {
	_, s, _, _ := newCachedStack(t)
	if _, _, err := s.Run(ctx, "cutoff: 100.5"); err != nil {
		t.Fatal(err)
	}
	const q = "select Price from trades where Price>cutoff"
	first := runQ(t, s, q)
	_, stats, err := s.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CacheHit {
		t.Fatal("repeat with unchanged scope should hit")
	}

	// changing the variable the query binds against must invalidate
	if _, _, err := s.Run(ctx, "cutoff: 150.5"); err != nil {
		t.Fatal(err)
	}
	second, stats2, err := s.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.CacheHit {
		t.Fatal("variable change must invalidate the cached translation")
	}
	tbl := second.(*qval.Table)
	if tbl.Len() >= first.Len() {
		t.Fatalf("re-translation did not observe the new cutoff: %d vs %d rows", tbl.Len(), first.Len())
	}
}

func TestCacheInvalidatesOnServerScopeChange(t *testing.T) {
	p, s, b, _ := newCachedStack(t)
	if _, _, err := s.Run(ctx, "lim:: 100.5"); err != nil {
		t.Fatal(err)
	}
	const q = "select Price from trades where Price>lim"
	runQ(t, s, q)

	// a second session mutating the server scope invalidates for everyone
	s2 := p.NewSession(b, Config{Cache: s.cache})
	defer s2.Close()
	if _, _, err := s2.Run(ctx, "lim:: 150.5"); err != nil {
		t.Fatal(err)
	}
	_, stats, err := s.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHit {
		t.Fatal("server-scope change must invalidate other sessions' entries")
	}
}

func TestCacheInvalidatesOnDDL(t *testing.T) {
	_, s, b, _ := newCachedStack(t)
	const q = "select from minidata"
	small := qval.NewTable([]string{"A"}, []qval.Value{qval.LongVec{1, 2}})
	if err := LoadQTable(ctx, b, "minidata", small); err != nil {
		t.Fatal(err)
	}
	first := runQ(t, s, q)
	if first.NumCols() != 1 {
		t.Fatalf("cols = %d", first.NumCols())
	}

	// DDL: replace the table with a wider schema, signal via the MDI
	if _, err := b.Exec(ctx, "DROP TABLE minidata"); err != nil {
		t.Fatal(err)
	}
	wide := qval.NewTable([]string{"A", "B"}, []qval.Value{qval.LongVec{1, 2}, qval.FloatVec{0.5, 1.5}})
	if err := LoadQTable(ctx, b, "minidata", wide); err != nil {
		t.Fatal(err)
	}
	s.MDI().InvalidateAll()

	second, stats, err := s.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHit {
		t.Fatal("DDL must invalidate the cached translation")
	}
	if tbl := second.(*qval.Table); tbl.NumCols() != 2 {
		t.Fatalf("re-translation did not observe the new schema: %d cols", tbl.NumCols())
	}
}

func TestCacheSharedAcrossSessions(t *testing.T) {
	p, s1, b, cache := newCachedStack(t)
	const q = "select max Price from trades"
	v1, stats1, err := s1.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if stats1.CacheHit {
		t.Fatal("first session run is cold")
	}

	s2 := p.NewSession(b, Config{Cache: cache})
	defer s2.Close()
	v2, stats2, err := s2.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !stats2.CacheHit {
		t.Fatal("a fresh session (empty session scope) should share the entry")
	}
	if !qval.EqualValues(v1, v2) {
		t.Fatalf("results differ: %v vs %v", v1, v2)
	}
}

func TestCachePrivateStateNotShared(t *testing.T) {
	// two sessions with identical-looking private histories must not
	// collide: their variables are backed by different temp tables
	db := pgdb.NewDB()
	loader := NewDirectBackend(db)
	trades := qval.NewTable([]string{"P"}, []qval.Value{qval.FloatVec{1, 2, 3}})
	quotes := qval.NewTable([]string{"P"}, []qval.Value{qval.FloatVec{10, 20}})
	if err := LoadQTable(ctx, loader, "trades", trades); err != nil {
		t.Fatal(err)
	}
	if err := LoadQTable(ctx, loader, "quotes", quotes); err != nil {
		t.Fatal(err)
	}
	cache := qcache.New(64)
	p := NewPlatform()
	s1 := p.NewSession(NewDirectBackend(db), Config{Cache: cache})
	defer s1.Close()
	s2 := p.NewSession(NewDirectBackend(db), Config{Cache: cache})
	defer s2.Close()

	if _, _, err := s1.Run(ctx, "x: select from trades"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.Run(ctx, "x: select from quotes"); err != nil {
		t.Fatal(err)
	}
	v1, _, err := s1.Run(ctx, "select sum P from x")
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := s2.Run(ctx, "select sum P from x")
	if err != nil {
		t.Fatal(err)
	}
	if qval.EqualValues(v1, v2) {
		t.Fatalf("sessions collided on private state: both = %v", v1)
	}
}

func TestCacheExecUnwrapPreserved(t *testing.T) {
	_, s, _, _ := newCachedStack(t)
	const q = "exec Price from trades where Symbol=`GOOG"
	cold, _, err := s.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cold.(qval.FloatVec); !ok {
		t.Fatalf("exec should yield a bare vector, got %T", cold)
	}
	warm, stats, err := s.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CacheHit {
		t.Fatal("want cache hit")
	}
	if _, ok := warm.(qval.FloatVec); !ok {
		t.Fatalf("cached exec lost its unwrap: %T", warm)
	}
	if !qval.EqualValues(cold, warm) {
		t.Fatal("cached exec result differs")
	}
}

func TestCacheScalarExprCached(t *testing.T) {
	_, s, _, cache := newCachedStack(t)
	const q = "1+2"
	cold, _, err := s.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	warm, stats, err := s.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	_ = cache
	if !qval.EqualValues(cold, warm) {
		t.Fatalf("scalar differs: %v vs %v", cold, warm)
	}
	_ = stats // constant folding may keep this off the backend; result parity is what matters
}

func TestCacheSkipsAssignments(t *testing.T) {
	_, s, _, cache := newCachedStack(t)
	if _, _, err := s.Run(ctx, "gg: select from trades where Symbol=`GOOG"); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Fatalf("assignments must not be cached, entries = %d", cache.Len())
	}
	// and the materialized variable still works
	tbl := runQ(t, s, "select from gg")
	if tbl.Len() == 0 {
		t.Fatal("materialized variable unusable")
	}
}

func TestCacheSkipsMultiStatement(t *testing.T) {
	_, s, _, cache := newCachedStack(t)
	if _, _, err := s.Run(ctx, "a: 1.0; select from trades where Price>a"); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Fatalf("multi-statement programs must not be cached, entries = %d", cache.Len())
	}
}

func TestTranslateUsesCache(t *testing.T) {
	_, s, _, _ := newCachedStack(t)
	const q = "select Price from trades where Symbol=`IBM"
	sql1, stats1, err := s.Translate(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if stats1.CacheHit {
		t.Fatal("cold translate")
	}
	sql2, stats2, err := s.Translate(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !stats2.CacheHit {
		t.Fatal("warm translate should hit")
	}
	if sql1 != sql2 {
		t.Fatalf("SQL differs:\n%s\n%s", sql1, sql2)
	}
	// Run and Translate share entries
	_, stats3, err := s.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !stats3.CacheHit {
		t.Fatal("Run should reuse the entry Translate created")
	}
}

func TestCacheConcurrentIdenticalQueriesTranslateOnce(t *testing.T) {
	// N sessions fire the same query concurrently; single-flight ensures
	// one translation, and every session gets the right rows
	db := pgdb.NewDB()
	loader := NewDirectBackend(db)
	trades := qval.NewTable([]string{"Symbol", "Price"}, []qval.Value{
		qval.SymbolVec{"GOOG", "IBM", "GOOG"}, qval.FloatVec{100, 150, 101},
	})
	if err := LoadQTable(ctx, loader, "trades", trades); err != nil {
		t.Fatal(err)
	}
	cache := qcache.New(64)
	p := NewPlatform()
	const q = "select Price from trades where Symbol=`GOOG"
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	lens := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := p.NewSession(NewDirectBackend(db), Config{Cache: cache})
			defer s.Close()
			v, _, err := s.Run(ctx, q)
			if err != nil {
				errs[i] = err
				return
			}
			lens[i] = v.(*qval.Table).Len()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if lens[i] != 2 {
			t.Fatalf("session %d got %d rows, want 2", i, lens[i])
		}
	}
	st := cache.Stats()
	if st.Misses != 1 {
		t.Fatalf("translations = %d (misses), want exactly 1; stats %+v", st.Misses, st)
	}
	if st.Hits+st.Dedups != n-1 {
		t.Fatalf("hits+dedups = %d, want %d; stats %+v", st.Hits+st.Dedups, n-1, st)
	}
}
