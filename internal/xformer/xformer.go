// Package xformer applies transformations to XTRA expressions before SQL
// serialization (paper §3.3). Rules fall into the paper's three categories:
//
//   - Correctness: NullSemantics replaces strict equality with IS NOT
//     DISTINCT FROM so SQL's three-valued logic reproduces Q's two-valued
//     null comparisons.
//   - Performance: ColumnPruning keeps only the columns each node actually
//     needs, preventing the serialized SQL from dragging unused columns of
//     wide tables through every subquery.
//   - Transparency: OrderEnforcement maintains Q's ordered-list semantics —
//     injecting implicit order columns via window functions where missing,
//     propagating min(ordcol) through grouping, adding a final Sort, and
//     removing ordering requirements under scalar aggregation.
//
// Rules can be toggled individually, which the ablation benchmarks use.
package xformer

import (
	"hyperq/internal/qlang/qval"
	"hyperq/internal/xtra"
)

// Rule is one transformation.
type Rule interface {
	// Name identifies the rule in stats and configuration.
	Name() string
	// Apply rewrites the tree, returning the (possibly new) root and
	// whether anything changed.
	Apply(root xtra.Node) (xtra.Node, bool)
}

// Stats counts rule firings.
type Stats struct {
	Fired map[string]int
}

// Xformer runs an ordered list of rules.
type Xformer struct {
	rules []Rule
	stats Stats
}

// Config toggles individual rules; the zero value enables everything.
type Config struct {
	DisableNullSemantics bool
	DisableColumnPruning bool
	DisableOrdering      bool
}

// New builds an Xformer with the standard rule set.
func New(cfg Config) *Xformer {
	x := &Xformer{stats: Stats{Fired: map[string]int{}}}
	if !cfg.DisableNullSemantics {
		x.rules = append(x.rules, &nullSemantics{})
	}
	if !cfg.DisableOrdering {
		x.rules = append(x.rules, &orderEnforcement{})
	}
	if !cfg.DisableColumnPruning {
		x.rules = append(x.rules, &columnPruning{})
	}
	return x
}

// Apply runs all rules in order and returns the transformed tree.
func (x *Xformer) Apply(root xtra.Node) xtra.Node {
	for _, r := range x.rules {
		var fired bool
		root, fired = r.Apply(root)
		if fired {
			x.stats.Fired[r.Name()]++
		}
	}
	return root
}

// Stats returns firing counts per rule.
func (x *Xformer) Stats() Stats { return x.stats }

// ---------- Correctness: 2-valued null semantics ----------

type nullSemantics struct{}

func (*nullSemantics) Name() string { return "NullSemantics" }

// Apply rewrites every strict equality (and Q's type-strict match ~) in
// scalar expressions to the null-safe IS [NOT] DISTINCT FROM form.
func (r *nullSemantics) Apply(root xtra.Node) (xtra.Node, bool) {
	fired := false
	xtra.Walk(root, func(n xtra.Node) bool {
		switch op := n.(type) {
		case *xtra.Filter:
			op.Pred = rewriteNullSafe(op.Pred, &fired)
		case *xtra.Project:
			for i := range op.Exprs {
				op.Exprs[i].Expr = rewriteNullSafe(op.Exprs[i].Expr, &fired)
			}
		case *xtra.GroupAgg:
			for i := range op.Keys {
				op.Keys[i].Expr = rewriteNullSafe(op.Keys[i].Expr, &fired)
			}
			for i := range op.Aggs {
				op.Aggs[i].Expr = rewriteNullSafe(op.Aggs[i].Expr, &fired)
			}
		case *xtra.Join:
			if op.Extra != nil {
				op.Extra = rewriteNullSafe(op.Extra, &fired)
			}
		}
		return true
	})
	return root, fired
}

func rewriteNullSafe(s xtra.Scalar, fired *bool) xtra.Scalar {
	switch x := s.(type) {
	case *xtra.FnApp:
		for i := range x.Args {
			x.Args[i] = rewriteNullSafe(x.Args[i], fired)
		}
		switch x.Op {
		case "=", "~":
			*fired = true
			return &xtra.FnApp{Op: "indf", Args: x.Args, Typ: qval.KBool}
		case "<>":
			*fired = true
			return &xtra.FnApp{Op: "idf", Args: x.Args, Typ: qval.KBool}
		case "<", ">", "<=", ">=":
			// Q's ordered comparisons are also two-valued: nulls sort below
			// every value of their type, so 0N<5 is 1b where SQL goes unknown
			*fired = true
			qop := map[string]string{"<": "qlt", ">": "qgt", "<=": "qle", ">=": "qge"}[x.Op]
			return &xtra.FnApp{Op: qop, Args: x.Args, Typ: qval.KBool}
		}
		return x
	case *xtra.AggCall:
		if x.Arg != nil {
			x.Arg = rewriteNullSafe(x.Arg, fired)
		}
		return x
	case *xtra.ListExpr:
		for i := range x.Items {
			x.Items[i] = rewriteNullSafe(x.Items[i], fired)
		}
		return x
	default:
		return s
	}
}

// ---------- Transparency: order enforcement ----------

type orderEnforcement struct{}

func (*orderEnforcement) Name() string { return "OrderEnforcement" }

// Apply maintains Q ordered-list semantics:
//
//  1. Inputs that lack an implicit order column get one injected via a
//     window function (ROW_NUMBER() OVER ()).
//  2. GroupAgg nodes propagate the group's first-appearance position as
//     min(ordcol), giving grouped results q's by-group ordering.
//  3. The plan root gets an explicit Sort on its order column — unless the
//     root is a scalar aggregation, where the Xformer removes the ordering
//     requirement (paper §3.3's example).
func (r *orderEnforcement) Apply(root xtra.Node) (xtra.Node, bool) {
	fired := false
	root = injectOrder(root, &fired)
	// root ordering requirement
	if g, ok := root.(*xtra.GroupAgg); ok && len(g.Keys) == 0 {
		// scalar aggregation: order of the (single-row) result is moot;
		// also remove ordering below it (handled by not adding Sort)
		return root, fired
	}
	if oc := root.Props().OrderCol; oc != "" {
		if _, already := root.(*xtra.Sort); !already {
			srt := &xtra.Sort{Input: root, Keys: []xtra.SortKey{{Col: oc}}}
			srt.P = *root.Props()
			fired = true
			return srt, fired
		}
	}
	return root, fired
}

// injectOrder rewrites bottom-up ensuring ordered inputs where q requires
// them.
func injectOrder(n xtra.Node, fired *bool) xtra.Node {
	switch op := n.(type) {
	case *xtra.Get:
		if op.P.OrderCol == "" {
			*fired = true
			return wrapWithRowNumber(op)
		}
		return op
	case *xtra.Filter:
		op.Input = injectOrder(op.Input, fired)
		op.P.OrderCol = op.Input.Props().OrderCol
		if oc := op.P.OrderCol; oc != "" {
			ensureCol(&op.P, op.Input.Props(), oc)
		}
		return op
	case *xtra.Project:
		op.Input = injectOrder(op.Input, fired)
		if oc := op.Input.Props().OrderCol; oc != "" {
			if _, ok := op.P.Col(oc); !ok {
				if c, exists := op.Input.Props().Col(oc); exists {
					op.Exprs = append(op.Exprs, xtra.NamedExpr{Name: oc, Expr: &xtra.ColRef{Name: oc, Typ: c.QType}})
					op.P.Cols = append(op.P.Cols, c)
					*fired = true
				}
			}
			op.P.OrderCol = oc
		}
		return op
	case *xtra.GroupAgg:
		op.Input = injectOrder(op.Input, fired)
		if len(op.Keys) > 0 {
			if ic := op.Input.Props().OrderCol; ic != "" {
				if _, ok := op.P.Col(xtra.OrdCol); !ok {
					inCol, _ := op.Input.Props().Col(ic)
					op.Aggs = append(op.Aggs, xtra.NamedExpr{
						Name: xtra.OrdCol,
						Expr: &xtra.AggCall{Fn: "min", Arg: &xtra.ColRef{Name: ic, Typ: inCol.QType}, Typ: inCol.QType},
					})
					op.P.Cols = append(op.P.Cols, xtra.Col{Name: xtra.OrdCol, QType: inCol.QType, SQLType: xtra.SQLTypeFor(inCol.QType)})
					op.P.OrderCol = xtra.OrdCol
					*fired = true
				}
			}
		}
		return op
	case *xtra.AsOfJoin:
		op.L = injectOrder(op.L, fired)
		op.R = injectOrder(op.R, fired)
		if op.L.Props().OrderCol == "" {
			op.L = wrapWithRowNumber(op.L)
			*fired = true
		}
		op.P.OrderCol = op.L.Props().OrderCol
		if oc := op.P.OrderCol; oc != "" {
			ensureCol(&op.P, op.L.Props(), oc)
		}
		return op
	case *xtra.Join:
		op.L = injectOrder(op.L, fired)
		op.R = injectOrder(op.R, fired)
		op.P.OrderCol = op.L.Props().OrderCol
		if oc := op.P.OrderCol; oc != "" {
			ensureCol(&op.P, op.L.Props(), oc)
		}
		return op
	case *xtra.Union:
		op.L = injectOrder(op.L, fired)
		op.R = injectOrder(op.R, fired)
		lo, ro := op.L.Props().OrderCol, op.R.Props().OrderCol
		if lo != "" && ro != "" {
			op.P.OrderCol = lo
			ensureCol(&op.P, op.L.Props(), lo)
		}
		return op
	case *xtra.Sort:
		op.Input = injectOrder(op.Input, fired)
		return op
	case *xtra.Limit:
		op.Input = injectOrder(op.Input, fired)
		op.P.OrderCol = op.Input.Props().OrderCol
		return op
	case *xtra.Window:
		op.Input = injectOrder(op.Input, fired)
		return op
	default:
		return n
	}
}

func ensureCol(p *xtra.Props, from *xtra.Props, name string) {
	if _, ok := p.Col(name); ok {
		return
	}
	if c, ok := from.Col(name); ok {
		p.Cols = append(p.Cols, c)
	}
}

// wrapWithRowNumber injects the implicit order column via a window function
// (paper §3.3: "The Xformer may also generate implicit order columns by
// injecting window functions").
func wrapWithRowNumber(input xtra.Node) xtra.Node {
	w := &xtra.Window{
		Input: input,
		Funcs: []xtra.WindowFunc{{Name: xtra.OrdCol, Fn: "row_number"}},
	}
	w.P.Cols = append(w.P.Cols, input.Props().Cols...)
	w.P.Cols = append(w.P.Cols, xtra.Col{Name: xtra.OrdCol, QType: qval.KLong, SQLType: "bigint"})
	w.P.OrderCol = xtra.OrdCol
	w.P.PreservesOrder = true
	return w
}

// ---------- Performance: column pruning ----------

type columnPruning struct{}

func (*columnPruning) Name() string { return "ColumnPruning" }

// Apply performs top-down required-column analysis and prunes the column
// lists of Get and Project nodes, so the serialized SQL carries only needed
// columns — the optimization §3.3 describes for wide tables.
func (r *columnPruning) Apply(root xtra.Node) (xtra.Node, bool) {
	fired := false
	// the root needs all of its output columns
	need := map[string]bool{}
	for _, c := range root.Props().Cols {
		need[c.Name] = true
	}
	prune(root, need, &fired)
	return root, fired
}

func prune(n xtra.Node, need map[string]bool, fired *bool) {
	switch op := n.(type) {
	case *xtra.Get:
		var kept []xtra.Col
		for _, c := range op.P.Cols {
			if need[c.Name] {
				kept = append(kept, c)
			}
		}
		if len(kept) < len(op.P.Cols) && len(kept) > 0 {
			op.P.Cols = kept
			*fired = true
		}
	case *xtra.Window:
		childNeed := copyNeed(need)
		for _, f := range op.Funcs {
			delete(childNeed, f.Name)
			if f.Arg != nil {
				addScalarCols(f.Arg, childNeed)
			}
			for _, p := range f.PartitionBy {
				childNeed[p] = true
			}
			for _, o := range f.OrderBy {
				childNeed[o.Col] = true
			}
		}
		prune(op.Input, childNeed, fired)
	case *xtra.Filter:
		childNeed := copyNeed(need)
		addScalarCols(op.Pred, childNeed)
		if op.P.OrderCol != "" {
			childNeed[op.P.OrderCol] = true
		}
		// filter passes through its input columns; keep only needed
		var kept []xtra.Col
		for _, c := range op.P.Cols {
			if childNeed[c.Name] {
				kept = append(kept, c)
			}
		}
		if len(kept) > 0 && len(kept) < len(op.P.Cols) {
			op.P.Cols = kept
			*fired = true
		}
		prune(op.Input, childNeed, fired)
	case *xtra.Project:
		childNeed := map[string]bool{}
		var keptExprs []xtra.NamedExpr
		var keptCols []xtra.Col
		for i, e := range op.Exprs {
			if need[e.Name] || e.Name == op.P.OrderCol {
				keptExprs = append(keptExprs, e)
				keptCols = append(keptCols, op.P.Cols[i])
				addScalarCols(e.Expr, childNeed)
			}
		}
		if len(keptExprs) > 0 && len(keptExprs) < len(op.Exprs) {
			op.Exprs = keptExprs
			op.P.Cols = keptCols
			*fired = true
		} else {
			for _, e := range op.Exprs {
				addScalarCols(e.Expr, childNeed)
			}
		}
		if ic := op.Input.Props().OrderCol; ic != "" {
			childNeed[ic] = true
		}
		prune(op.Input, childNeed, fired)
	case *xtra.GroupAgg:
		childNeed := map[string]bool{}
		for _, k := range op.Keys {
			addScalarCols(k.Expr, childNeed)
		}
		for _, a := range op.Aggs {
			addScalarCols(a.Expr, childNeed)
		}
		if ic := op.Input.Props().OrderCol; ic != "" {
			childNeed[ic] = true
		}
		prune(op.Input, childNeed, fired)
	case *xtra.Join:
		lNeed, rNeed := map[string]bool{}, map[string]bool{}
		for _, c := range op.L.Props().Cols {
			if need[c.Name] {
				lNeed[c.Name] = true
			}
		}
		for _, c := range op.R.Props().Cols {
			if need[c.Name] {
				rNeed[c.Name] = true
			}
		}
		for _, c := range op.EqCols {
			lNeed[c] = true
			rNeed[c] = true
		}
		if op.Extra != nil {
			addScalarCols(op.Extra, lNeed)
			addScalarCols(op.Extra, rNeed)
		}
		if oc := op.L.Props().OrderCol; oc != "" {
			lNeed[oc] = true
		}
		shrinkProps(&op.P, func(name string) bool { return need[name] || lNeed[name] || rNeed[name] }, fired)
		prune(op.L, lNeed, fired)
		prune(op.R, rNeed, fired)
	case *xtra.AsOfJoin:
		lNeed, rNeed := map[string]bool{}, map[string]bool{}
		for _, c := range op.L.Props().Cols {
			if need[c.Name] {
				lNeed[c.Name] = true
			}
		}
		for _, c := range op.R.Props().Cols {
			if need[c.Name] {
				rNeed[c.Name] = true
			}
		}
		for _, c := range op.EqCols {
			lNeed[c] = true
			rNeed[c] = true
		}
		lNeed[op.TimeCol] = true
		rNeed[op.TimeCol] = true
		if oc := op.L.Props().OrderCol; oc != "" {
			lNeed[oc] = true
		}
		shrinkProps(&op.P, func(name string) bool { return need[name] || lNeed[name] || rNeed[name] }, fired)
		prune(op.L, lNeed, fired)
		prune(op.R, rNeed, fired)
	case *xtra.Union:
		lNeed, rNeed := map[string]bool{}, map[string]bool{}
		for _, c := range op.L.Props().Cols {
			if need[c.Name] || c.Name == op.L.Props().OrderCol {
				lNeed[c.Name] = true
			}
		}
		for _, c := range op.R.Props().Cols {
			if need[c.Name] || c.Name == op.R.Props().OrderCol {
				rNeed[c.Name] = true
			}
		}
		prune(op.L, lNeed, fired)
		prune(op.R, rNeed, fired)
	case *xtra.Sort:
		childNeed := copyNeed(need)
		for _, k := range op.Keys {
			childNeed[k.Col] = true
		}
		prune(op.Input, childNeed, fired)
	case *xtra.Limit:
		prune(op.Input, copyNeed(need), fired)
	}
}

func copyNeed(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func addScalarCols(s xtra.Scalar, need map[string]bool) {
	switch x := s.(type) {
	case *xtra.ColRef:
		need[x.Name] = true
	case *xtra.FnApp:
		for _, a := range x.Args {
			addScalarCols(a, need)
		}
	case *xtra.AggCall:
		if x.Arg != nil {
			addScalarCols(x.Arg, need)
		}
	case *xtra.ListExpr:
		for _, a := range x.Items {
			addScalarCols(a, need)
		}
	}
}

// shrinkProps drops output columns that fail keep, recording a firing.
func shrinkProps(p *xtra.Props, keep func(string) bool, fired *bool) {
	var kept []xtra.Col
	for _, c := range p.Cols {
		if keep(c.Name) || c.Name == p.OrderCol {
			kept = append(kept, c)
		}
	}
	if len(kept) > 0 && len(kept) < len(p.Cols) {
		p.Cols = kept
		*fired = true
	}
}
