package xformer

import (
	"testing"

	"hyperq/internal/qlang/qval"
	"hyperq/internal/xtra"
)

func tradesGet(withOrd bool) *xtra.Get {
	g := &xtra.Get{Table: "trades"}
	if withOrd {
		g.P.Cols = append(g.P.Cols, xtra.Col{Name: xtra.OrdCol, QType: qval.KLong, SQLType: "bigint"})
		g.P.OrderCol = xtra.OrdCol
	}
	g.P.Cols = append(g.P.Cols,
		xtra.Col{Name: "Symbol", QType: qval.KSymbol, SQLType: "varchar"},
		xtra.Col{Name: "Price", QType: qval.KFloat, SQLType: "double precision"},
		xtra.Col{Name: "Size", QType: qval.KLong, SQLType: "bigint"},
	)
	g.P.PreservesOrder = true
	return g
}

func eqPred(col string, v qval.Value) xtra.Scalar {
	return &xtra.FnApp{Op: "=", Typ: qval.KBool, Args: []xtra.Scalar{
		&xtra.ColRef{Name: col, Typ: qval.KSymbol},
		&xtra.ConstExpr{Val: v},
	}}
}

func TestNullSemanticsRewritesEquality(t *testing.T) {
	g := tradesGet(true)
	f := &xtra.Filter{Input: g, Pred: eqPred("Symbol", qval.Symbol("GOOG"))}
	f.P = g.P
	x := New(Config{DisableOrdering: true, DisableColumnPruning: true})
	root := x.Apply(f)
	pred := root.(*xtra.Filter).Pred.(*xtra.FnApp)
	if pred.Op != "indf" {
		t.Fatalf("pred op = %q, want indf (IS NOT DISTINCT FROM)", pred.Op)
	}
	if x.Stats().Fired["NullSemantics"] != 1 {
		t.Fatalf("stats = %v", x.Stats().Fired)
	}
}

func TestNullSemanticsCanBeDisabled(t *testing.T) {
	g := tradesGet(true)
	f := &xtra.Filter{Input: g, Pred: eqPred("Symbol", qval.Symbol("GOOG"))}
	f.P = g.P
	x := New(Config{DisableNullSemantics: true, DisableOrdering: true, DisableColumnPruning: true})
	root := x.Apply(f)
	if root.(*xtra.Filter).Pred.(*xtra.FnApp).Op != "=" {
		t.Fatal("disabled rule still rewrote")
	}
}

func TestOrderInjectionForUnorderedGet(t *testing.T) {
	// a table without ordcol gets a ROW_NUMBER window injected (§3.3)
	g := tradesGet(false)
	x := New(Config{DisableNullSemantics: true, DisableColumnPruning: true})
	root := x.Apply(g)
	srt, ok := root.(*xtra.Sort)
	if !ok {
		t.Fatalf("root = %T, want Sort", root)
	}
	w, ok := srt.Input.(*xtra.Window)
	if !ok {
		t.Fatalf("sort input = %T, want Window", srt.Input)
	}
	if len(w.Funcs) != 1 || w.Funcs[0].Fn != "row_number" || w.Funcs[0].Name != xtra.OrdCol {
		t.Fatalf("window funcs = %+v", w.Funcs)
	}
}

func TestRootSortAddedForOrderedPlan(t *testing.T) {
	g := tradesGet(true)
	x := New(Config{DisableNullSemantics: true, DisableColumnPruning: true})
	root := x.Apply(g)
	srt, ok := root.(*xtra.Sort)
	if !ok || srt.Keys[0].Col != xtra.OrdCol {
		t.Fatalf("root = %T", root)
	}
}

func TestScalarAggregationDropsOrderingRequirement(t *testing.T) {
	// paper §3.3: a scalar aggregation on top removes the inner ordering
	g := tradesGet(true)
	agg := &xtra.GroupAgg{Input: g}
	agg.Aggs = append(agg.Aggs, xtra.NamedExpr{Name: "mx",
		Expr: &xtra.AggCall{Fn: "max", Arg: &xtra.ColRef{Name: "Price", Typ: qval.KFloat}, Typ: qval.KFloat}})
	agg.P.Cols = []xtra.Col{{Name: "mx", QType: qval.KFloat, SQLType: "double precision"}}
	x := New(Config{DisableNullSemantics: true, DisableColumnPruning: true})
	root := x.Apply(agg)
	if _, isSort := root.(*xtra.Sort); isSort {
		t.Fatal("scalar aggregation must not be wrapped in Sort")
	}
}

func TestGroupedAggGetsMinOrdcol(t *testing.T) {
	g := tradesGet(true)
	agg := &xtra.GroupAgg{Input: g}
	agg.Keys = append(agg.Keys, xtra.NamedExpr{Name: "Symbol",
		Expr: &xtra.ColRef{Name: "Symbol", Typ: qval.KSymbol}})
	agg.Aggs = append(agg.Aggs, xtra.NamedExpr{Name: "mx",
		Expr: &xtra.AggCall{Fn: "max", Arg: &xtra.ColRef{Name: "Price", Typ: qval.KFloat}, Typ: qval.KFloat}})
	agg.P.Cols = []xtra.Col{
		{Name: "Symbol", QType: qval.KSymbol, SQLType: "varchar"},
		{Name: "mx", QType: qval.KFloat, SQLType: "double precision"},
	}
	x := New(Config{DisableNullSemantics: true, DisableColumnPruning: true})
	root := x.Apply(agg)
	srt, ok := root.(*xtra.Sort)
	if !ok {
		t.Fatalf("grouped plan root = %T", root)
	}
	inner := srt.Input.(*xtra.GroupAgg)
	found := false
	for _, a := range inner.Aggs {
		if a.Name == xtra.OrdCol {
			if ac, ok := a.Expr.(*xtra.AggCall); ok && ac.Fn == "min" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("grouped agg should carry min(ordcol) for first-appearance ordering")
	}
}

func TestColumnPruningOnGetUnderProject(t *testing.T) {
	g := tradesGet(true)
	p := &xtra.Project{Input: g}
	p.Exprs = []xtra.NamedExpr{{Name: "Price", Expr: &xtra.ColRef{Name: "Price", Typ: qval.KFloat}}}
	p.P.Cols = []xtra.Col{{Name: "Price", QType: qval.KFloat, SQLType: "double precision"}}
	p.P.OrderCol = xtra.OrdCol // pretend ordering already plumbed
	p.Exprs = append(p.Exprs, xtra.NamedExpr{Name: xtra.OrdCol, Expr: &xtra.ColRef{Name: xtra.OrdCol, Typ: qval.KLong}})
	p.P.Cols = append(p.P.Cols, xtra.Col{Name: xtra.OrdCol, QType: qval.KLong, SQLType: "bigint"})
	x := New(Config{DisableNullSemantics: true, DisableOrdering: true})
	x.Apply(p)
	if len(g.P.Cols) != 2 { // Price + ordcol
		t.Fatalf("get cols after pruning = %v", g.P.ColNames())
	}
	if _, ok := g.P.Col("Symbol"); ok {
		t.Fatal("Symbol should be pruned")
	}
	if _, ok := g.P.Col(xtra.OrdCol); !ok {
		t.Fatal("order column must survive pruning")
	}
}

func TestPruningKeepsFilterColumns(t *testing.T) {
	g := tradesGet(true)
	f := &xtra.Filter{Input: g, Pred: eqPred("Symbol", qval.Symbol("IBM"))}
	f.P = g.P
	p := &xtra.Project{Input: f}
	p.Exprs = []xtra.NamedExpr{{Name: "Price", Expr: &xtra.ColRef{Name: "Price", Typ: qval.KFloat}}}
	p.P.Cols = []xtra.Col{{Name: "Price", QType: qval.KFloat, SQLType: "double precision"}}
	x := New(Config{DisableNullSemantics: true, DisableOrdering: true})
	x.Apply(p)
	if _, ok := g.P.Col("Symbol"); !ok {
		t.Fatal("filter column must survive pruning of the scan")
	}
	if _, ok := g.P.Col("Size"); ok {
		t.Fatal("unused column should be pruned")
	}
}

func TestAllRulesComposeWithoutPanic(t *testing.T) {
	g := tradesGet(false)
	f := &xtra.Filter{Input: g, Pred: eqPred("Symbol", qval.Symbol("A"))}
	f.P = g.P
	x := New(Config{})
	root := x.Apply(f)
	if root == nil {
		t.Fatal("nil root")
	}
	// the composed plan must still expose an order column at the root
	if _, isSort := root.(*xtra.Sort); !isSort {
		t.Fatalf("root = %T", root)
	}
}
