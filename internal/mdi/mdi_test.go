package mdi

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyperq/internal/qlang/qval"
)

type countingCatalog struct {
	calls int
	fail  bool
}

func (c *countingCatalog) QueryCatalog(_ context.Context, sql string) ([][]string, error) {
	c.calls++
	if c.fail {
		return nil, fmt.Errorf("backend down")
	}
	if strings.Contains(sql, "'trades'") {
		return [][]string{
			{"ordcol", "bigint"},
			{"Symbol", "varchar"},
			{"Price", "double precision"},
		}, nil
	}
	return nil, nil
}

func TestLookupBuildsMeta(t *testing.T) {
	cat := &countingCatalog{}
	m := New(cat)
	meta, err := m.LookupTable(context.Background(), "trades")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Name != "trades" || len(meta.Cols) != 3 || !meta.HasOrdCol {
		t.Fatalf("meta = %+v", meta)
	}
	if meta.Cols[2].QType != qval.KFloat {
		t.Fatalf("Price QType = %v", meta.Cols[2].QType)
	}
	if len(meta.DataCols()) != 2 {
		t.Fatalf("DataCols = %v", meta.DataCols())
	}
}

func TestCacheHitsAvoidRoundTrips(t *testing.T) {
	cat := &countingCatalog{}
	m := New(cat, WithTTL(time.Minute))
	for i := 0; i < 5; i++ {
		if _, err := m.LookupTable(context.Background(), "trades"); err != nil {
			t.Fatal(err)
		}
	}
	if cat.calls != 1 {
		t.Fatalf("catalog round trips = %d, want 1", cat.calls)
	}
	st := m.Stats()
	if st.Lookups != 5 || st.Hits != 4 || st.Misses != 1 || st.CatalogRTs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheExpiration(t *testing.T) {
	cat := &countingCatalog{}
	now := time.Unix(0, 0)
	m := New(cat, WithTTL(time.Minute), WithClock(func() time.Time { return now }))
	m.LookupTable(context.Background(), "trades")
	now = now.Add(30 * time.Second)
	m.LookupTable(context.Background(), "trades") // still fresh
	if cat.calls != 1 {
		t.Fatalf("calls = %d", cat.calls)
	}
	now = now.Add(2 * time.Minute) // expired
	m.LookupTable(context.Background(), "trades")
	if cat.calls != 2 {
		t.Fatalf("calls after expiry = %d", cat.calls)
	}
}

func TestExplicitInvalidation(t *testing.T) {
	cat := &countingCatalog{}
	m := New(cat, WithTTL(time.Hour))
	m.LookupTable(context.Background(), "trades")
	m.Invalidate("trades")
	m.LookupTable(context.Background(), "trades")
	if cat.calls != 2 {
		t.Fatalf("calls = %d, invalidation ignored", cat.calls)
	}
	m.InvalidateAll()
	m.LookupTable(context.Background(), "trades")
	if cat.calls != 3 {
		t.Fatalf("calls = %d, InvalidateAll ignored", cat.calls)
	}
}

func TestUnknownTable(t *testing.T) {
	m := New(&countingCatalog{})
	if _, err := m.LookupTable(context.Background(), "nope"); err == nil {
		t.Fatal("unknown relation should error")
	}
}

func TestBackendErrorPropagates(t *testing.T) {
	m := New(&countingCatalog{fail: true})
	if _, err := m.LookupTable(context.Background(), "trades"); err == nil {
		t.Fatal("backend failure should propagate")
	}
}

func TestSQLInjectionEscaped(t *testing.T) {
	cat := &countingCatalog{}
	m := New(cat)
	// must not panic or produce a broken query; just a not-found
	if _, err := m.LookupTable(context.Background(), "x'; DROP TABLE trades; --"); err == nil {
		t.Fatal("weird name should not resolve")
	}
}

func TestLookupScalar(t *testing.T) {
	v, err := LookupScalar("42", qval.KLong)
	if err != nil || !qval.EqualValues(v, qval.Long(42)) {
		t.Fatalf("long = %v %v", v, err)
	}
	v, err = LookupScalar("2.5", qval.KFloat)
	if err != nil || !qval.EqualValues(v, qval.Float(2.5)) {
		t.Fatalf("float = %v %v", v, err)
	}
	v, _ = LookupScalar("GOOG", qval.KSymbol)
	if !qval.EqualValues(v, qval.Symbol("GOOG")) {
		t.Fatalf("symbol = %v", v)
	}
}

// raceCatalog is a concurrency-safe catalog for the race tests.
type raceCatalog struct {
	calls atomic.Int64
}

func (c *raceCatalog) QueryCatalog(_ context.Context, sql string) ([][]string, error) {
	c.calls.Add(1)
	for _, name := range []string{"trades", "quotes", "daily", "refdata"} {
		if strings.Contains(sql, "'"+name+"'") {
			return [][]string{
				{"Symbol", "varchar"},
				{"Price", "double precision"},
			}, nil
		}
	}
	return nil, nil
}

// TestConcurrentLookupAndInvalidate exercises the MDI the way the serving
// runtime does — one shared instance, many sessions — under the race
// detector: concurrent lookups, invalidations and stats reads.
func TestConcurrentLookupAndInvalidate(t *testing.T) {
	cat := &raceCatalog{}
	m := New(cat)
	names := []string{"trades", "quotes", "daily", "refdata"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := names[(g+i)%len(names)]
				switch i % 10 {
				case 7:
					m.Invalidate(name)
				case 8:
					m.InvalidateAll()
				case 9:
					m.Stats()
					m.Generation()
				default:
					meta, err := m.LookupTable(context.Background(), name)
					if err != nil {
						t.Errorf("lookup %s: %v", name, err)
						return
					}
					if len(meta.Cols) != 2 {
						t.Errorf("lookup %s: %d cols", name, len(meta.Cols))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := m.Stats()
	if st.Lookups == 0 || st.Hits == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGenerationBumpsOnInvalidation(t *testing.T) {
	m := New(&raceCatalog{})
	g0 := m.Generation()
	if _, err := m.LookupTable(context.Background(), "trades"); err != nil {
		t.Fatal(err)
	}
	if m.Generation() != g0 {
		t.Fatal("plain lookups must not bump the generation")
	}
	m.Invalidate("trades")
	if m.Generation() != g0+1 {
		t.Fatal("Invalidate should bump the generation")
	}
	m.InvalidateAll()
	if m.Generation() != g0+2 {
		t.Fatal("InvalidateAll should bump the generation")
	}
}
