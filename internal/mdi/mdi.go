// Package mdi implements Hyper-Q's MetaData Interface (paper §3.2.3 and
// Figure 3): the bottom of the variable-scope hierarchy, through which the
// binder resolves table and function definitions by querying the backend
// PostgreSQL catalog. Because metadata changes rarely, the MDI offers a
// configurable cache with an expiration time and explicit invalidation
// (paper §6: "Hyper-Q provides a configurable metadata caching mechanism
// with configurable invalidation policies and cache expiration time"; the
// experiments run with caching enabled).
package mdi

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hyperq/internal/xtra"

	"hyperq/internal/qlang/qval"
)

// ColMeta describes one column of a backend table.
type ColMeta struct {
	Name    string
	SQLType string
	QType   qval.Type
}

// TableMeta is the metadata the binder needs to bind a q_var to xtra_get.
type TableMeta struct {
	Name      string
	Cols      []ColMeta
	HasOrdCol bool // the table carries Hyper-Q's implicit order column
}

// DataCols returns the columns excluding the implicit order column.
func (t *TableMeta) DataCols() []ColMeta {
	out := make([]ColMeta, 0, len(t.Cols))
	for _, c := range t.Cols {
		if c.Name == xtra.OrdCol {
			continue
		}
		out = append(out, c)
	}
	return out
}

// CatalogQuerier executes a catalog query against the backend and returns
// rows of text values — in the full stack this is the Gateway running SQL
// over the PG v3 protocol; in-process it is a pgdb session.
type CatalogQuerier interface {
	QueryCatalog(ctx context.Context, sql string) ([][]string, error)
}

// Stats reports cache effectiveness, used by the metadata-cache benchmark.
type Stats struct {
	Lookups    int64
	Hits       int64
	Misses     int64
	CatalogRTs int64 // round trips issued to the backend catalog
}

// MDI resolves table metadata with caching. It is safe for concurrent use:
// the serving runtime shares one MDI across all sessions of a process, so
// concurrent lookups take a read lock on the hot (cached) path and stats
// are kept in atomics.
type MDI struct {
	q   CatalogQuerier
	ttl time.Duration
	now func() time.Time

	mu    sync.RWMutex
	cache map[string]cacheEntry

	lookups, hits, misses, catalogRTs atomic.Int64
	// gen counts explicit invalidations (DDL signals); it is part of the
	// query-cache key, so translations bound against stale metadata are
	// orphaned the moment the schema changes.
	gen atomic.Uint64
}

type cacheEntry struct {
	meta    *TableMeta
	fetched time.Time
}

// Option configures an MDI.
type Option func(*MDI)

// WithTTL sets the cache expiration time; zero disables caching.
func WithTTL(ttl time.Duration) Option {
	return func(m *MDI) { m.ttl = ttl }
}

// WithClock injects a clock for tests.
func WithClock(now func() time.Time) Option {
	return func(m *MDI) { m.now = now }
}

// New builds an MDI over a catalog querier. The default TTL is 5 minutes,
// matching "typically, metadata do not have frequent updates" (§6).
func New(q CatalogQuerier, opts ...Option) *MDI {
	m := &MDI{q: q, ttl: 5 * time.Minute, now: time.Now, cache: map[string]cacheEntry{}}
	for _, o := range opts {
		o(m)
	}
	return m
}

// LookupTable resolves a backend table's metadata, serving from cache when
// fresh. A miss issues a catalog round trip (an information_schema query)
// under the request context.
func (m *MDI) LookupTable(ctx context.Context, name string) (*TableMeta, error) {
	m.lookups.Add(1)
	m.mu.RLock()
	e, ok := m.cache[name]
	m.mu.RUnlock()
	if ok && m.ttl > 0 && m.now().Sub(e.fetched) < m.ttl {
		m.hits.Add(1)
		return e.meta, nil
	}
	m.misses.Add(1)
	m.catalogRTs.Add(1)

	sql := fmt.Sprintf(
		"SELECT column_name, data_type FROM information_schema.columns WHERE table_name = '%s' ORDER BY ordinal_position",
		escapeSQLString(name))
	rows, err := m.q.QueryCatalog(ctx, sql)
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("mdi: relation %q not found in backend catalog", name)
	}
	meta := &TableMeta{Name: name}
	for _, r := range rows {
		if len(r) < 2 {
			return nil, fmt.Errorf("mdi: malformed catalog row %v", r)
		}
		col := ColMeta{Name: r[0], SQLType: r[1], QType: xtra.QTypeForSQL(r[1])}
		if col.Name == xtra.OrdCol {
			meta.HasOrdCol = true
		}
		meta.Cols = append(meta.Cols, col)
	}
	m.mu.Lock()
	m.cache[name] = cacheEntry{meta: meta, fetched: m.now()}
	m.mu.Unlock()
	return meta, nil
}

// Invalidate drops one table's cached metadata (e.g. after DDL).
func (m *MDI) Invalidate(name string) {
	m.mu.Lock()
	delete(m.cache, name)
	m.mu.Unlock()
	m.gen.Add(1)
}

// InvalidateAll clears the cache.
func (m *MDI) InvalidateAll() {
	m.mu.Lock()
	m.cache = map[string]cacheEntry{}
	m.mu.Unlock()
	m.gen.Add(1)
}

// Generation returns the invalidation counter — the metadata-version
// component of the query-translation cache key.
func (m *MDI) Generation() uint64 { return m.gen.Load() }

// Stats returns a snapshot of cache statistics.
func (m *MDI) Stats() Stats {
	return Stats{
		Lookups:    m.lookups.Load(),
		Hits:       m.hits.Load(),
		Misses:     m.misses.Load(),
		CatalogRTs: m.catalogRTs.Load(),
	}
}

// LookupScalar parses a text catalog value into a typed Q atom; used when
// server-scope scalar variables are materialized in a backend table.
func LookupScalar(text string, t qval.Type) (qval.Value, error) {
	switch t {
	case qval.KLong:
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, err
		}
		return qval.Long(n), nil
	case qval.KFloat:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, err
		}
		return qval.Float(f), nil
	case qval.KSymbol:
		return qval.Symbol(text), nil
	default:
		return qval.CharVec(text), nil
	}
}

func escapeSQLString(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'')
		}
		out = append(out, s[i])
	}
	return string(out)
}
