package sidebyside

import (
	"errors"
	"strings"

	"hyperq/internal/binder"
	"hyperq/internal/pgdb"
	"hyperq/internal/qlang/qval"
)

// ErrClass buckets an error from either engine into a coarse category so
// that "both sides errored" only counts as agreement when they rejected the
// query for the same kind of reason (paper §5: the side-by-side framework
// must not let a missing feature on one side mask a real bug on the other).
//
//   - "unsupported": the engine does not implement the construct (kdb+ 'nyi,
//     serializer gaps, PostgreSQL 0A000/42883)
//   - "name": an unknown table, column or variable
//   - "runtime": a semantic error on a supported construct ('type, 'rank,
//     'length, division errors, cast failures, ...)
type ErrClass string

const (
	ClassNone        ErrClass = ""            // no error
	ClassUnsupported ErrClass = "unsupported" // feature gap
	ClassName        ErrClass = "name"        // unknown identifier
	ClassRuntime     ErrClass = "runtime"     // semantic/runtime failure
)

// qRuntimeCodes are kdb+'s terse error names that signal a semantic error on
// a supported construct, as opposed to a bare unknown identifier.
var qRuntimeCodes = map[string]bool{
	"type": true, "length": true, "rank": true, "domain": true,
	"mismatch": true, "limit": true, "value": true, "assign": true,
	"stop": true, "wsfull": true, "par": true, "splay": true,
	"increment": true, "cast": true,
}

// Classify maps an error from either engine to its ErrClass. It unwraps
// through fmt.Errorf("%w") chains to the typed errors each layer produces.
func Classify(err error) ErrClass {
	if err == nil {
		return ClassNone
	}
	var be *binder.BindError
	if errors.As(err, &be) {
		switch {
		case be.Code == "nyi":
			return ClassUnsupported
		case qRuntimeCodes[be.Code]:
			return ClassRuntime
		default:
			// binder reports unknown names with the name itself as the code
			return ClassName
		}
	}
	var pe *pgdb.Error
	if errors.As(err, &pe) {
		switch pe.Code {
		case "0A000", "42883": // feature_not_supported, undefined_function
			return ClassUnsupported
		case "42P01", "42703": // undefined_table, undefined_column
			return ClassName
		default:
			return ClassRuntime
		}
	}
	var qe *qval.QError
	if errors.As(err, &qe) {
		code := qe.Msg
		if i := strings.IndexAny(code, " :"); i >= 0 {
			code = code[:i]
		}
		switch {
		case code == "nyi":
			return ClassUnsupported
		case qRuntimeCodes[code]:
			return ClassRuntime
		default:
			// kdb+ reports unknown names as 'name — the message is the
			// identifier itself
			return ClassName
		}
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "nyi") || strings.Contains(msg, "serializer:") ||
		strings.Contains(msg, "does not translate"):
		return ClassUnsupported
	case strings.Contains(msg, "not a defined variable") ||
		strings.Contains(msg, "neither a column"):
		return ClassName
	default:
		return ClassRuntime
	}
}
