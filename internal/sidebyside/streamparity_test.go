package sidebyside

import (
	"bytes"
	"context"
	"net"
	"testing"

	"hyperq/internal/core"
	"hyperq/internal/gateway"
	"hyperq/internal/pgdb"
	"hyperq/internal/qgen"
	"hyperq/internal/wire/pgv3"
	"hyperq/internal/wire/qipc"
)

// The columnar result pipeline and the retained text path must be
// observationally identical: for any query, the QIPC encoding of the result
// must agree byte for byte. These tests drive the qdiff corpus and a seeded
// generated stream through both paths, over both backend shapes — the
// embedded DirectBackend (typed values into builders) and a loopback PG v3
// gateway (wire text into builders).

// pathStack is one Hyper-Q session pinned to a result path, over its own
// freshly loaded database.
type pathStack struct {
	session *core.Session
	cleanup func()
}

// newPathStack loads ds into a fresh pgdb and opens a session with the given
// result path over the requested backend kind ("direct" or "pgv3").
func newPathStack(t *testing.T, ctx context.Context, ds *qgen.Dataset, kind string, path core.ResultPath) *pathStack {
	t.Helper()
	db := pgdb.NewDB()
	loader := core.NewDirectBackend(db)
	for _, name := range ds.Names() {
		tbl, ok := ds.Tables[name]
		if !ok {
			continue
		}
		if err := core.LoadQTable(ctx, loader, name, tbl); err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
	}
	var backend core.Backend = loader
	cleanup := func() {}
	if kind == "pgv3" {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go pgdb.Serve(context.Background(), l, db, pgdb.AuthConfig{Method: pgv3.AuthMethodTrust})
		gw, err := gateway.Dial(ctx, l.Addr().String(), "hq", "", "db")
		if err != nil {
			l.Close()
			t.Fatal(err)
		}
		backend = gw
		cleanup = func() {
			gw.Close()
			l.Close()
		}
	}
	s := core.NewPlatform().NewSession(backend, core.Config{ResultPath: path})
	stackCleanup := cleanup
	return &pathStack{session: s, cleanup: func() {
		s.Close()
		stackCleanup()
	}}
}

// runEncoded evaluates q and returns the QIPC bytes of its result.
func (ps *pathStack) runEncoded(t *testing.T, ctx context.Context, q string) ([]byte, error) {
	t.Helper()
	v, _, err := ps.session.Run(ctx, q)
	if err != nil {
		return nil, err
	}
	b, err := qipc.EncodeValue(v)
	if err != nil {
		t.Fatalf("encode result of %q: %v", q, err)
	}
	return b, nil
}

// assertPathsAgree runs one query through both stacks and requires identical
// outcomes: both error, or both succeed with byte-identical QIPC encodings.
func assertPathsAgree(t *testing.T, ctx context.Context, col, txt *pathStack, q string) {
	t.Helper()
	cb, cerr := col.runEncoded(t, ctx, q)
	tb, terr := txt.runEncoded(t, ctx, q)
	switch {
	case (cerr == nil) != (terr == nil):
		t.Errorf("path error divergence on %q: columnar=%v text=%v", q, cerr, terr)
	case cerr == nil && !bytes.Equal(cb, tb):
		t.Errorf("QIPC bytes diverge on %q: columnar %d bytes, text %d bytes", q, len(cb), len(tb))
	}
}

var streamParityBackends = []string{"direct", "pgv3"}

// TestStreamParityCorpus replays every checked-in qdiff reproducer through
// the columnar pipeline and the text fallback on both backend shapes. Each
// entry once exposed a semantic edge case (NaN, infinities, nulls, negative
// zero...), which makes the corpus a sharp oracle for cell conversion.
func TestStreamParityCorpus(t *testing.T) {
	entries, err := LoadCorpus("testdata/qdiff")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no corpus entries under testdata/qdiff")
	}
	ctx := context.Background()
	for _, kind := range streamParityBackends {
		for _, e := range entries {
			t.Run(kind+"/"+e.Name, func(t *testing.T) {
				ds, err := qgen.DecodeDataset(e.Tables)
				if err != nil {
					t.Fatal(err)
				}
				col := newPathStack(t, ctx, ds, kind, core.ColumnarPath)
				defer col.cleanup()
				txt := newPathStack(t, ctx, ds, kind, core.TextPath)
				defer txt.cleanup()
				assertPathsAgree(t, ctx, col, txt, e.Query)
			})
		}
	}
}

// TestFuzzTextFallbackPath runs a seeded qdiff stream with the text result
// path pinned, keeping the fallback verified against the kdb+ reference even
// though sessions default to the columnar pipeline.
func TestFuzzTextFallbackPath(t *testing.T) {
	rep, err := Fuzz(context.Background(), FuzzConfig{Seed: 7, N: 150, ResultPath: core.TextPath})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matches != rep.N {
		t.Errorf("text path: %d of %d queries matched", rep.Matches, rep.N)
	}
	for _, c := range rep.Mismatches {
		t.Errorf("text path, iteration %d [%s]: %s\n  diffs: %v", c.Iteration, c.Class, c.Query, c.Diffs)
	}
}

// TestStreamParityFuzz drives a seeded generated query stream through both
// result paths in lockstep. Both sessions see the identical statement
// sequence, so even stateful queries stay comparable.
func TestStreamParityFuzz(t *testing.T) {
	ctx := context.Background()
	for _, kind := range streamParityBackends {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			n, reload := 150, 25
			if kind == "pgv3" {
				n = 60 // real sockets per query: keep the stream shorter
			}
			g := qgen.New(qgen.Config{Seed: 11})
			var col, txt *pathStack
			for i := 0; i < n; i++ {
				if i%reload == 0 {
					if col != nil {
						col.cleanup()
						txt.cleanup()
					}
					ds := g.Dataset()
					col = newPathStack(t, ctx, ds, kind, core.ColumnarPath)
					txt = newPathStack(t, ctx, ds, kind, core.TextPath)
				}
				assertPathsAgree(t, ctx, col, txt, g.Query().Q())
			}
			col.cleanup()
			txt.cleanup()
		})
	}
}
