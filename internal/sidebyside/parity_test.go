package sidebyside

import (
	"context"
	"testing"

	"hyperq/internal/pgdb"
)

// TestCorpusParityBothEngines replays every checked-in qdiff reproducer
// through the compiled, the retained interpreted, AND the vectorized pgdb
// engine. All must MATCH the kdb+ reference — which also proves the three
// engines agree with each other on every query the corpus pinned down.
func TestCorpusParityBothEngines(t *testing.T) {
	entries, err := LoadCorpus("testdata/qdiff")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no corpus entries under testdata/qdiff")
	}
	modes := []struct {
		name string
		mode pgdb.ExecMode
	}{
		{"compiled", pgdb.ExecCompiled},
		{"interpreted", pgdb.ExecInterpreted},
		{"vectorized", pgdb.ExecVectorized},
	}
	for _, m := range modes {
		for _, e := range entries {
			t.Run(m.name+"/"+e.Name, func(t *testing.T) {
				r, err := ReplayEntryMode(context.Background(), e, m.mode)
				if err != nil {
					t.Fatal(err)
				}
				if !r.Match {
					t.Fatalf("divergence under %s engine:\n  query: %s\n  diffs: %v\n  note: %s",
						m.name, e.Query, r.Diffs, e.Note)
				}
			})
		}
	}
}

// TestFuzzParityBothEngines runs the same seeded query stream through every
// pgdb engine. Every query must match the kdb+ reference under each, so a
// semantic difference between the compiled, interpreted, and vectorized
// executors cannot hide: the stream that is clean under one engine must be
// clean under the others.
func TestFuzzParityBothEngines(t *testing.T) {
	modes := []struct {
		name string
		mode pgdb.ExecMode
	}{
		{"compiled", pgdb.ExecCompiled},
		{"interpreted", pgdb.ExecInterpreted},
		{"vectorized", pgdb.ExecVectorized},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			rep, err := Fuzz(context.Background(), FuzzConfig{Seed: 7, N: 300, ExecMode: m.mode})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Matches != rep.N {
				t.Errorf("%s engine: %d of %d queries matched", m.name, rep.Matches, rep.N)
			}
			for _, c := range rep.Mismatches {
				t.Errorf("%s engine, iteration %d [%s]: %s\n  diffs: %v",
					m.name, c.Iteration, c.Class, c.Query, c.Diffs)
			}
		})
	}
}
