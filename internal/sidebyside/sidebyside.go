// Package sidebyside implements the side-by-side testing framework the
// paper built during the customer engagement (§5): every feature is
// validated by running the same Q query against the original system (the
// kdb+ substrate, package interp) and through Hyper-Q against the SQL
// backend, then comparing results. The framework is used for internal
// feature testing and doubles as a correctness harness in staging.
package sidebyside

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strings"

	"hyperq/internal/core"
	"hyperq/internal/pgdb"
	"hyperq/internal/qlang/interp"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/wire/qipc"
)

// Framework pairs a kdb+ substrate with a Hyper-Q session over a backend.
type Framework struct {
	Kdb     *interp.Interp
	Session *core.Session
	backend core.Backend
	// Shadow, when set, is a second Hyper-Q session over a different
	// backend topology (e.g. a sharded scatter-gather cluster). Compare
	// then diffs Session against Shadow — byte-identical QIPC encoding is
	// the oracle — and the kdb substrate serves only as a table store.
	Shadow        *core.Session
	shadowBackend core.Backend
	// FloatTol is the relative tolerance for float comparison (the two
	// engines may legitimately differ in summation order).
	FloatTol float64
	// dbs holds every embedded pgdb database behind this framework's
	// backends (primary and shadow), so fuzz configurations can retune
	// engine knobs — e.g. force-enable secondary indexes — after build.
	dbs []*pgdb.DB
}

// New builds a framework over an existing interpreter and session.
func New(kdb *interp.Interp, session *core.Session, backend core.Backend) *Framework {
	return &Framework{Kdb: kdb, Session: session, backend: backend, FloatTol: 1e-9}
}

// SetShadow installs the second Hyper-Q session Compare diffs against.
func (f *Framework) SetShadow(session *core.Session, backend core.Backend) {
	f.Shadow, f.shadowBackend = session, backend
}

// LoadTable installs a table on both sides (and on the shadow backend when
// one is configured).
func (f *Framework) LoadTable(ctx context.Context, name string, t *qval.Table) error {
	f.Kdb.SetGlobal(name, t)
	if f.shadowBackend != nil {
		if err := core.LoadQTable(ctx, f.shadowBackend, name, t); err != nil {
			return err
		}
	}
	return core.LoadQTable(ctx, f.backend, name, t)
}

// LoadTableStaged installs a table like LoadTable, but loads the primary
// backend in two halves with probe (a SQL statement against the primary
// backend) executed in between. Index-enabled fuzz runs use it to build a
// secondary index over the first half of the data and then dirty it with the
// second half's inserts, so every generated query runs against an
// incrementally-maintained index rather than a freshly built one. The
// implicit-order values are global row indexes either way, so the loaded
// table is identical to a LoadTable result.
func (f *Framework) LoadTableStaged(ctx context.Context, name string, t *qval.Table, probe string) error {
	f.Kdb.SetGlobal(name, t)
	if f.shadowBackend != nil {
		if err := core.LoadQTable(ctx, f.shadowBackend, name, t); err != nil {
			return err
		}
	}
	if err := core.CreateQTable(ctx, f.backend, name, t); err != nil {
		return err
	}
	half := t.Len() / 2
	if err := core.LoadQTableRows(ctx, f.backend, name, t, 0, half); err != nil {
		return err
	}
	if probe != "" {
		if _, err := f.backend.Exec(ctx, probe); err != nil {
			return err
		}
	}
	return core.LoadQTableRows(ctx, f.backend, name, t, half, t.Len())
}

// Report is the outcome of one comparison.
type Report struct {
	Query string
	Match bool
	Diffs []string
	// KdbErr and HyperQErr hold each engine's error class when the query
	// failed on that side (ClassNone when it succeeded).
	KdbErr    ErrClass
	HyperQErr ErrClass
	// KdbResult and HyperQResult hold the canonicalized tables (nil for
	// non-tabular results).
	KdbResult    *qval.Table
	HyperQResult *qval.Table
}

func (r *Report) String() string {
	if r.Match {
		return "MATCH " + r.Query
	}
	return "MISMATCH " + r.Query + "\n  " + strings.Join(r.Diffs, "\n  ")
}

// Compare runs q on both sides and diffs the canonicalized results. With a
// shadow session configured, "both sides" means the primary and shadow
// Hyper-Q sessions (single backend vs sharded cluster) and the results must
// agree byte for byte under QIPC encoding.
func (f *Framework) Compare(ctx context.Context, q string) (*Report, error) {
	if f.Shadow != nil {
		return f.compareShadow(ctx, q)
	}
	rep := &Report{Query: q}
	kv, kerr := f.Kdb.Eval(q)
	hv, _, herr := f.Session.Run(ctx, q)
	if kerr != nil || herr != nil {
		rep.KdbErr, rep.HyperQErr = Classify(kerr), Classify(herr)
		if kerr != nil && herr != nil {
			// both sides rejecting the query counts as agreement only when
			// they rejected it for the same kind of reason; a 'nyi on one
			// side against a 'type on the other is a divergence
			if rep.KdbErr == rep.HyperQErr {
				rep.Match = true
				rep.Diffs = append(rep.Diffs, fmt.Sprintf("both error (%s): kdb=%v hyperq=%v", rep.KdbErr, kerr, herr))
				return rep, nil
			}
			rep.Diffs = append(rep.Diffs, fmt.Sprintf("error class divergence: kdb=%s(%v) hyperq=%s(%v)",
				rep.KdbErr, kerr, rep.HyperQErr, herr))
			return rep, nil
		}
		rep.Diffs = append(rep.Diffs, fmt.Sprintf("error divergence: kdb=%v hyperq=%v", kerr, herr))
		return rep, nil
	}
	kt, _ := canonicalize(kv)
	ht, _ := canonicalize(hv)
	rep.KdbResult, rep.HyperQResult = kt, ht
	rep.Diffs = Diff(kv, hv, f.FloatTol)
	rep.Match = len(rep.Diffs) == 0
	return rep, nil
}

// compareShadow diffs the primary session (single backend, the reference —
// it fills the report's kdb-side slots) against the shadow session (sharded
// cluster). Agreement means byte-identical QIPC encodings; on error, both
// sides must reject with the same error class.
func (f *Framework) compareShadow(ctx context.Context, q string) (*Report, error) {
	rep := &Report{Query: q}
	sv, _, serr := f.Session.Run(ctx, q)
	hv, _, herr := f.Shadow.Run(ctx, q)
	if serr != nil || herr != nil {
		rep.KdbErr, rep.HyperQErr = Classify(serr), Classify(herr)
		if serr != nil && herr != nil {
			if rep.KdbErr == rep.HyperQErr {
				rep.Match = true
				rep.Diffs = append(rep.Diffs, fmt.Sprintf("both error (%s): single=%v sharded=%v", rep.KdbErr, serr, herr))
				return rep, nil
			}
			rep.Diffs = append(rep.Diffs, fmt.Sprintf("error class divergence: single=%s(%v) sharded=%s(%v)",
				rep.KdbErr, serr, rep.HyperQErr, herr))
			return rep, nil
		}
		rep.Diffs = append(rep.Diffs, fmt.Sprintf("error divergence: single=%v sharded=%v", serr, herr))
		return rep, nil
	}
	st, _ := canonicalize(sv)
	ht, _ := canonicalize(hv)
	rep.KdbResult, rep.HyperQResult = st, ht
	sb, serr := qipc.EncodeValue(sv)
	hb, herr := qipc.EncodeValue(hv)
	if serr == nil && herr == nil && bytes.Equal(sb, hb) {
		rep.Match = true
		return rep, nil
	}
	// byte divergence: explain it with the structural diff at tolerance 0
	// (byte-identical is strictly stronger, so never hide a diff)
	rep.Diffs = Diff(sv, hv, 0)
	if len(rep.Diffs) == 0 {
		rep.Diffs = append(rep.Diffs, fmt.Sprintf("qipc encodings differ: single=%d bytes sharded=%d bytes (single err=%v sharded err=%v)",
			len(sb), len(hb), serr, herr))
	}
	rep.Match = false
	return rep, nil
}

// Diff compares a kdb-side and a Hyper-Q-side result, returning human-
// readable differences (empty means match). Tabular results are
// canonicalized (keyed tables flatten) and cells compared with the given
// relative float tolerance. Exported for harnesses that obtain the two
// values themselves — e.g. the concurrent serving test, which receives the
// Hyper-Q result over the QIPC wire.
func Diff(kdb, hyperq qval.Value, floatTol float64) []string {
	kt, kok := canonicalize(kdb)
	ht, hok := canonicalize(hyperq)
	if !kok || !hok {
		return diffValues(kdb, hyperq, floatTol)
	}
	return diffTables(kt, ht, floatTol)
}

// diffValues compares two non-tabular results: atoms via cellsEqual (so the
// float tolerance and infinity rules apply) and vectors elementwise.
func diffValues(kdb, hyperq qval.Value, floatTol float64) []string {
	kn, hn := kdb.Len(), hyperq.Len()
	if kn < 0 || hn < 0 {
		// at least one atom: shape must agree, then compare as one cell
		if kn != hn {
			return []string{fmt.Sprintf("shape mismatch: kdb=%v hyperq=%v", kdb, hyperq)}
		}
		if cellsEqual(kdb, hyperq, floatTol) {
			return nil
		}
		return []string{fmt.Sprintf("scalar mismatch: kdb=%v hyperq=%v", kdb, hyperq)}
	}
	if kn != hn {
		return []string{fmt.Sprintf("length mismatch: kdb=%d hyperq=%d", kn, hn)}
	}
	var diffs []string
	for i := 0; i < kn; i++ {
		av, bv := qval.Index(kdb, i), qval.Index(hyperq, i)
		if cellsEqual(av, bv, floatTol) {
			continue
		}
		diffs = append(diffs, fmt.Sprintf("element %d: kdb=%v hyperq=%v", i, av, bv))
		if len(diffs) > 10 {
			diffs = append(diffs, "... (truncated)")
			break
		}
	}
	return diffs
}

// MustMatch is a convenience for tests: it returns an error on mismatch.
func (f *Framework) MustMatch(ctx context.Context, q string) error {
	rep, err := f.Compare(ctx, q)
	if err != nil {
		return err
	}
	if !rep.Match {
		return fmt.Errorf("side-by-side mismatch:\n%s", rep)
	}
	return nil
}

// canonicalize turns a result into a plain table: keyed tables are
// flattened (a select-by returns a keyed table in q but a plain table
// through Hyper-Q).
func canonicalize(v qval.Value) (*qval.Table, bool) {
	switch x := v.(type) {
	case *qval.Table:
		return x, true
	case *qval.Dict:
		if t, ok := qval.Unkey(x); ok {
			return t, true
		}
		return nil, false
	default:
		return nil, false
	}
}

func diffTables(a, b *qval.Table, floatTol float64) []string {
	var diffs []string
	if a.NumCols() != b.NumCols() {
		diffs = append(diffs, fmt.Sprintf("column count: kdb=%d hyperq=%d (kdb cols %v, hyperq cols %v)",
			a.NumCols(), b.NumCols(), a.Cols, b.Cols))
		return diffs
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			diffs = append(diffs, fmt.Sprintf("column %d name: kdb=%q hyperq=%q", i, a.Cols[i], b.Cols[i]))
		}
	}
	if len(diffs) > 0 {
		return diffs
	}
	if a.Len() != b.Len() {
		diffs = append(diffs, fmt.Sprintf("row count: kdb=%d hyperq=%d", a.Len(), b.Len()))
		return diffs
	}
	n := a.Len()
	for c := range a.Cols {
		ac, bc := a.Data[c], b.Data[c]
		for i := 0; i < n; i++ {
			av, bv := qval.Index(ac, i), qval.Index(bc, i)
			if cellsEqual(av, bv, floatTol) {
				continue
			}
			diffs = append(diffs, fmt.Sprintf("cell [%d,%s]: kdb=%v hyperq=%v", i, a.Cols[c], av, bv))
			if len(diffs) > 10 {
				diffs = append(diffs, "... (truncated)")
				return diffs
			}
		}
	}
	return diffs
}

func cellsEqual(a, b qval.Value, floatTol float64) bool {
	if qval.IsNull(a) && qval.IsNull(b) {
		return true
	}
	af, aok := qval.AsFloat(a)
	bf, bok := qval.AsFloat(b)
	if aok && bok {
		// infinities compare exactly: the relative-tolerance formula below
		// would call 0w equal to any finite value (diff <= tol*Inf)
		if math.IsInf(af, 0) || math.IsInf(bf, 0) {
			return af == bf
		}
		if math.IsNaN(af) || math.IsNaN(bf) {
			return math.IsNaN(af) && math.IsNaN(bf)
		}
		if af == bf {
			return true
		}
		diff := math.Abs(af - bf)
		scale := math.Max(math.Abs(af), math.Abs(bf))
		return diff <= floatTol*math.Max(scale, 1)
	}
	return qval.EqualValues(a, b)
}
