// Package sidebyside implements the side-by-side testing framework the
// paper built during the customer engagement (§5): every feature is
// validated by running the same Q query against the original system (the
// kdb+ substrate, package interp) and through Hyper-Q against the SQL
// backend, then comparing results. The framework is used for internal
// feature testing and doubles as a correctness harness in staging.
package sidebyside

import (
	"context"
	"fmt"
	"math"
	"strings"

	"hyperq/internal/core"
	"hyperq/internal/qlang/interp"
	"hyperq/internal/qlang/qval"
)

// Framework pairs a kdb+ substrate with a Hyper-Q session over a backend.
type Framework struct {
	Kdb     *interp.Interp
	Session *core.Session
	backend core.Backend
	// FloatTol is the relative tolerance for float comparison (the two
	// engines may legitimately differ in summation order).
	FloatTol float64
}

// New builds a framework over an existing interpreter and session.
func New(kdb *interp.Interp, session *core.Session, backend core.Backend) *Framework {
	return &Framework{Kdb: kdb, Session: session, backend: backend, FloatTol: 1e-9}
}

// LoadTable installs a table on both sides.
func (f *Framework) LoadTable(ctx context.Context, name string, t *qval.Table) error {
	f.Kdb.SetGlobal(name, t)
	return core.LoadQTable(ctx, f.backend, name, t)
}

// Report is the outcome of one comparison.
type Report struct {
	Query string
	Match bool
	Diffs []string
	// KdbErr and HyperQErr hold each engine's error class when the query
	// failed on that side (ClassNone when it succeeded).
	KdbErr    ErrClass
	HyperQErr ErrClass
	// KdbResult and HyperQResult hold the canonicalized tables (nil for
	// non-tabular results).
	KdbResult    *qval.Table
	HyperQResult *qval.Table
}

func (r *Report) String() string {
	if r.Match {
		return "MATCH " + r.Query
	}
	return "MISMATCH " + r.Query + "\n  " + strings.Join(r.Diffs, "\n  ")
}

// Compare runs q on both sides and diffs the canonicalized results.
func (f *Framework) Compare(ctx context.Context, q string) (*Report, error) {
	rep := &Report{Query: q}
	kv, kerr := f.Kdb.Eval(q)
	hv, _, herr := f.Session.Run(ctx, q)
	if kerr != nil || herr != nil {
		rep.KdbErr, rep.HyperQErr = Classify(kerr), Classify(herr)
		if kerr != nil && herr != nil {
			// both sides rejecting the query counts as agreement only when
			// they rejected it for the same kind of reason; a 'nyi on one
			// side against a 'type on the other is a divergence
			if rep.KdbErr == rep.HyperQErr {
				rep.Match = true
				rep.Diffs = append(rep.Diffs, fmt.Sprintf("both error (%s): kdb=%v hyperq=%v", rep.KdbErr, kerr, herr))
				return rep, nil
			}
			rep.Diffs = append(rep.Diffs, fmt.Sprintf("error class divergence: kdb=%s(%v) hyperq=%s(%v)",
				rep.KdbErr, kerr, rep.HyperQErr, herr))
			return rep, nil
		}
		rep.Diffs = append(rep.Diffs, fmt.Sprintf("error divergence: kdb=%v hyperq=%v", kerr, herr))
		return rep, nil
	}
	kt, _ := canonicalize(kv)
	ht, _ := canonicalize(hv)
	rep.KdbResult, rep.HyperQResult = kt, ht
	rep.Diffs = Diff(kv, hv, f.FloatTol)
	rep.Match = len(rep.Diffs) == 0
	return rep, nil
}

// Diff compares a kdb-side and a Hyper-Q-side result, returning human-
// readable differences (empty means match). Tabular results are
// canonicalized (keyed tables flatten) and cells compared with the given
// relative float tolerance. Exported for harnesses that obtain the two
// values themselves — e.g. the concurrent serving test, which receives the
// Hyper-Q result over the QIPC wire.
func Diff(kdb, hyperq qval.Value, floatTol float64) []string {
	kt, kok := canonicalize(kdb)
	ht, hok := canonicalize(hyperq)
	if !kok || !hok {
		return diffValues(kdb, hyperq, floatTol)
	}
	return diffTables(kt, ht, floatTol)
}

// diffValues compares two non-tabular results: atoms via cellsEqual (so the
// float tolerance and infinity rules apply) and vectors elementwise.
func diffValues(kdb, hyperq qval.Value, floatTol float64) []string {
	kn, hn := kdb.Len(), hyperq.Len()
	if kn < 0 || hn < 0 {
		// at least one atom: shape must agree, then compare as one cell
		if kn != hn {
			return []string{fmt.Sprintf("shape mismatch: kdb=%v hyperq=%v", kdb, hyperq)}
		}
		if cellsEqual(kdb, hyperq, floatTol) {
			return nil
		}
		return []string{fmt.Sprintf("scalar mismatch: kdb=%v hyperq=%v", kdb, hyperq)}
	}
	if kn != hn {
		return []string{fmt.Sprintf("length mismatch: kdb=%d hyperq=%d", kn, hn)}
	}
	var diffs []string
	for i := 0; i < kn; i++ {
		av, bv := qval.Index(kdb, i), qval.Index(hyperq, i)
		if cellsEqual(av, bv, floatTol) {
			continue
		}
		diffs = append(diffs, fmt.Sprintf("element %d: kdb=%v hyperq=%v", i, av, bv))
		if len(diffs) > 10 {
			diffs = append(diffs, "... (truncated)")
			break
		}
	}
	return diffs
}

// MustMatch is a convenience for tests: it returns an error on mismatch.
func (f *Framework) MustMatch(ctx context.Context, q string) error {
	rep, err := f.Compare(ctx, q)
	if err != nil {
		return err
	}
	if !rep.Match {
		return fmt.Errorf("side-by-side mismatch:\n%s", rep)
	}
	return nil
}

// canonicalize turns a result into a plain table: keyed tables are
// flattened (a select-by returns a keyed table in q but a plain table
// through Hyper-Q).
func canonicalize(v qval.Value) (*qval.Table, bool) {
	switch x := v.(type) {
	case *qval.Table:
		return x, true
	case *qval.Dict:
		if t, ok := qval.Unkey(x); ok {
			return t, true
		}
		return nil, false
	default:
		return nil, false
	}
}

func diffTables(a, b *qval.Table, floatTol float64) []string {
	var diffs []string
	if a.NumCols() != b.NumCols() {
		diffs = append(diffs, fmt.Sprintf("column count: kdb=%d hyperq=%d (kdb cols %v, hyperq cols %v)",
			a.NumCols(), b.NumCols(), a.Cols, b.Cols))
		return diffs
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			diffs = append(diffs, fmt.Sprintf("column %d name: kdb=%q hyperq=%q", i, a.Cols[i], b.Cols[i]))
		}
	}
	if len(diffs) > 0 {
		return diffs
	}
	if a.Len() != b.Len() {
		diffs = append(diffs, fmt.Sprintf("row count: kdb=%d hyperq=%d", a.Len(), b.Len()))
		return diffs
	}
	n := a.Len()
	for c := range a.Cols {
		ac, bc := a.Data[c], b.Data[c]
		for i := 0; i < n; i++ {
			av, bv := qval.Index(ac, i), qval.Index(bc, i)
			if cellsEqual(av, bv, floatTol) {
				continue
			}
			diffs = append(diffs, fmt.Sprintf("cell [%d,%s]: kdb=%v hyperq=%v", i, a.Cols[c], av, bv))
			if len(diffs) > 10 {
				diffs = append(diffs, "... (truncated)")
				return diffs
			}
		}
	}
	return diffs
}

func cellsEqual(a, b qval.Value, floatTol float64) bool {
	if qval.IsNull(a) && qval.IsNull(b) {
		return true
	}
	af, aok := qval.AsFloat(a)
	bf, bok := qval.AsFloat(b)
	if aok && bok {
		// infinities compare exactly: the relative-tolerance formula below
		// would call 0w equal to any finite value (diff <= tol*Inf)
		if math.IsInf(af, 0) || math.IsInf(bf, 0) {
			return af == bf
		}
		if math.IsNaN(af) || math.IsNaN(bf) {
			return math.IsNaN(af) && math.IsNaN(bf)
		}
		if af == bf {
			return true
		}
		diff := math.Abs(af - bf)
		scale := math.Max(math.Abs(af), math.Abs(bf))
		return diff <= floatTol*math.Max(scale, 1)
	}
	return qval.EqualValues(a, b)
}
