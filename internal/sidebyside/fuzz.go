package sidebyside

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"hyperq/internal/core"
	"hyperq/internal/persist"
	"hyperq/internal/pgdb"
	"hyperq/internal/qgen"
	"hyperq/internal/qlang/interp"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/shard"
)

// NewLocalFramework builds a fresh side-by-side framework over an embedded
// pgdb backend — one kdb+ substrate, one Hyper-Q session, no shared state
// with any previous framework. The fuzz driver rebuilds frameworks
// regularly so a corrupted global cannot poison later iterations.
func NewLocalFramework() *Framework {
	return NewLocalFrameworkMode(pgdb.ExecCompiled)
}

// NewLocalFrameworkMode is NewLocalFramework with the pgdb execution engine
// pinned: ExecCompiled exercises the closure-compiling engine, and
// ExecInterpreted the retained AST walker — running the same corpus through
// both proves the two engines agree (see parity_test.go).
func NewLocalFrameworkMode(mode pgdb.ExecMode) *Framework {
	return NewLocalFrameworkPath(mode, core.ColumnarPath)
}

// NewLocalFrameworkPath additionally pins the session's result path, so the
// same corpus can be driven through the columnar streaming pipeline and the
// text fallback — each acting as the other's differential oracle (see
// streamparity_test.go).
func NewLocalFrameworkPath(mode pgdb.ExecMode, path core.ResultPath) *Framework {
	db := pgdb.NewDB()
	db.SetExecMode(mode)
	b := core.NewDirectBackend(db)
	p := core.NewPlatform()
	s := p.NewSession(b, core.Config{ResultPath: path})
	f := New(interp.New(), s, b)
	f.dbs = []*pgdb.DB{db}
	return f
}

// ShardRules is the partitioning the sharded differential runs use for
// qgen's fixed schema: the fact table and the quote table co-hashed by
// symbol, the dimension table replicated (no rule needed).
func ShardRules() []shard.TableSpec {
	return []shard.TableSpec{
		{Name: "t", Kind: shard.Hash, Column: "s"},
		{Name: "qts", Kind: shard.Hash, Column: "s"},
	}
}

// NewShardedFramework builds a framework whose primary Hyper-Q session runs
// over a single embedded backend and whose shadow session runs over an
// n-shard scatter-gather cluster of embedded engines. Compare then requires
// byte-identical QIPC output from the two sessions.
func NewShardedFramework(shards int, mode pgdb.ExecMode, path core.ResultPath) (*Framework, error) {
	f := NewLocalFrameworkPath(mode, path)
	cl, dbs, err := shard.NewEmbedded(shards, ShardRules())
	if err != nil {
		return nil, err
	}
	for _, db := range dbs {
		db.SetExecMode(mode)
	}
	f.dbs = append(f.dbs, dbs...)
	sb, err := cl.NewBackend()
	if err != nil {
		return nil, err
	}
	shadow := core.NewPlatform().NewSession(sb, core.Config{ResultPath: path})
	f.SetShadow(shadow, sb)
	return f, nil
}

// FuzzConfig controls a qdiff run.
type FuzzConfig struct {
	Seed int64
	N    int // number of queries
	// Shrink minimizes each failing case before reporting it.
	Shrink bool
	// ReloadEvery regenerates the dataset and framework every k queries
	// (default 25), so table shapes vary across one run.
	ReloadEvery int
	// MaxRows bounds generated fact tables (default qgen's 12).
	MaxRows int
	// ShrinkBudget bounds the number of comparisons one shrink may spend
	// (default 400).
	ShrinkBudget int
	// ExecMode selects the pgdb execution engine under test (default
	// ExecCompiled).
	ExecMode pgdb.ExecMode
	// ResultPath selects the session result pipeline under test (default
	// ColumnarPath, the streaming builders; TextPath is the fallback).
	ResultPath core.ResultPath
	// PersistDir, when non-empty, backs every framework's pgdb database
	// with the durable store under a fresh subdirectory of this path: the
	// dataset is checkpointed to splayed column files after loading and the
	// framework under test is cold-opened from that directory, so every
	// query faults its vectors back through the persist codec. Incompatible
	// with sharded mode (Shards > 1).
	PersistDir string
	// PersistCompress checkpoints with compressed column chunks (persist
	// Options.Compress); only meaningful with PersistDir.
	PersistCompress bool
	// PersistMMap serves cold reads through memory-mapped column files
	// (persist Options.MMap); only meaningful with PersistDir.
	PersistMMap bool
	// PersistMemBudget caps resident column bytes in the framework under
	// test (persist Options.MemBudget), forcing eviction-and-refault churn
	// during the run; only meaningful with PersistDir.
	PersistMemBudget int64
	// Shards, when > 1, switches the run to sharded differential mode: the
	// same queries execute through a single-backend session and a session
	// over a Shards-wide embedded cluster, and the two must produce
	// byte-identical QIPC output.
	Shards int
	// Index force-enables secondary indexes in every embedded database
	// (IndexMinRows 0, so even the tiny generated tables index) and loads
	// each table in two halves around an index-building probe: the first
	// half is inserted, a self-join on the key column builds its hash index,
	// and the second half's inserts then dirty that index — so the run
	// exercises incrementally-maintained indexes, not freshly built ones.
	Index bool
}

// FuzzCase is one divergence, minimized if shrinking was on. Tables holds
// the dataset the query ran against in corpus JSON form, so the case
// replays standalone.
type FuzzCase struct {
	Seed      int64            `json:"seed"`
	Iteration int              `json:"iteration"`
	Query     string           `json:"query"`
	Class     string           `json:"class"`
	Diffs     []string         `json:"diffs"`
	Tables    []qgen.TableJSON `json:"tables"`
}

// FuzzReport summarizes a qdiff run.
type FuzzReport struct {
	Seed       int64      `json:"seed"`
	N          int        `json:"n"`
	Matches    int        `json:"matches"`
	BothError  int        `json:"both_error"`
	Mismatches []FuzzCase `json:"mismatches"`
}

// divergenceClass buckets a non-matching report for triage.
func divergenceClass(rep *Report) string {
	if len(rep.Diffs) == 0 {
		return "value"
	}
	d := rep.Diffs[0]
	switch {
	case strings.HasPrefix(d, "error class divergence"):
		return "error-class"
	case strings.HasPrefix(d, "error divergence"):
		return "error"
	case strings.HasPrefix(d, "row count") || strings.HasPrefix(d, "length mismatch"):
		return "rowcount"
	case strings.HasPrefix(d, "column") || strings.HasPrefix(d, "shape mismatch"):
		return "shape"
	default:
		return "value"
	}
}

// Fuzz runs cfg.N generated queries through both engines and collects the
// divergences. Same seed, same report — the generator is the only source of
// randomness.
func Fuzz(ctx context.Context, cfg FuzzConfig) (*FuzzReport, error) {
	if cfg.ReloadEvery <= 0 {
		cfg.ReloadEvery = 25
	}
	if cfg.ShrinkBudget <= 0 {
		cfg.ShrinkBudget = 400
	}
	if cfg.PersistDir != "" && cfg.Shards > 1 {
		return nil, fmt.Errorf("PersistDir is incompatible with sharded mode")
	}
	g := qgen.New(qgen.Config{Seed: cfg.Seed, MaxRows: cfg.MaxRows})
	rep := &FuzzReport{Seed: cfg.Seed, N: cfg.N, Mismatches: []FuzzCase{}}
	var f *Framework
	var ds *qgen.Dataset
	for i := 0; i < cfg.N; i++ {
		if f == nil || i%cfg.ReloadEvery == 0 {
			ds = g.Dataset()
			var err error
			f, err = loadDataset(ctx, ds, cfg)
			if err != nil {
				return nil, fmt.Errorf("iteration %d: load dataset: %w", i, err)
			}
		}
		q := g.Query()
		r, err := f.Compare(ctx, q.Q())
		if err != nil {
			return nil, fmt.Errorf("iteration %d: %s: %w", i, q.Q(), err)
		}
		if r.Match {
			rep.Matches++
			if r.KdbErr != ClassNone {
				rep.BothError++
			}
			continue
		}
		class := divergenceClass(r)
		sq, sds := q, ds
		if cfg.Shrink {
			sq, sds = shrinkCase(ctx, q, ds, class, cfg.ShrinkBudget, cfg)
			// re-derive the diffs for the minimized case
			if mf, err := loadDataset(ctx, sds, cfg); err == nil {
				if mr, err := mf.Compare(ctx, sq.Q()); err == nil && !mr.Match {
					r = mr
				}
			}
		}
		tables, err := qgen.EncodeDataset(sds)
		if err != nil {
			return nil, fmt.Errorf("iteration %d: encode: %w", i, err)
		}
		rep.Mismatches = append(rep.Mismatches, FuzzCase{
			Seed:      cfg.Seed,
			Iteration: i,
			Query:     sq.Q(),
			Class:     class,
			Diffs:     r.Diffs,
			Tables:    tables,
		})
	}
	return rep, nil
}

// persistSeq numbers the per-framework data directories of one process, so
// shrink reloads never reuse (and re-replay) an earlier framework's WAL.
var persistSeq atomic.Int64

// loadDataset builds a fresh framework with the dataset installed.
func loadDataset(ctx context.Context, ds *qgen.Dataset, cfg FuzzConfig) (*Framework, error) {
	var f *Framework
	if cfg.Shards > 1 {
		var err error
		if f, err = NewShardedFramework(cfg.Shards, cfg.ExecMode, cfg.ResultPath); err != nil {
			return nil, err
		}
	} else if cfg.PersistDir != "" {
		return loadDatasetPersist(ctx, ds, cfg)
	} else {
		f = NewLocalFrameworkPath(cfg.ExecMode, cfg.ResultPath)
	}
	if cfg.Index {
		for _, db := range f.dbs {
			db.SetIndexMinRows(0)
		}
	}
	for _, name := range ds.Names() {
		t, ok := ds.Tables[name]
		if !ok {
			continue
		}
		var err error
		if cfg.Index {
			err = f.LoadTableStaged(ctx, name, t, indexProbe(name))
		} else {
			err = f.LoadTable(ctx, name, t)
		}
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", name, err)
		}
	}
	return f, nil
}

// indexProbe is the SQL statement an index-enabled load runs between the two
// halves of a table: a self-join on the symbol key column, which builds the
// column's hash index in both the compiled engine (join build side) and the
// vectorized engine (same path), so the tail inserts maintain a live index.
// Every generated table (t, d, qts) keys on column s.
func indexProbe(name string) string {
	return fmt.Sprintf("SELECT count(*) FROM %s a JOIN %s b ON a.s = b.s WHERE a.s = 'a'", name, name)
}

// loadDatasetPersist is loadDataset's disk-backed variant: the dataset is
// loaded through a staging database opened on a fresh durable store,
// checkpointed to splayed column files, and then a second database is
// cold-opened on the same directory — every table in the framework under
// test starts as on-disk stubs, so each query faults its vectors back
// through the persist codec. The kdb substrate is loaded once and shared
// by the staging and final frameworks, since both sides see the same data.
func loadDatasetPersist(ctx context.Context, ds *qgen.Dataset, cfg FuzzConfig) (*Framework, error) {
	dir := filepath.Join(cfg.PersistDir, fmt.Sprintf("db%06d", persistSeq.Add(1)))
	kdb := interp.New()
	db := pgdb.NewDB()
	db.SetExecMode(cfg.ExecMode)
	if cfg.Index {
		db.SetIndexMinRows(0)
	}
	st, err := persist.Open(db, persist.Options{Dir: dir, Sync: persist.SyncNone, Compress: cfg.PersistCompress})
	if err != nil {
		return nil, fmt.Errorf("open persist dir %s: %w", dir, err)
	}
	b := core.NewDirectBackend(db)
	s := core.NewPlatform().NewSession(b, core.Config{ResultPath: cfg.ResultPath})
	loader := New(kdb, s, b)
	for _, name := range ds.Names() {
		t, ok := ds.Tables[name]
		if !ok {
			continue
		}
		// index-enabled runs build each table's index mid-load, so the
		// checkpoint records it and the cold reopen exercises the
		// manifest's access-path round-trip
		var err error
		if cfg.Index {
			err = loader.LoadTableStaged(ctx, name, t, indexProbe(name))
		} else {
			err = loader.LoadTable(ctx, name, t)
		}
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", name, err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		return nil, fmt.Errorf("checkpoint dataset: %w", err)
	}
	if err := st.Close(); err != nil {
		return nil, fmt.Errorf("close store: %w", err)
	}
	// Cold reopen: a fresh database restored purely from the on-disk
	// catalog. The corpus is read-only after load, so the reopened store's
	// WAL handle can be released immediately too.
	db2 := pgdb.NewDB()
	db2.SetExecMode(cfg.ExecMode)
	if cfg.Index {
		db2.SetIndexMinRows(0)
	}
	st2, err := persist.Open(db2, persist.Options{
		Dir: dir, Sync: persist.SyncNone,
		Compress:  cfg.PersistCompress,
		MMap:      cfg.PersistMMap,
		MemBudget: cfg.PersistMemBudget,
	})
	if err != nil {
		return nil, fmt.Errorf("cold reopen %s: %w", dir, err)
	}
	if err := st2.Close(); err != nil {
		return nil, fmt.Errorf("close reopened store: %w", err)
	}
	b2 := core.NewDirectBackend(db2)
	s2 := core.NewPlatform().NewSession(b2, core.Config{ResultPath: cfg.ResultPath})
	f := New(kdb, s2, b2)
	f.dbs = []*pgdb.DB{db2}
	return f, nil
}

// reproduces reports whether the (query, dataset) pair still shows a
// divergence of the same class.
func reproduces(ctx context.Context, q *qgen.Query, ds *qgen.Dataset, class string, budget *int, cfg FuzzConfig) bool {
	if *budget <= 0 {
		return false
	}
	*budget--
	f, err := loadDataset(ctx, ds, cfg)
	if err != nil {
		return false
	}
	r, err := f.Compare(ctx, q.Q())
	if err != nil || r.Match {
		return false
	}
	return divergenceClass(r) == class
}

// shrinkCase minimizes a failing (query, dataset) pair: alternately shrink
// the query structure (drop where conjuncts, select columns, by, join;
// replace expressions by sub-expressions) and the table rows (delta
// debugging: halves, then single rows), until neither makes progress or the
// budget runs out.
func shrinkCase(ctx context.Context, q *qgen.Query, ds *qgen.Dataset, class string, budget int, cfg FuzzConfig) (*qgen.Query, *qgen.Dataset) {
	for {
		progressed := false
		// query-level shrinks to a fixpoint
		for {
			var next *qgen.Query
			for _, cand := range q.Shrinks() {
				if reproduces(ctx, cand, ds, class, &budget, cfg) {
					next = cand
					break
				}
			}
			if next == nil {
				break
			}
			q = next
			progressed = true
		}
		// row-level shrinks, one table at a time
		for _, name := range ds.Names() {
			t := ds.Tables[name]
			if t == nil || t.Len() == 0 {
				continue
			}
			if small := shrinkRows(ctx, q, ds, name, class, &budget, cfg); small != nil {
				ds = small
				progressed = true
			}
		}
		if !progressed || budget <= 0 {
			return q, ds
		}
	}
}

// shrinkRows delta-debugs one table's rows; returns a smaller dataset or
// nil when no deletion reproduces.
func shrinkRows(ctx context.Context, q *qgen.Query, ds *qgen.Dataset, name, class string, budget *int, cfg FuzzConfig) *qgen.Dataset {
	cur := ds
	improved := false
	for chunk := cur.Tables[name].Len() / 2; chunk >= 1; chunk /= 2 {
		for lo := 0; lo+chunk <= cur.Tables[name].Len(); {
			cand := withTableRows(cur, name, deleteRange(cur.Tables[name].Len(), lo, lo+chunk))
			if reproduces(ctx, q, cand, class, budget, cfg) {
				cur = cand
				improved = true
				// same lo now addresses the next chunk
			} else {
				lo += chunk
			}
			if *budget <= 0 {
				break
			}
		}
		if *budget <= 0 {
			break
		}
	}
	if !improved {
		return nil
	}
	return cur
}

// deleteRange lists the row indexes of 0..n-1 with [lo,hi) removed.
func deleteRange(n, lo, hi int) []int {
	out := make([]int, 0, n-(hi-lo))
	for i := 0; i < n; i++ {
		if i >= lo && i < hi {
			continue
		}
		out = append(out, i)
	}
	return out
}

// withTableRows returns a dataset where table name keeps only rows idx.
func withTableRows(ds *qgen.Dataset, name string, idx []int) *qgen.Dataset {
	out := &qgen.Dataset{Tables: map[string]*qval.Table{}}
	for n, t := range ds.Tables {
		out.Tables[n] = t
	}
	t := ds.Tables[name]
	data := make([]qval.Value, len(t.Data))
	for c := range t.Data {
		data[c] = qval.TakeIndexes(t.Data[c], idx)
	}
	out.Tables[name] = qval.NewTable(append([]string(nil), t.Cols...), data)
	return out
}

// ---------- regression corpus ----------

// CorpusEntry is one checked-in reproducer: a query plus its dataset. The
// corpus replay test asserts every entry MATCHES — each file documents a
// divergence that was found by qdiff and then fixed.
type CorpusEntry struct {
	Name   string           `json:"name"`
	Note   string           `json:"note,omitempty"`
	Query  string           `json:"query"`
	Tables []qgen.TableJSON `json:"tables"`
	// Shards, when > 1, replays the entry in sharded differential mode
	// (single backend vs a Shards-wide cluster) — the mode in which the
	// divergence was originally found.
	Shards int `json:"shards,omitempty"`
}

// WriteCorpusEntry persists an entry as dir/<name>.json.
func WriteCorpusEntry(dir string, e *CorpusEntry) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	text, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, e.Name+".json"), append(text, '\n'), 0o644)
}

// LoadCorpus reads every *.json entry under dir, sorted by name.
func LoadCorpus(dir string) ([]*CorpusEntry, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []*CorpusEntry
	for _, p := range paths {
		text, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var e CorpusEntry
		if err := json.Unmarshal(text, &e); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, &e)
	}
	return out, nil
}

// ReplayEntry runs one corpus entry through a fresh framework (compiled
// engine) and returns the comparison report.
func ReplayEntry(ctx context.Context, e *CorpusEntry) (*Report, error) {
	return ReplayEntryMode(ctx, e, pgdb.ExecCompiled)
}

// ReplayEntryMode is ReplayEntry with the pgdb execution engine pinned.
func ReplayEntryMode(ctx context.Context, e *CorpusEntry, mode pgdb.ExecMode) (*Report, error) {
	ds, err := qgen.DecodeDataset(e.Tables)
	if err != nil {
		return nil, err
	}
	f := NewLocalFrameworkMode(mode)
	if e.Shards > 1 {
		if f, err = NewShardedFramework(e.Shards, mode, core.ColumnarPath); err != nil {
			return nil, err
		}
	}
	for _, tj := range e.Tables {
		if err := f.LoadTable(ctx, tj.Name, ds.Tables[tj.Name]); err != nil {
			return nil, fmt.Errorf("load %s: %w", tj.Name, err)
		}
	}
	return f.Compare(ctx, e.Query)
}
