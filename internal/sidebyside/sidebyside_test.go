package sidebyside

import (
	"context"
	"testing"

	"hyperq/internal/core"
	"hyperq/internal/pgdb"
	"hyperq/internal/qlang/interp"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/taq"
)

var ctx = context.Background()

func newFramework(t *testing.T) *Framework {
	t.Helper()
	db := pgdb.NewDB()
	b := core.NewDirectBackend(db)
	p := core.NewPlatform()
	s := p.NewSession(b, core.Config{})
	t.Cleanup(func() { s.Close() })
	f := New(interp.New(), s, b)
	data := taq.Generate(taq.Config{Seed: 11, Trades: 300, Quotes: 600, WideCols: 8,
		Symbols: []string{"AAPL", "IBM", "GOOG"}})
	for name, tbl := range map[string]*qval.Table{
		"trades": data.Trades, "quotes": data.Quotes, "daily": data.Daily,
	} {
		if err := f.LoadTable(ctx, name, tbl); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestSelectAgreement(t *testing.T) {
	f := newFramework(t)
	for _, q := range []string{
		"select from trades",
		"select Price, Size from trades where Symbol=`AAPL",
		"select from trades where Price>100, Size>2000",
		"select from quotes where Symbol=`IBM",
	} {
		if err := f.MustMatch(ctx, q); err != nil {
			t.Error(err)
		}
	}
}

func TestAggregateAgreement(t *testing.T) {
	f := newFramework(t)
	for _, q := range []string{
		"select sum Size from trades",
		"select max Price, min Price from trades",
		"select avg Price from trades where Symbol=`GOOG",
		"select n:count Price by Symbol from trades",
		"select h:max Price, l:min Price by Symbol from trades",
	} {
		if err := f.MustMatch(ctx, q); err != nil {
			t.Error(err)
		}
	}
}

func TestAsOfJoinAgreement(t *testing.T) {
	// the paper's flagship query shape: prevailing quote as of each trade
	f := newFramework(t)
	q := "aj[`Symbol`Time; select Symbol, Time, Price from trades where Symbol=`AAPL; select Symbol, Time, Bid, Ask from quotes]"
	if err := f.MustMatch(ctx, q); err != nil {
		t.Error(err)
	}
}

func TestUpdateAgreement(t *testing.T) {
	f := newFramework(t)
	if err := f.MustMatch(ctx, "update Notional:Price*Size from trades where Symbol=`IBM"); err != nil {
		t.Error(err)
	}
}

func TestDeleteAgreement(t *testing.T) {
	f := newFramework(t)
	if err := f.MustMatch(ctx, "delete from trades where Size<1000"); err != nil {
		t.Error(err)
	}
}

func TestMismatchIsDetected(t *testing.T) {
	// sanity: the differ must actually catch divergence
	f := newFramework(t)
	// poison one side
	f.Kdb.SetGlobal("poison", qval.NewTable([]string{"a"}, []qval.Value{qval.LongVec{1, 2}}))
	if err := core.LoadQTable(ctx, f.backend, "poison", qval.NewTable([]string{"a"}, []qval.Value{qval.LongVec{1, 99}})); err != nil {
		t.Fatal(err)
	}
	rep, err := f.Compare(ctx, "select from poison")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Match {
		t.Fatal("differ missed an intentional mismatch")
	}
}

func TestBothSidesErroringCountsAsAgreement(t *testing.T) {
	f := newFramework(t)
	rep, err := f.Compare(ctx, "select from table_that_does_not_exist")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match {
		t.Fatalf("both sides error; report: %v", rep)
	}
}

func TestWorkloadSubsetAgreement(t *testing.T) {
	// run the side-by-side harness over the simpler workload shapes
	f := newFramework(t)
	for _, q := range []string{
		"select o:first Price, h:max Price, l:min Price, c:last Price by Symbol from trades",
		"select vol:sum Size by Symbol from trades where Price>50",
		"exec Price from trades where Symbol=`IBM",
	} {
		if err := f.MustMatch(ctx, q); err != nil {
			t.Errorf("%s: %v", q, err)
		}
	}
}
