package sidebyside

import (
	"context"
	"testing"
)

// TestCorpusReplays runs every checked-in qdiff reproducer through both
// engines. Each file documents a divergence that qdiff found and that was
// then fixed — every entry must now MATCH.
func TestCorpusReplays(t *testing.T) {
	entries, err := LoadCorpus("testdata/qdiff")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no corpus entries under testdata/qdiff")
	}
	for _, e := range entries {
		t.Run(e.Name, func(t *testing.T) {
			r, err := ReplayEntry(context.Background(), e)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Match {
				t.Fatalf("regressed divergence:\n  query: %s\n  diffs: %v\n  note: %s",
					e.Query, r.Diffs, e.Note)
			}
		})
	}
}

// TestFuzzSmoke is the deterministic-seed qdiff run wired into go test: a
// short fuzz that must come back with zero divergences. A failure here means
// a semantic regression between the interp reference and the Hyper-Q -> SQL
// pipeline; reproduce with `go run ./cmd/qdiff -seed 1 -n 200 -shrink`.
func TestFuzzSmoke(t *testing.T) {
	rep, err := Fuzz(context.Background(), FuzzConfig{Seed: 1, N: 200, Shrink: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matches != rep.N {
		t.Errorf("%d of %d queries matched", rep.Matches, rep.N)
	}
	for _, m := range rep.Mismatches {
		t.Errorf("iteration %d [%s]: %s\n  diffs: %v", m.Iteration, m.Class, m.Query, m.Diffs)
	}
}

// TestFuzzSmokeDiskBacked is the disk-backed differential smoke: every
// dataset round-trips through splayed column files and a cold reopen, so
// each query reads vectors the persist codec decoded. Reproduce failures
// with `go run ./cmd/qdiff -seed 7 -n 200 -persist -shrink`.
func TestFuzzSmokeDiskBacked(t *testing.T) {
	rep, err := Fuzz(context.Background(), FuzzConfig{
		Seed: 7, N: 200, Shrink: true, PersistDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matches != rep.N {
		t.Errorf("%d of %d queries matched", rep.Matches, rep.N)
	}
	for _, m := range rep.Mismatches {
		t.Errorf("iteration %d [%s]: %s\n  diffs: %v", m.Iteration, m.Class, m.Query, m.Diffs)
	}
}

// TestFuzzSmokeDiskBackedMatrix crosses the persist read options: compressed
// column files × mmap-backed reads, both under a deliberately tight memory
// budget so segments churn through fault → evict → refault during the run.
// Reproduce a cell with e.g. `go run ./cmd/qdiff -seed 7 -n 120 -persist
// -persist-compress -persist-mmap -persist-mem-budget 65536 -shrink`.
func TestFuzzSmokeDiskBackedMatrix(t *testing.T) {
	for _, tc := range []struct {
		name           string
		compress, mmap bool
	}{
		{"compress", true, false},
		{"mmap", false, true},
		{"compress+mmap", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Fuzz(context.Background(), FuzzConfig{
				Seed: 7, N: 120, Shrink: true, PersistDir: t.TempDir(),
				PersistCompress:  tc.compress,
				PersistMMap:      tc.mmap,
				PersistMemBudget: 64 << 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Matches != rep.N {
				t.Errorf("%d of %d queries matched", rep.Matches, rep.N)
			}
			for _, m := range rep.Mismatches {
				t.Errorf("iteration %d [%s]: %s\n  diffs: %v", m.Iteration, m.Class, m.Query, m.Diffs)
			}
		})
	}
}

// TestFuzzSmokeSharded is the sharded differential smoke: the same query
// stream runs on a single backend and on a 3-shard scatter-gather cluster,
// under the byte-identical QIPC oracle. Reproduce failures with
// `go run ./cmd/qdiff -seed 2 -n 200 -shards 3 -shrink`.
func TestFuzzSmokeSharded(t *testing.T) {
	rep, err := Fuzz(context.Background(), FuzzConfig{Seed: 2, N: 200, Shrink: true, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matches != rep.N {
		t.Errorf("%d of %d queries matched", rep.Matches, rep.N)
	}
	for _, m := range rep.Mismatches {
		t.Errorf("iteration %d [%s]: %s\n  diffs: %v", m.Iteration, m.Class, m.Query, m.Diffs)
	}
}
