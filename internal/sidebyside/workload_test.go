package sidebyside

import (
	"testing"

	"hyperq/internal/core"
	"hyperq/internal/pgdb"
	"hyperq/internal/qlang/interp"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/taq"
	"hyperq/internal/workload"
)

// TestFullWorkloadAgreement runs the entire 25-query Analytical Workload on
// both engines — the in-memory kdb+ substrate and the Hyper-Q -> SQL stack —
// and requires identical results. This is the reproduction's analog of the
// paper's side-by-side framework validating customer workloads in staging
// (§5).
func TestFullWorkloadAgreement(t *testing.T) {
	db := pgdb.NewDB()
	b := core.NewDirectBackend(db)
	p := core.NewPlatform()
	s := p.NewSession(b, core.Config{})
	defer s.Close()
	fw := New(interp.New(), s, b)
	data := taq.Generate(taq.Config{Seed: 20, Trades: 600, Quotes: 1200, WideCols: 500,
		Symbols: []string{"AAPL", "MSFT", "IBM", "JPM"}})
	for name, tbl := range map[string]*qval.Table{
		"trades": data.Trades, "quotes": data.Quotes,
		"refdata": data.RefData, "daily": data.Daily,
	} {
		if err := fw.LoadTable(ctx, name, tbl); err != nil {
			t.Fatal(err)
		}
	}
	// the prelude query 12 depends on
	if rep, err := fw.Compare(ctx, "avgpx: 100.0"); err != nil || !rep.Match {
		t.Fatalf("prelude: %v %v", err, rep)
	}
	for _, q := range workload.Queries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			rep, err := fw.Compare(ctx, q.Q)
			if err != nil {
				t.Fatalf("q%d: %v", q.ID, err)
			}
			if !rep.Match {
				t.Errorf("q%d (%s) diverges:\n%s", q.ID, q.Name, rep)
			}
		})
	}
}
