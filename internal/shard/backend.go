package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hyperq/internal/core"
	"hyperq/internal/pgdb"
	"hyperq/internal/pgdb/sqlparse"
)

// Cluster owns the shared catalog and knows how to open a member session
// on every shard. One Cluster serves many platform sessions; each session
// gets its own Backend (and therefore its own member sessions, keeping
// temporary tables session-scoped end to end).
type Cluster struct {
	cat       *Catalog
	factories []func() (core.Backend, error)
}

// New builds a cluster over one member-session factory per shard.
func New(cat *Catalog, factories []func() (core.Backend, error)) (*Cluster, error) {
	if len(factories) == 0 {
		return nil, errors.New("shard: cluster needs at least one member")
	}
	if len(factories) != cat.Shards() {
		return nil, fmt.Errorf("shard: catalog declares %d shards, got %d members", cat.Shards(), len(factories))
	}
	return &Cluster{cat: cat, factories: factories}, nil
}

// NewEmbedded builds a cluster of n embedded engines — the in-process
// deployment cmd/hyperq and the fuzzer use.
func NewEmbedded(n int, rules []TableSpec) (*Cluster, []*pgdb.DB, error) {
	dbs := make([]*pgdb.DB, n)
	factories := make([]func() (core.Backend, error), n)
	for i := range dbs {
		db := pgdb.NewDB()
		dbs[i] = db
		factories[i] = func() (core.Backend, error) { return core.NewDirectBackend(db), nil }
	}
	cl, err := New(NewCatalog(n, rules), factories)
	return cl, dbs, err
}

// Shards returns the cluster width.
func (c *Cluster) Shards() int { return c.cat.Shards() }

// NewBackend opens one platform session's view of the cluster: a fresh
// member session per shard plus a private overlay for temp tables.
func (c *Cluster) NewBackend() (*Backend, error) {
	b := &Backend{
		cat:     newCatalogView(c.cat),
		members: make([]core.Backend, len(c.factories)),
		streams: make([]core.StreamBackend, len(c.factories)),
	}
	for i, f := range c.factories {
		m, err := f()
		if err != nil {
			b.Close()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		b.members[i] = m
		if s, ok := m.(core.StreamBackend); ok {
			b.streams[i] = s
		}
	}
	return b, nil
}

// Backend is one session's sharded backend. It implements core.Backend
// and core.StreamBackend, so a core.Session runs over a cluster exactly
// as it runs over a single database.
type Backend struct {
	cat     *catalogView
	members []core.Backend
	streams []core.StreamBackend
}

// Exec implements core.Backend: plan, route, and materialize the merged
// result.
func (b *Backend) Exec(ctx context.Context, sql string) (*core.BackendResult, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlparse.SelectStmt)
	if !ok {
		return b.execOther(ctx, stmt, sql)
	}
	p, err := planSelect(sel, b.cat)
	if err != nil {
		return nil, err
	}
	switch p.kind {
	case classSingle:
		res, err := b.members[p.shards[0]].Exec(ctx, sql)
		if err != nil && shouldRetry(ctx, err, 0) {
			res, err = b.members[p.shards[0]].Exec(ctx, sql)
		}
		return res, err
	case classScatter:
		sink := &resultSink{}
		err := b.scatter(ctx, sql, p, sink)
		if err != nil && shouldRetry(ctx, err, len(sink.res.Rows)) {
			sink = &resultSink{}
			err = b.scatter(ctx, sql, p, sink)
		}
		if err != nil {
			return nil, err
		}
		return &sink.res, nil
	default:
		res, err := b.execAggregate(ctx, p)
		if err != nil {
			return nil, err
		}
		return core.ToBackendResult(res), nil
	}
}

// ExecStream implements core.StreamBackend: single-shard and scatter
// plans stream end to end; distributed aggregates stream their (small)
// final result out of the coordinator.
func (b *Backend) ExecStream(ctx context.Context, sql string, sink core.RowSink) error {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return err
	}
	sel, ok := stmt.(*sqlparse.SelectStmt)
	if !ok {
		res, err := b.execOther(ctx, stmt, sql)
		if err != nil {
			return err
		}
		return core.ReplayResult(res, sink)
	}
	p, err := planSelect(sel, b.cat)
	if err != nil {
		return err
	}
	switch p.kind {
	case classSingle:
		cs := &countingSink{sink: sink}
		err := b.streamOn(ctx, p.shards[0], sql, cs)
		if err != nil && shouldRetry(ctx, err, cs.events) {
			err = b.streamOn(ctx, p.shards[0], sql, sink)
		}
		return err
	case classScatter:
		cs := &countingSink{sink: sink}
		err := b.scatter(ctx, sql, p, cs)
		if err != nil && shouldRetry(ctx, err, cs.events) {
			err = b.scatter(ctx, sql, p, sink)
		}
		return err
	default:
		res, err := b.execAggregate(ctx, p)
		if err != nil {
			return err
		}
		return core.FeedResult(ctx, res, sink)
	}
}

// QueryCatalog implements core.Backend. Every shard carries the full
// schema (sharded tables exist everywhere, holding a slice), so metadata
// queries go to the designated shard.
func (b *Backend) QueryCatalog(ctx context.Context, sql string) ([][]string, error) {
	return b.members[0].QueryCatalog(ctx, sql)
}

// Close implements core.Backend.
func (b *Backend) Close() error {
	var first error
	for _, m := range b.members {
		if m == nil {
			continue
		}
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// streamOn streams from one member, falling back to materialize-and-replay
// for members without a streaming API.
func (b *Backend) streamOn(ctx context.Context, shard int, sql string, sink core.RowSink) error {
	if s := b.streams[shard]; s != nil {
		return s.ExecStream(ctx, sql, sink)
	}
	res, err := b.members[shard].Exec(ctx, sql)
	if err != nil {
		return err
	}
	return core.ReplayResult(res, sink)
}

// scatter fans a statement out to the plan's shards and merges the
// streams into sink. The first shard error cancels every sibling's
// in-flight query and surfaces as the single attributed error.
func (b *Backend) scatter(ctx context.Context, sql string, p *plan, sink core.RowSink) error {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var once sync.Once
	var firstErr error
	fail := func(shard int, err error) error {
		attributed := fmt.Errorf("shard %d: %w", shard, err)
		once.Do(func() {
			firstErr = attributed
			cancel()
		})
		return attributed
	}
	cursors := make([]*streamCursor, len(p.shards))
	for idx, shard := range p.shards {
		ch := make(chan shardMsg, chanCap)
		cursors[idx] = &streamCursor{ctx: sctx, ch: ch, shard: idx}
		go func(idx, shard int, ch chan shardMsg) {
			cs := &chanSink{ctx: sctx, ch: ch}
			err := b.streamOn(sctx, shard, sql, cs)
			if err == nil {
				err = cs.flush()
			}
			if err != nil {
				select {
				case ch <- shardMsg{err: fail(shard, err)}:
				case <-sctx.Done():
				}
				return
			}
			select {
			case ch <- shardMsg{done: true, tag: cs.tag}:
			case <-sctx.Done():
			}
		}(idx, shard, ch)
	}
	if err := mergeStreams(sctx, cursors, p, sink); err != nil {
		cancel()
		once.Do(func() { firstErr = err })
		return firstErr
	}
	return nil
}

// execAggregate runs a distributed aggregate. A zero-row probe recovers
// the statically inferred partial types (the baseline the single backend's
// value-dependent refinement starts from), the partial — extended with ±0
// sign carriers for float MIN/MAX — fans out, and the coordinator
// re-aggregates on a scratch engine. The probe shares the first target
// shard's member session, and member sessions are not concurrency-safe, so
// it runs inside that shard's fan goroutine, before its partial — the
// other shards' partials overlap it.
func (b *Backend) execAggregate(ctx context.Context, p *plan) (*pgdb.Result, error) {
	ap := p.agg
	fanSel, zero := extendZeroCarriers(ap)
	fanSQL := pgdb.RenderSelect(fanSel)
	probeStmt := probeSQL(ap)

	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*pgdb.Result, len(p.shards))
	var probe *core.BackendResult
	var wg sync.WaitGroup
	var once sync.Once
	var firstErr error
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for idx, shard := range p.shards {
		wg.Add(1)
		go func(idx, shard int) {
			defer wg.Done()
			m := b.members[shard]
			if idx == 0 {
				pr, err := m.Exec(sctx, probeStmt)
				if err != nil {
					fail(fmt.Errorf("shard %d: type probe: %w", shard, err))
					return
				}
				probe = pr
			}
			var res *pgdb.Result
			var err error
			if tb, ok := m.(core.TypedBackend); ok {
				res, err = tb.ExecTyped(sctx, fanSQL)
			} else {
				var br *core.BackendResult
				if br, err = m.Exec(sctx, fanSQL); err == nil {
					res = textToTyped(br)
				}
			}
			if err != nil {
				fail(fmt.Errorf("shard %d: %w", shard, err))
				return
			}
			results[idx] = res
		}(idx, shard)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	static := make(map[string]string, len(probe.Cols))
	for _, c := range probe.Cols {
		static[c.Name] = c.SQLType
	}
	if needGather(ap, static, results) {
		return b.runGather(ctx, p)
	}
	return runAggregate(ctx, ap, results, static, zero)
}

// runGather executes the aggregate exactness fallback: the aggregate's
// input scan fans out instead of the partials, the gathered rows are
// sorted by the order column (re-creating the single backend's scan
// order), and the original aggregate replays over them on a scratch
// engine. Costs a full round of data motion; taken only when partial
// re-aggregation provably cannot match the single backend's fold
// (needGather).
func (b *Backend) runGather(ctx context.Context, p *plan) (*pgdb.Result, error) {
	ap := p.agg
	results, err := b.fanExecTyped(ctx, p.shards, pgdb.RenderSelect(ap.gather))
	if err != nil {
		return nil, err
	}
	if len(results) == 0 || results[0] == nil {
		return nil, fmt.Errorf("shard: missing gather results")
	}
	cols := results[0].Cols
	ordIdx := -1
	seen := make(map[string]bool, len(cols))
	for j, c := range cols {
		if seen[c.Name] {
			return nil, fmt.Errorf("shard: ambiguous gather column %s", c.Name)
		}
		seen[c.Name] = true
		if c.Name == ap.ord.Name {
			ordIdx = j
		}
	}
	if ordIdx < 0 {
		return nil, fmt.Errorf("shard: gather result missing order column %s", ap.ord.Name)
	}
	var rows [][]any
	for _, res := range results {
		if res == nil || len(res.Cols) != len(cols) {
			return nil, fmt.Errorf("shard: gather schema mismatch")
		}
		rows = append(rows, res.Rows...)
	}
	// the whole point of the gather path is re-creating the global fold
	// order; an ord cell that is not int64 would silently degrade the sort
	// to shard order, so fail loudly instead
	for _, row := range rows {
		if _, ok := row[ordIdx].(int64); !ok {
			return nil, fmt.Errorf("shard: gather order column %s: non-integer value %v (%T)",
				ap.ord.Name, row[ordIdx], row[ordIdx])
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return rows[i][ordIdx].(int64) < rows[j][ordIdx].(int64)
	})
	db := pgdb.NewDB()
	db.CreateTable(gatherTable, cols)
	if err := db.InsertRows(gatherTable, rows); err != nil {
		return nil, fmt.Errorf("shard: gather load: %w", err)
	}
	scratch := db.NewSession()
	defer scratch.Close()
	res, err := scratch.ExecContext(ctx, pgdb.RenderSelect(ap.gatherFinal))
	if err != nil {
		return nil, fmt.Errorf("shard: gather aggregation: %w", err)
	}
	return res, nil
}

// fanExecTyped runs one statement per shard in parallel, preferring the
// engine-typed result path (embedded members) and rebuilding types from
// wire text otherwise, cancelling siblings on the first error.
func (b *Backend) fanExecTyped(ctx context.Context, shards []int, sql string) ([]*pgdb.Result, error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*pgdb.Result, len(shards))
	var wg sync.WaitGroup
	var once sync.Once
	var firstErr error
	for idx, shard := range shards {
		wg.Add(1)
		go func(idx, shard int) {
			defer wg.Done()
			var res *pgdb.Result
			var err error
			if tb, ok := b.members[shard].(core.TypedBackend); ok {
				res, err = tb.ExecTyped(sctx, sql)
			} else {
				var br *core.BackendResult
				if br, err = b.members[shard].Exec(sctx, sql); err == nil {
					res = textToTyped(br)
				}
			}
			if err != nil {
				once.Do(func() {
					firstErr = fmt.Errorf("shard %d: %w", shard, err)
					cancel()
				})
				return
			}
			results[idx] = res
		}(idx, shard)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// fanExec runs one statement per shard in parallel, cancelling siblings
// on the first error and attributing it to its shard.
func (b *Backend) fanExec(ctx context.Context, shards []int, sqlFor func(shard int) string) ([]*core.BackendResult, error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*core.BackendResult, len(shards))
	var wg sync.WaitGroup
	var once sync.Once
	var firstErr error
	for idx, shard := range shards {
		wg.Add(1)
		go func(idx, shard int) {
			defer wg.Done()
			res, err := b.members[shard].Exec(sctx, sqlFor(shard))
			if err != nil {
				once.Do(func() {
					firstErr = fmt.Errorf("shard %d: %w", shard, err)
					cancel()
				})
				return
			}
			results[idx] = res
		}(idx, shard)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// allShardList enumerates every shard.
func (b *Backend) allShardList() []int {
	out := make([]int, len(b.members))
	for i := range out {
		out[i] = i
	}
	return out
}

// broadcast runs the same statement on every shard and returns the
// designated shard's result.
func (b *Backend) broadcast(ctx context.Context, sql string) (*core.BackendResult, error) {
	results, err := b.fanExec(ctx, b.allShardList(), func(int) string { return sql })
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// execOther routes every non-SELECT statement: DDL broadcasts, DML routes
// by partition, transactions broadcast.
func (b *Backend) execOther(ctx context.Context, stmt sqlparse.Stmt, sql string) (*core.BackendResult, error) {
	switch s := stmt.(type) {
	case *sqlparse.InsertStmt:
		return b.routeInsert(ctx, s, sql)
	case *sqlparse.UpdateStmt:
		exprs := []sqlparse.Expr{s.Where}
		for _, sc := range s.Set {
			exprs = append(exprs, sc.Expr)
		}
		if err := rejectDMLSubqueries(b.cat, exprs); err != nil {
			return nil, err
		}
		return b.routeDML(ctx, "UPDATE", s.Table, s.Where, sql)
	case *sqlparse.DeleteStmt:
		if err := rejectDMLSubqueries(b.cat, []sqlparse.Expr{s.Where}); err != nil {
			return nil, err
		}
		return b.routeDML(ctx, "DELETE", s.Table, s.Where, sql)
	case *sqlparse.CreateTableStmt:
		return b.routeCreateTable(ctx, s, sql)
	case *sqlparse.CreateViewStmt:
		return b.routeCreateView(ctx, s, sql)
	case *sqlparse.DropStmt:
		res, err := b.broadcast(ctx, sql)
		if err != nil {
			return nil, err
		}
		b.cat.drop(s.Name)
		return res, nil
	default:
		return b.broadcast(ctx, sql)
	}
}

// routeInsert routes INSERT ... VALUES by evaluating each row's partition
// key; replicated tables broadcast every row.
func (b *Backend) routeInsert(ctx context.Context, s *sqlparse.InsertStmt, sql string) (*core.BackendResult, error) {
	for _, row := range s.Rows {
		if err := rejectDMLSubqueries(b.cat, row); err != nil {
			return nil, err
		}
	}
	ti := b.cat.lookup(s.Table)
	if s.Select != nil {
		if ti != nil && ti.spec.Kind.Sharded() {
			return nil, unsupportedErr("INSERT ... SELECT into sharded table %s", s.Table)
		}
		if _, sharded := pruneSelect(s.Select, b.cat); sharded {
			return nil, unsupportedErr("INSERT ... SELECT from sharded tables")
		}
		return b.broadcast(ctx, sql)
	}
	if ti == nil || !ti.spec.Kind.Sharded() {
		return b.broadcast(ctx, sql)
	}
	if ti.spec.Kind == ShardedOpaque {
		return nil, unsupportedErr("INSERT into derived sharded table %s", s.Table)
	}
	keyIdx := -1
	if len(s.Cols) > 0 {
		for i, c := range s.Cols {
			if strings.EqualFold(c, ti.spec.Column) {
				keyIdx = i
				break
			}
		}
	} else {
		keyIdx = ti.colIndex(ti.spec.Column)
	}
	if keyIdx < 0 {
		return nil, unsupportedErr("INSERT into %s without partition column %s", s.Table, ti.spec.Column)
	}
	n := b.cat.shards()
	perShard := make([][][]sqlparse.Expr, n)
	total := 0
	for _, row := range s.Rows {
		if keyIdx >= len(row) {
			return nil, unsupportedErr("INSERT row narrower than partition column position")
		}
		v, ok := evalLiteral(row[keyIdx])
		if !ok {
			return nil, unsupportedErr("non-literal partition key in INSERT into %s", s.Table)
		}
		sh := shardFor(&ti.spec, n, v)
		perShard[sh] = append(perShard[sh], row)
		total++
	}
	var shards []int
	for i, rows := range perShard {
		if len(rows) > 0 {
			shards = append(shards, i)
		}
	}
	if len(shards) == 0 {
		return &core.BackendResult{Tag: "INSERT 0 0"}, nil
	}
	var prefix strings.Builder
	prefix.WriteString("INSERT INTO ")
	prefix.WriteString(pgdb.RenderIdent(s.Table))
	if len(s.Cols) > 0 {
		prefix.WriteString(" (")
		for i, c := range s.Cols {
			if i > 0 {
				prefix.WriteString(", ")
			}
			prefix.WriteString(pgdb.RenderIdent(c))
		}
		prefix.WriteString(")")
	}
	prefix.WriteString(" VALUES ")
	sqlFor := func(shard int) string {
		var sb strings.Builder
		sb.WriteString(prefix.String())
		for i, row := range perShard[shard] {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteByte('(')
			for j, cell := range row {
				if j > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(pgdb.RenderExpr(cell))
			}
			sb.WriteByte(')')
		}
		return sb.String()
	}
	if _, err := b.fanExec(ctx, shards, sqlFor); err != nil {
		return nil, err
	}
	return &core.BackendResult{Tag: "INSERT 0 " + strconv.Itoa(total)}, nil
}

// routeDML broadcasts UPDATE/DELETE to the owning shards and reports the
// summed rows-affected tag; replicated tables update every copy and
// report one copy's count.
func (b *Backend) routeDML(ctx context.Context, word, table string, where sqlparse.Expr, sql string) (*core.BackendResult, error) {
	target, sharded := pruneTable(table, where, b.cat)
	if !sharded {
		return b.broadcast(ctx, sql)
	}
	if target.isEmpty() {
		return &core.BackendResult{Tag: word + " 0"}, nil
	}
	shards := target.list(b.cat.shards())
	results, err := b.fanExec(ctx, shards, func(int) string { return sql })
	if err != nil {
		return nil, err
	}
	sum := 0
	for _, r := range results {
		if n, ok := core.ParseRowsAffected(r.Tag); ok {
			sum += n
		}
	}
	return &core.BackendResult{Tag: word + " " + strconv.Itoa(sum)}, nil
}

// routeCreateTable broadcasts plain CREATE TABLE and registers the
// partitioning rule; CREATE TABLE AS classifies its select:
//   - replicated-only input: broadcast verbatim (every shard computes the
//     same content) and register replicated;
//   - shard-local input: broadcast verbatim — each shard materializes its
//     slice (pruned-away shards compute empty slices) — and register as a
//     derived sharded table, keeping the partition column when the
//     projection exposes it;
//   - distributed aggregate: run it, then replicate the merged rows to
//     every shard.
func (b *Backend) routeCreateTable(ctx context.Context, s *sqlparse.CreateTableStmt, sql string) (*core.BackendResult, error) {
	if s.AsSelect == nil {
		res, err := b.broadcast(ctx, sql)
		if err != nil {
			return nil, err
		}
		cols := make([]string, len(s.Cols))
		for i, c := range s.Cols {
			cols[i] = c.Name
		}
		b.cat.register(s.Name, cols, nil, s.Temp)
		return res, nil
	}
	p, err := planSelect(s.AsSelect, b.cat)
	if err != nil {
		return nil, err
	}
	switch {
	case !p.sharded:
		res, err := b.broadcast(ctx, sql)
		if err != nil {
			return nil, err
		}
		b.cat.register(s.Name, nil, &TableSpec{Kind: Replicated}, s.Temp)
		return res, nil
	case p.kind == classAgg:
		res, err := b.execAggregate(ctx, p)
		if err != nil {
			return nil, err
		}
		if err := b.replicateResult(ctx, s, core.ToBackendResult(res)); err != nil {
			return nil, err
		}
		b.cat.register(s.Name, colNames(res), &TableSpec{Kind: Replicated}, s.Temp)
		return &core.BackendResult{Tag: "SELECT " + strconv.Itoa(len(res.Rows))}, nil
	default:
		if p.capRows >= 0 {
			// a per-shard LIMIT is not broadcastable verbatim (each shard
			// would keep its own first-n); the capped result is small, so
			// materialize it through the ordered merge and replicate it
			sink := &resultSink{}
			if err := b.scatter(ctx, pgdb.RenderSelect(s.AsSelect), p, sink); err != nil {
				return nil, err
			}
			if err := b.replicateResult(ctx, s, &sink.res); err != nil {
				return nil, err
			}
			cols := make([]string, len(sink.res.Cols))
			for i, c := range sink.res.Cols {
				cols[i] = c.Name
			}
			b.cat.register(s.Name, cols, &TableSpec{Kind: Replicated}, s.Temp)
			return &core.BackendResult{Tag: "SELECT " + strconv.Itoa(len(sink.res.Rows))}, nil
		}
		res, err := b.broadcast(ctx, sql)
		if err != nil {
			return nil, err
		}
		spec := &TableSpec{Kind: ShardedOpaque}
		if info, aerr := analyzeSelect(s.AsSelect, b.cat); aerr == nil && info.sharded &&
			info.partCol != "" && (info.kind == Hash || info.kind == Range) {
			spec = &TableSpec{Kind: info.kind, Column: info.partCol, Bounds: info.bounds}
		}
		b.cat.register(s.Name, nil, spec, s.Temp)
		return res, nil
	}
}

func colNames(res *pgdb.Result) []string {
	out := make([]string, len(res.Cols))
	for i, c := range res.Cols {
		out[i] = c.Name
	}
	return out
}

// replicateResult creates a table with a materialized result's schema on
// every shard and loads the rows everywhere — the landing step for a
// distributed aggregate that a CREATE TABLE AS wants to keep.
func (b *Backend) replicateResult(ctx context.Context, s *sqlparse.CreateTableStmt, res *core.BackendResult) error {
	var sb strings.Builder
	sb.WriteString("CREATE ")
	if s.Temp {
		sb.WriteString("TEMPORARY ")
	}
	sb.WriteString("TABLE ")
	sb.WriteString(pgdb.RenderIdent(s.Name))
	sb.WriteString(" (")
	for j, c := range res.Cols {
		if j > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(pgdb.RenderIdent(c.Name) + " " + c.SQLType)
	}
	sb.WriteString(")")
	if _, err := b.broadcast(ctx, sb.String()); err != nil {
		return err
	}
	const batch = 200
	for lo := 0; lo < len(res.Rows); lo += batch {
		hi := lo + batch
		if hi > len(res.Rows) {
			hi = len(res.Rows)
		}
		sb.Reset()
		sb.WriteString("INSERT INTO ")
		sb.WriteString(pgdb.RenderIdent(s.Name))
		sb.WriteString(" VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				sb.WriteString(", ")
			}
			sb.WriteByte('(')
			for j, f := range res.Rows[i] {
				if j > 0 {
					sb.WriteString(", ")
				}
				appendFieldLiteral(&sb, f, res.Cols[j].SQLType)
			}
			sb.WriteByte(')')
		}
		if _, err := b.broadcast(ctx, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// routeCreateView handles CREATE VIEW like CREATE TABLE AS minus the
// aggregate case: a view re-executes its definition on every reference,
// and a distributed aggregate cannot be re-executed per shard.
func (b *Backend) routeCreateView(ctx context.Context, s *sqlparse.CreateViewStmt, sql string) (*core.BackendResult, error) {
	p, err := planSelect(s.AsSelect, b.cat)
	if err != nil {
		return nil, err
	}
	if p.kind == classAgg {
		return nil, unsupportedErr("CREATE VIEW over a distributed aggregate")
	}
	if p.capRows >= 0 {
		return nil, unsupportedErr("CREATE VIEW over a LIMIT select on sharded tables")
	}
	res, err := b.broadcast(ctx, sql)
	if err != nil {
		return nil, err
	}
	spec := &TableSpec{Kind: Replicated}
	if p.sharded {
		spec = &TableSpec{Kind: ShardedOpaque}
		if info, aerr := analyzeSelect(s.AsSelect, b.cat); aerr == nil && info.sharded &&
			info.partCol != "" && (info.kind == Hash || info.kind == Range) {
			spec = &TableSpec{Kind: info.kind, Column: info.partCol, Bounds: info.bounds}
		}
	}
	b.cat.register(s.Name, nil, spec, false)
	return res, nil
}

// resultSink materializes a streamed merge into the text BackendResult
// form, rendering typed values exactly as the non-streaming path does.
type resultSink struct {
	res   core.BackendResult
	types []string
}

func (s *resultSink) Schema(cols []core.BackendCol, hint int) error {
	s.res.Cols = append([]core.BackendCol{}, cols...)
	s.types = s.types[:0]
	for _, c := range cols {
		s.types = append(s.types, c.SQLType)
	}
	if hint > 0 {
		s.res.Rows = make([][]core.Field, 0, hint)
	}
	return nil
}

func (s *resultSink) Row(vals []any) error {
	row := make([]core.Field, len(vals))
	for j, v := range vals {
		if v == nil {
			row[j] = core.Field{Null: true}
		} else {
			row[j] = core.Field{Text: pgdb.FormatValue(v, s.types[j])}
		}
	}
	s.res.Rows = append(s.res.Rows, row)
	return nil
}

func (s *resultSink) TextRow(fields [][]byte) error {
	row := make([]core.Field, len(fields))
	for j, f := range fields {
		if f == nil {
			row[j] = core.Field{Null: true}
		} else {
			row[j] = core.Field{Text: string(f)}
		}
	}
	s.res.Rows = append(s.res.Rows, row)
	return nil
}

func (s *resultSink) Tag(tag string) { s.res.Tag = tag }
