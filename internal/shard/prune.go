package shard

import (
	"strings"

	"hyperq/internal/pgdb/sqlparse"
)

// pruneStmt computes the target shard set of a statement: the union, over
// every sharded base table it references, of the shards that can hold rows
// satisfying the predicates scoped to that table. Shards outside the set
// provably hold no relevant rows of any sharded table, so skipping them
// cannot change the result. The second return reports whether any sharded
// table is referenced at all (false means the statement runs on the
// designated shard as a replicated-only statement).
func pruneStmt(stmt sqlparse.Stmt, cat *catalogView) (shardSet, bool) {
	switch s := stmt.(type) {
	case *sqlparse.SelectStmt:
		return pruneSelect(s, cat)
	case *sqlparse.UpdateStmt:
		return pruneTable(s.Table, s.Where, cat)
	case *sqlparse.DeleteStmt:
		return pruneTable(s.Table, s.Where, cat)
	}
	return allShards(), true
}

func pruneTable(table string, where sqlparse.Expr, cat *catalogView) (shardSet, bool) {
	ti := cat.lookup(table)
	if ti == nil || !ti.spec.Kind.Sharded() {
		return allShards(), false
	}
	// DML has a single target table, so unqualified references bind to it
	return predShards(where, table, table, ti, cat.shards()), true
}

// pruneSelect unions the shard sets of every sharded base table in the
// select tree. Each base table is constrained by the WHERE of the select
// node whose FROM it appears in; predicates at other levels are ignored
// (conservative: missing a constraint only widens the set).
func pruneSelect(sel *sqlparse.SelectStmt, cat *catalogView) (shardSet, bool) {
	target := noShards()
	sharded := false
	for cur := sel; cur != nil; {
		single := len(cur.From) == 1 && isLeafRef(cur.From[0])
		for _, tr := range cur.From {
			s, any := pruneRef(tr, cur.Where, single, cat)
			if any {
				sharded = true
				target = target.union(s)
			}
		}
		// scalar subqueries inside expressions are not walked: they can
		// only reference replicated tables in supported plans, and the
		// planner rejects anything else before pruning matters
		if cur.Union != nil {
			cur = cur.Union.Right
			continue
		}
		break
	}
	if !sharded {
		return allShards(), false
	}
	return target, true
}

// isLeafRef reports whether a table ref is a single leaf (base table or
// subquery), meaning unqualified column references in the enclosing WHERE
// can only refer to it.
func isLeafRef(tr sqlparse.TableRef) bool {
	switch tr.(type) {
	case *sqlparse.BaseTable, *sqlparse.SubqueryRef:
		return true
	}
	return false
}

// pruneRef resolves one FROM entry: base tables prune against the
// enclosing WHERE, subqueries recurse, joins recurse into both sides (the
// ON condition is not used for pruning — conservative).
func pruneRef(tr sqlparse.TableRef, where sqlparse.Expr, single bool, cat *catalogView) (shardSet, bool) {
	switch r := tr.(type) {
	case *sqlparse.BaseTable:
		ti := cat.lookup(r.Name)
		if ti == nil || !ti.spec.Kind.Sharded() {
			return noShards(), false
		}
		if ti.spec.Kind == ShardedOpaque {
			return allShards(), true
		}
		key := r.Alias
		if key == "" {
			key = r.Name
		}
		loose := ""
		if single {
			loose = key // unqualified refs bind to the only table
		}
		return predShards(where, key, loose, ti, cat.shards()), true
	case *sqlparse.SubqueryRef:
		return pruneSelect(r.Query, cat)
	case *sqlparse.JoinRef:
		ls, lany := pruneRef(r.Left, nil, false, cat)
		rs, rany := pruneRef(r.Right, nil, false, cat)
		return ls.union(rs), lany || rany
	}
	return allShards(), true
}

// predShards evaluates a predicate against one table's partition spec and
// returns the shards that can hold satisfying rows. key is the qualifier
// (alias or table name) that binds a column reference to this table;
// unqualified references bind only when the table is the sole FROM entry
// (loose non-empty). Unknown predicate shapes return all shards.
func predShards(e sqlparse.Expr, key, loose string, ti *tableInfo, n int) shardSet {
	if e == nil {
		return allShards()
	}
	spec := &ti.spec
	isKey := func(x sqlparse.Expr) bool {
		c, ok := x.(*sqlparse.ColRef)
		if !ok || !strings.EqualFold(c.Name, spec.Column) {
			return false
		}
		if c.Table == "" {
			return loose != ""
		}
		return strings.EqualFold(c.Table, key) || strings.EqualFold(c.Table, loose)
	}

	var eval func(e sqlparse.Expr) shardSet
	eval = func(e sqlparse.Expr) shardSet {
		e = unwrapNullSafeCmp(e)
		switch x := e.(type) {
		case *sqlparse.BinaryExpr:
			switch x.Op {
			case "AND":
				return eval(x.L).intersect(eval(x.R))
			case "OR":
				return eval(x.L).union(eval(x.R))
			}
			l, r := x.L, x.R
			op := x.Op
			if !isKey(l) && isKey(r) {
				l, r = r, l
				op = flipCmp(op)
			}
			if !isKey(l) {
				return allShards()
			}
			v, ok := evalLiteral(r)
			if !ok {
				return allShards()
			}
			switch spec.Kind {
			case Hash:
				switch op {
				case "=", "IS NOT DISTINCT FROM":
					if v.null {
						if op == "=" {
							return noShards() // = NULL matches nothing
						}
						return oneShard(0) // NULL keys live on shard 0
					}
					return oneShard(shardFor(spec, n, v))
				}
				return allShards()
			case Range:
				if op == "IS NOT DISTINCT FROM" && v.null {
					return oneShard(0)
				}
				return rangeShards(spec, n, op, v)
			}
			return allShards()
		case *sqlparse.InExpr:
			if x.Not || !isKey(x.X) {
				return allShards()
			}
			out := noShards()
			for _, item := range x.List {
				v, ok := evalLiteral(item)
				if !ok {
					return allShards()
				}
				if v.null {
					continue // IN (NULL) matches nothing
				}
				out.add(shardFor(spec, n, v))
			}
			return out
		case *sqlparse.BetweenExpr:
			if x.Not || !isKey(x.X) {
				return allShards()
			}
			lo, okLo := evalLiteral(x.Lo)
			hi, okHi := evalLiteral(x.Hi)
			if !okLo || !okHi || lo.null || hi.null {
				return allShards()
			}
			if spec.Kind == Hash {
				if lo.compare(hi) == 0 {
					return oneShard(shardFor(spec, n, lo))
				}
				if lo.compare(hi) > 0 {
					return noShards() // empty interval matches nothing
				}
				return allShards()
			}
			return rangeShards(spec, n, ">=", lo).intersect(rangeShards(spec, n, "<=", hi))
		case *sqlparse.IsNullExpr:
			if x.Not || !isKey(x.X) {
				return allShards()
			}
			return oneShard(0) // NULL keys route to shard 0
		}
		return allShards()
	}
	return eval(e)
}

// unwrapNullSafeCmp recognizes the null-safe comparison shape the q
// translator emits —
//
//	CASE WHEN R IS NULL THEN (L IS NOT NULL)
//	     WHEN L IS NULL THEN FALSE
//	     ELSE (L op R) END
//
// — and returns the inner comparison. This is safe for pruning whenever
// the comparison side used is a non-NULL literal: the first arm is then
// unreachable and the CASE implies the ELSE on all matching rows.
func unwrapNullSafeCmp(e sqlparse.Expr) sqlparse.Expr {
	c, ok := e.(*sqlparse.CaseExpr)
	if !ok || c.Operand != nil || len(c.Whens) != 2 || c.Else == nil {
		return e
	}
	if b, ok := c.Whens[1].Then.(*sqlparse.BoolLit); !ok || b.V {
		return e
	}
	inner, ok := c.Else.(*sqlparse.BinaryExpr)
	if !ok {
		return e
	}
	switch inner.Op {
	case "=", "<>", "<", ">", "<=", ">=":
		// callers only act when the non-key side is a literal; a NULL
		// literal there makes arm one reachable, so refuse that case
		if v, lit := evalLiteral(inner.L); lit && v.null {
			return e
		}
		if v, lit := evalLiteral(inner.R); lit && v.null {
			return e
		}
		return inner
	}
	return e
}

func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case ">":
		return "<"
	case "<=":
		return ">="
	case ">=":
		return "<="
	}
	return op // =, IS NOT DISTINCT FROM are symmetric
}
