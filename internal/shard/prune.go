package shard

import (
	"strings"

	"hyperq/internal/pgdb"
	"hyperq/internal/pgdb/sqlparse"
)

// pruneStmt computes the target shard set of a statement: the union, over
// every sharded base table it references, of the shards that can hold rows
// satisfying the predicates scoped to that table. Shards outside the set
// provably hold no relevant rows of any sharded table, so skipping them
// cannot change the result. The second return reports whether any sharded
// table is referenced at all (false means the statement runs on the
// designated shard as a replicated-only statement).
func pruneStmt(stmt sqlparse.Stmt, cat *catalogView) (shardSet, bool) {
	switch s := stmt.(type) {
	case *sqlparse.SelectStmt:
		return pruneSelect(s, cat)
	case *sqlparse.UpdateStmt:
		return pruneTable(s.Table, s.Where, cat)
	case *sqlparse.DeleteStmt:
		return pruneTable(s.Table, s.Where, cat)
	}
	return allShards(), true
}

func pruneTable(table string, where sqlparse.Expr, cat *catalogView) (shardSet, bool) {
	ti := cat.lookup(table)
	if ti == nil || !ti.spec.Kind.Sharded() {
		return allShards(), false
	}
	// DML has a single target table, so unqualified references bind to it
	return predShards(where, table, table, ti, cat.shards()), true
}

// pruneSelect unions the shard sets of every sharded base table in the
// select tree — both the FROM trees and the scalar subqueries nested in
// any expression position. Each base table is constrained by the WHERE of
// the select node whose FROM it appears in; predicates at other levels
// are ignored (conservative: missing a constraint only widens the set).
// Expression subqueries must be unioned here: a statement is replicated
// (or single-shard) only when ALL sharded rows it can touch live on that
// one shard, and a subquery like (SELECT count(*) FROM fact) reaches
// every shard even when the enclosing FROM is replicated.
func pruneSelect(sel *sqlparse.SelectStmt, cat *catalogView) (shardSet, bool) {
	target := noShards()
	sharded := false
	merge := func(s shardSet, any bool) {
		if any {
			sharded = true
			target = target.union(s)
		}
	}
	for cur := sel; cur != nil; {
		single := len(cur.From) == 1 && isLeafRef(cur.From[0])
		for _, tr := range cur.From {
			merge(pruneRef(tr, cur.Where, single, cat))
		}
		merge(exprSubqueryShards(cur.Where, cat))
		for _, it := range cur.Items {
			merge(exprSubqueryShards(it.Expr, cat))
		}
		for _, gb := range cur.GroupBy {
			merge(exprSubqueryShards(gb, cat))
		}
		merge(exprSubqueryShards(cur.Having, cat))
		for _, ob := range cur.OrderBy {
			merge(exprSubqueryShards(ob.Expr, cat))
		}
		merge(exprSubqueryShards(cur.Limit, cat))
		merge(exprSubqueryShards(cur.Offset, cat))
		if cur.Union != nil {
			cur = cur.Union.Right
			continue
		}
		break
	}
	if !sharded {
		return allShards(), false
	}
	return target, true
}

// exprSubqueryShards unions the shard sets of every sharded scalar
// subquery inside an expression tree. The second return reports whether
// any sharded subquery was found at all.
func exprSubqueryShards(e sqlparse.Expr, cat *catalogView) (shardSet, bool) {
	if e == nil {
		return noShards(), false
	}
	target := noShards()
	sharded := false
	walkShardExpr(e, func(x sqlparse.Expr) {
		if sq, ok := x.(*sqlparse.SubqueryExpr); ok {
			if s, any := pruneSelect(sq.Query, cat); any {
				sharded = true
				target = target.union(s)
			}
		}
	})
	return target, sharded
}

// rejectDMLSubqueries refuses DML carrying a scalar subquery over sharded
// tables: DML runs verbatim on each target shard, so such a subquery
// would evaluate against that shard's slice alone — diverging replicated
// copies on broadcast and computing shard-local values on fan-out.
func rejectDMLSubqueries(cat *catalogView, exprs []sqlparse.Expr) error {
	for _, e := range exprs {
		if _, any := exprSubqueryShards(e, cat); any {
			return unsupportedErr("DML with a scalar subquery over sharded tables")
		}
	}
	return nil
}

// isLeafRef reports whether a table ref is a single leaf (base table or
// subquery), meaning unqualified column references in the enclosing WHERE
// can only refer to it.
func isLeafRef(tr sqlparse.TableRef) bool {
	switch tr.(type) {
	case *sqlparse.BaseTable, *sqlparse.SubqueryRef:
		return true
	}
	return false
}

// pruneRef resolves one FROM entry: base tables prune against the
// enclosing WHERE, subqueries recurse, joins recurse into both sides (the
// ON condition is not used for pruning — conservative).
func pruneRef(tr sqlparse.TableRef, where sqlparse.Expr, single bool, cat *catalogView) (shardSet, bool) {
	switch r := tr.(type) {
	case *sqlparse.BaseTable:
		ti := cat.lookup(r.Name)
		if ti == nil || !ti.spec.Kind.Sharded() {
			return noShards(), false
		}
		if ti.spec.Kind == ShardedOpaque {
			return allShards(), true
		}
		key := r.Alias
		if key == "" {
			key = r.Name
		}
		loose := ""
		if single {
			loose = key // unqualified refs bind to the only table
		}
		return predShards(where, key, loose, ti, cat.shards()), true
	case *sqlparse.SubqueryRef:
		return pruneSelect(r.Query, cat)
	case *sqlparse.JoinRef:
		ls, lany := pruneRef(r.Left, nil, false, cat)
		rs, rany := pruneRef(r.Right, nil, false, cat)
		out, any := ls.union(rs), lany || rany
		// the ON condition is not used to narrow the set, but subqueries
		// inside it still reach sharded tables and must widen it
		if s, sub := exprSubqueryShards(r.On, cat); sub {
			out, any = out.union(s), true
		}
		return out, any
	}
	return allShards(), true
}

// predShards evaluates a predicate against one table's partition spec and
// returns the shards that can hold satisfying rows. key is the qualifier
// (alias or table name) that binds a column reference to this table;
// unqualified references bind only when the table is the sole FROM entry
// (loose non-empty). Unknown predicate shapes return all shards.
func predShards(e sqlparse.Expr, key, loose string, ti *tableInfo, n int) shardSet {
	if e == nil {
		return allShards()
	}
	spec := &ti.spec
	isKey := func(x sqlparse.Expr) bool {
		c, ok := x.(*sqlparse.ColRef)
		if !ok || !strings.EqualFold(c.Name, spec.Column) {
			return false
		}
		if c.Table == "" {
			return loose != ""
		}
		return strings.EqualFold(c.Table, key) || strings.EqualFold(c.Table, loose)
	}

	var eval func(e sqlparse.Expr) shardSet
	eval = func(e sqlparse.Expr) shardSet {
		if c, isCase := e.(*sqlparse.CaseExpr); isCase {
			inner, nullArm, ok := unwrapNullSafeCmp(c)
			if !ok {
				return allShards()
			}
			s := eval(inner)
			if nullArm != nil {
				s = s.union(eval(nullArm))
			}
			return s
		}
		switch x := e.(type) {
		case *sqlparse.BinaryExpr:
			switch x.Op {
			case "AND":
				return eval(x.L).intersect(eval(x.R))
			case "OR":
				return eval(x.L).union(eval(x.R))
			}
			l, r := x.L, x.R
			op := x.Op
			if !isKey(l) && isKey(r) {
				l, r = r, l
				op = flipCmp(op)
			}
			if !isKey(l) {
				return allShards()
			}
			v, ok := evalLiteral(r)
			if !ok {
				return allShards()
			}
			switch spec.Kind {
			case Hash:
				switch op {
				case "=", "IS NOT DISTINCT FROM":
					if v.null {
						if op == "=" {
							return noShards() // = NULL matches nothing
						}
						return oneShard(0) // NULL keys live on shard 0
					}
					return oneShard(shardFor(spec, n, v))
				}
				return allShards()
			case Range:
				if op == "IS NOT DISTINCT FROM" && v.null {
					return oneShard(0)
				}
				return rangeShards(spec, n, op, v)
			}
			return allShards()
		case *sqlparse.InExpr:
			if x.Not || !isKey(x.X) {
				return allShards()
			}
			out := noShards()
			for _, item := range x.List {
				v, ok := evalLiteral(item)
				if !ok {
					return allShards()
				}
				if v.null {
					continue // IN (NULL) matches nothing
				}
				out.add(shardFor(spec, n, v))
			}
			return out
		case *sqlparse.BetweenExpr:
			if x.Not || !isKey(x.X) {
				return allShards()
			}
			lo, okLo := evalLiteral(x.Lo)
			hi, okHi := evalLiteral(x.Hi)
			if !okLo || !okHi || lo.null || hi.null {
				return allShards()
			}
			if spec.Kind == Hash {
				if lo.compare(hi) == 0 {
					return oneShard(shardFor(spec, n, lo))
				}
				if lo.compare(hi) > 0 {
					return noShards() // empty interval matches nothing
				}
				return allShards()
			}
			return rangeShards(spec, n, ">=", lo).intersect(rangeShards(spec, n, "<=", hi))
		case *sqlparse.IsNullExpr:
			if x.Not || !isKey(x.X) {
				return allShards()
			}
			return oneShard(0) // NULL keys route to shard 0
		}
		return allShards()
	}
	return eval(e)
}

// unwrapNullSafeCmp recognizes the null-safe comparison shapes the q
// translator emits —
//
//	CASE WHEN F IS NULL THEN (S IS NOT NULL) | TRUE
//	     WHEN S IS NULL THEN FALSE
//	     ELSE (L op R) END
//
// where F and S are exactly the two comparison operands — and returns the
// inner comparison. Every arm is validated structurally: a CASE that only
// resembles the shape (a different first-arm condition, different null
// handling) is not unwrapped, because pruning on its ELSE alone would
// drop rows the other arms admit. When the first arm can fire (F is not
// a non-NULL literal and its THEN is not FALSE), rows with F NULL also
// satisfy the CASE, so nullArm returns the F IS NULL condition for the
// caller to union in — on the partition key that evaluates to the
// NULL-key shard, anywhere else it safely widens to all shards.
func unwrapNullSafeCmp(c *sqlparse.CaseExpr) (inner sqlparse.Expr, nullArm sqlparse.Expr, ok bool) {
	if c.Operand != nil || len(c.Whens) != 2 || c.Else == nil {
		return nil, nil, false
	}
	cmp, isCmp := c.Else.(*sqlparse.BinaryExpr)
	if !isCmp {
		return nil, nil, false
	}
	switch cmp.Op {
	case "=", "<>", "<", ">", "<=", ">=":
	default:
		return nil, nil, false
	}
	c0, ok0 := c.Whens[0].Cond.(*sqlparse.IsNullExpr)
	c1, ok1 := c.Whens[1].Cond.(*sqlparse.IsNullExpr)
	if !ok0 || !ok1 || c0.Not || c1.Not {
		return nil, nil, false
	}
	// the arm conditions must test exactly the two comparison operands,
	// one each (compared by rendered text — the AST has no identity)
	lTxt, rTxt := pgdb.RenderExpr(cmp.L), pgdb.RenderExpr(cmp.R)
	fTxt, sTxt := pgdb.RenderExpr(c0.X), pgdb.RenderExpr(c1.X)
	if !(fTxt == lTxt && sTxt == rTxt) && !(fTxt == rTxt && sTxt == lTxt) {
		return nil, nil, false
	}
	if b, isBool := c.Whens[1].Then.(*sqlparse.BoolLit); !isBool || b.V {
		return nil, nil, false
	}
	firstArmFalse := false
	switch th := c.Whens[0].Then.(type) {
	case *sqlparse.BoolLit:
		firstArmFalse = !th.V
	case *sqlparse.IsNullExpr:
		if !th.Not || pgdb.RenderExpr(th.X) != sTxt {
			return nil, nil, false
		}
	default:
		return nil, nil, false
	}
	// the first arm is unreachable when F is a non-NULL literal, and
	// admits no rows when its THEN is FALSE; otherwise its matches must
	// stay in the pruned set
	if v, lit := evalLiteral(c0.X); (lit && !v.null) || firstArmFalse {
		return cmp, nil, true
	}
	return cmp, c0, true
}

func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case ">":
		return "<"
	case "<=":
		return ">="
	case ">=":
		return "<="
	}
	return op // =, IS NOT DISTINCT FROM are symmetric
}
