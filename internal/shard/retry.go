package shard

import (
	"context"
	"errors"
	"net"
	"strings"
	"syscall"
	"time"

	"hyperq/internal/core"
)

// Transient-failure handling for read-only plans. A shard member reached
// over the wire can fail at connection level (refused, reset, dial
// timeout) without the statement ever running; a SELECT is idempotent, so
// the coordinator retries the plan once after a short backoff before
// surfacing the attributed "shard N:" error. Retries never apply to DML or
// DDL (the statement may have executed before the connection died), and a
// scatter is only retried while zero events have reached the user's sink —
// once merged output has been delivered, a restart could duplicate rows.

// retryBackoff is the pause before the single retry attempt.
const retryBackoff = 50 * time.Millisecond

// isTransient classifies connection-level failures worth one retry:
// anything carrying a *net.OpError (dial/read/write failures) or a
// connection-refused/reset errno. Context cancellation is never transient.
func isTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var op *net.OpError
	if errors.As(err, &op) {
		return true
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	s := err.Error()
	return strings.Contains(s, "connection refused") || strings.Contains(s, "connection reset")
}

// retryWait sleeps the backoff, aborting early if ctx dies.
func retryWait(ctx context.Context) bool {
	t := time.NewTimer(retryBackoff)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// shouldRetry decides whether a failed read-only attempt gets its one
// retry: transient error, live context, and nothing delivered downstream.
func shouldRetry(ctx context.Context, err error, delivered int) bool {
	return isTransient(err) && delivered == 0 && ctx.Err() == nil && retryWait(ctx)
}

// countingSink wraps a RowSink and counts every event delivered to it, so
// retry logic can prove the downstream consumer saw nothing yet.
type countingSink struct {
	sink   core.RowSink
	events int
}

func (c *countingSink) Schema(cols []core.BackendCol, hint int) error {
	c.events++
	return c.sink.Schema(cols, hint)
}

func (c *countingSink) Row(vals []any) error {
	c.events++
	return c.sink.Row(vals)
}

func (c *countingSink) TextRow(fields [][]byte) error {
	c.events++
	return c.sink.TextRow(fields)
}

func (c *countingSink) Tag(tag string) {
	c.events++
	c.sink.Tag(tag)
}
