package shard

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"hyperq/internal/pgdb"
	"hyperq/internal/pgdb/sqlparse"
	"hyperq/internal/xtra"
)

// classKind classifies a planned statement.
type classKind int

const (
	// classSingle runs the statement verbatim on one shard: replicated-only
	// statements on the designated shard, or statements pruned to a single
	// owner. Correct for every statement shape, which is why pruning is
	// checked before structural analysis.
	classSingle classKind = iota
	// classScatter fans the statement out to the target shards and merges
	// the streams in ORDER BY order.
	classScatter
	// classAgg decomposes aggregates into per-shard partials and
	// re-aggregates on the coordinator.
	classAgg
)

// plan is the routing decision for one SELECT statement.
type plan struct {
	kind classKind
	// sharded reports whether the statement references any sharded table
	// at all (false means it is a replicated-only statement).
	sharded bool
	shards  []int
	// schemaOnly marks a single-shard plan whose target set pruned to
	// empty: the designated shard runs the statement only to produce the
	// right (empty) shape. Counted separately so pruning tests can tell
	// "owning shard" from "schema carrier".
	schemaOnly bool
	// scatter merge spec
	orderBy []mergeKey
	capRows int64 // post-merge row cap from a pushed-down LIMIT, -1 none
	// distributed-aggregate spec
	agg *aggPlan
}

// mergeKey is one ORDER BY key by output column name (resolved to a column
// index once the merged schema is known).
type mergeKey struct {
	name       string
	desc       bool
	nullsFirst bool
}

// errAggregate marks "aggregation over a sharded relation" during local
// analysis — the one structural rejection the planner can retry as a
// distributed aggregate.
var errAggregate = errors.New("aggregate over sharded relation")

// unsupportedErr describes a statement the sharding layer cannot
// distribute (it can still run if pruning finds a single owning shard).
func unsupportedErr(format string, args ...any) error {
	return fmt.Errorf("shard: unsupported distributed statement: "+format, args...)
}

// relInfo is the partitioning status of a relation (a FROM tree or a
// select node's output).
type relInfo struct {
	sharded bool
	kind    Kind
	bounds  []string // range split points, for scheme equality
	// partCol is the output column name carrying the partition key (""
	// when the key is not exposed — scans still work, co-partitioned
	// joins above do not).
	partCol string
	// aliases are the qualifiers that resolve to the sharded side, so a
	// qualified column reference can be attributed.
	aliases map[string]bool
	// ord references the implicit-order column when the relation exposes
	// one (qualified for joins); distributed first/last need it.
	ord *sqlparse.ColRef
	// capRows carries a pushed-down LIMIT (-1 none): per-shard execution
	// keeps the LIMIT (a superset of the global answer, because shard
	// scan order is ordcol-ascending), the merge re-caps globally.
	capRows int64
}

func (ri relInfo) hasAlias(q string) bool {
	return ri.aliases != nil && ri.aliases[strings.ToLower(q)]
}

func schemeEqual(a, b relInfo) bool {
	if a.kind == Hash && b.kind == Hash {
		return true
	}
	if a.kind == Range && b.kind == Range {
		if len(a.bounds) != len(b.bounds) {
			return false
		}
		for i := range a.bounds {
			if a.bounds[i] != b.bounds[i] {
				return false
			}
		}
		return true
	}
	return false
}

// planSelect classifies one SELECT. Order matters: pruning first (a
// single-owner statement is correct verbatim no matter its shape), then
// local analysis (scatter), then aggregate decomposition.
func planSelect(sel *sqlparse.SelectStmt, cat *catalogView) (*plan, error) {
	target, sharded := pruneStmt(sel, cat)
	if !sharded {
		return &plan{kind: classSingle, shards: []int{0}}, nil
	}
	if target.isEmpty() {
		return &plan{kind: classSingle, sharded: true, shards: []int{0}, schemaOnly: true}, nil
	}
	shards := target.list(cat.shards())
	if len(shards) == 1 {
		return &plan{kind: classSingle, sharded: true, shards: shards}, nil
	}

	info, err := analyzeSelect(sel, cat)
	if err == nil {
		p := &plan{kind: classScatter, sharded: true, shards: shards, capRows: info.capRows}
		if p.orderBy, err = mergeKeys(sel.OrderBy); err != nil {
			return nil, err
		}
		if p.capRows >= 0 && len(p.orderBy) == 0 {
			return nil, unsupportedErr("LIMIT without a merge order")
		}
		return p, nil
	}
	if !errors.Is(err, errAggregate) {
		return nil, err
	}
	ap, aerr := planAggregate(sel, cat)
	if aerr != nil {
		return nil, aerr
	}
	return &plan{kind: classAgg, sharded: true, shards: shards, agg: ap}, nil
}

// mergeKeys extracts the ORDER BY into name-keyed merge keys. Only plain
// column references are mergeable — which is all the translator emits
// (ORDER BY ordcol).
func mergeKeys(items []sqlparse.OrderItem) ([]mergeKey, error) {
	keys := make([]mergeKey, 0, len(items))
	for _, it := range items {
		c, ok := it.Expr.(*sqlparse.ColRef)
		if !ok {
			return nil, unsupportedErr("ORDER BY expression %s", pgdb.RenderExpr(it.Expr))
		}
		k := mergeKey{name: strings.ToLower(c.Name), desc: it.Desc, nullsFirst: it.Desc}
		if it.NullsFirst != nil {
			k.nullsFirst = *it.NullsFirst
		}
		keys = append(keys, k)
	}
	return keys, nil
}

// analyzeSelect determines whether a select node is shard-local: every
// shard can run it over its slice and the union of the results is the
// global result. Aggregation, grouping, DISTINCT and set operations over a
// sharded relation are not local (errAggregate for the first two — the
// planner may decompose them); a LIMIT is local-with-recap (see
// relInfo.capRows).
func analyzeSelect(sel *sqlparse.SelectStmt, cat *catalogView) (relInfo, error) {
	info, err := analyzeFrom(sel.From, cat)
	if err != nil {
		return relInfo{}, err
	}
	if !info.sharded {
		// a replicated FROM does not make the node replicated-computable:
		// expression subqueries and union arms may still reach sharded
		// tables, and re-executing the node per shard would both multiply
		// its rows and evaluate those subqueries over each shard's slice
		if err := checkReplicatedExprs(sel, cat); err != nil {
			return relInfo{}, err
		}
		return relInfo{capRows: -1}, nil
	}
	if sel.GroupBy != nil || selectItemsHaveAggregate(sel.Items) || sel.Having != nil {
		return relInfo{}, fmt.Errorf("%w", errAggregate)
	}
	if sel.Distinct {
		return relInfo{}, unsupportedErr("DISTINCT over sharded relation")
	}
	if sel.Union != nil {
		return relInfo{}, unsupportedErr("set operation over sharded relation")
	}
	if sel.Offset != nil {
		return relInfo{}, unsupportedErr("OFFSET over sharded relation")
	}
	if err := checkShardedExprs(sel, cat); err != nil {
		return relInfo{}, err
	}
	if sel.Limit != nil {
		nl, ok := sel.Limit.(*sqlparse.NumberLit)
		if !ok {
			return relInfo{}, unsupportedErr("non-literal LIMIT over sharded relation")
		}
		n, perr := strconv.ParseInt(nl.Text, 10, 64)
		if perr != nil || n < 0 {
			return relInfo{}, unsupportedErr("LIMIT %s over sharded relation", nl.Text)
		}
		info.capRows = n // outermost limit wins: set after child propagation
	}
	return projectInfo(sel.Items, info), nil
}

// selectItemsHaveAggregate reports a non-windowed aggregate call anywhere
// in the select items.
func selectItemsHaveAggregate(items []sqlparse.SelectItem) bool {
	for _, it := range items {
		if it.Expr != nil && exprHasAgg(it.Expr) {
			return true
		}
	}
	return false
}

// checkShardedExprs vets expressions of a sharded-local node: window
// functions must partition by the implicit-order column (each partition is
// then a single row's join matches, which are co-located), and scalar
// subqueries must not reach sharded tables.
func checkShardedExprs(sel *sqlparse.SelectStmt, cat *catalogView) error {
	var err error
	check := func(e sqlparse.Expr) {
		walkShardExpr(e, func(x sqlparse.Expr) {
			switch f := x.(type) {
			case *sqlparse.FuncCall:
				if f.Over != nil && err == nil {
					ok := false
					for _, pe := range f.Over.PartitionBy {
						if c, isCol := pe.(*sqlparse.ColRef); isCol && strings.EqualFold(c.Name, xtra.OrdCol) {
							ok = true
						}
					}
					if !ok {
						err = unsupportedErr("window function not partitioned by %s", xtra.OrdCol)
					}
				}
			case *sqlparse.SubqueryExpr:
				if err == nil {
					if _, sub := pruneSelect(f.Query, cat); sub {
						err = unsupportedErr("scalar subquery over sharded relation")
					}
				}
			}
		})
	}
	for _, it := range sel.Items {
		check(it.Expr)
	}
	check(sel.Where)
	for _, ob := range sel.OrderBy {
		check(ob.Expr)
	}
	for _, on := range joinConds(sel.From) {
		check(on)
	}
	return err
}

// checkReplicatedExprs vets a select node whose FROM is replicated-only
// but whose pruning still found sharded references: they can only live in
// expression subqueries or union arms, neither of which survives
// per-shard re-execution.
func checkReplicatedExprs(sel *sqlparse.SelectStmt, cat *catalogView) error {
	exprs := []sqlparse.Expr{sel.Where, sel.Having, sel.Limit, sel.Offset}
	for _, it := range sel.Items {
		exprs = append(exprs, it.Expr)
	}
	for _, gb := range sel.GroupBy {
		exprs = append(exprs, gb)
	}
	for _, ob := range sel.OrderBy {
		exprs = append(exprs, ob.Expr)
	}
	exprs = append(exprs, joinConds(sel.From)...)
	for _, e := range exprs {
		if _, any := exprSubqueryShards(e, cat); any {
			return unsupportedErr("scalar subquery over sharded relation")
		}
	}
	if sel.Union != nil {
		if _, any := pruneSelect(sel.Union.Right, cat); any {
			return unsupportedErr("set operation over sharded relation")
		}
	}
	return nil
}

// joinConds collects the ON conditions of every join in a FROM tree
// (subquery refs recurse through their own analysis, not here).
func joinConds(refs []sqlparse.TableRef) []sqlparse.Expr {
	var out []sqlparse.Expr
	var walk func(tr sqlparse.TableRef)
	walk = func(tr sqlparse.TableRef) {
		if j, ok := tr.(*sqlparse.JoinRef); ok {
			if j.On != nil {
				out = append(out, j.On)
			}
			walk(j.Left)
			walk(j.Right)
		}
	}
	for _, r := range refs {
		walk(r)
	}
	return out
}

// projectInfo maps a sharded relation's partition metadata through a
// select node's projection: the partition key and order column survive
// only if a bare (possibly aliased) reference exposes them.
func projectInfo(items []sqlparse.SelectItem, in relInfo) relInfo {
	out := relInfo{sharded: true, kind: in.kind, bounds: in.bounds, capRows: in.capRows}
	for _, it := range items {
		if it.Star {
			if it.StarTable == "" || in.hasAlias(it.StarTable) {
				out.partCol = in.partCol
				if in.ord != nil {
					out.ord = &sqlparse.ColRef{Name: xtra.OrdCol}
				}
			}
			continue
		}
		c, ok := it.Expr.(*sqlparse.ColRef)
		if !ok {
			continue
		}
		if c.Table != "" && !in.hasAlias(c.Table) {
			continue
		}
		name := it.Alias
		if name == "" {
			name = c.Name
		}
		if in.partCol != "" && strings.EqualFold(c.Name, in.partCol) {
			out.partCol = name
		}
		if in.ord != nil && strings.EqualFold(c.Name, xtra.OrdCol) && strings.EqualFold(name, xtra.OrdCol) {
			out.ord = &sqlparse.ColRef{Name: xtra.OrdCol}
		}
	}
	return out
}

// analyzeFrom folds a FROM list (comma entries are cross joins).
func analyzeFrom(refs []sqlparse.TableRef, cat *catalogView) (relInfo, error) {
	if len(refs) == 0 {
		return relInfo{capRows: -1}, nil
	}
	info, err := analyzeRef(refs[0], cat)
	if err != nil {
		return relInfo{}, err
	}
	for _, r := range refs[1:] {
		ri, err := analyzeRef(r, cat)
		if err != nil {
			return relInfo{}, err
		}
		info, err = joinInfo(sqlparse.CrossJoin, info, ri, nil)
		if err != nil {
			return relInfo{}, err
		}
	}
	return info, nil
}

func analyzeRef(tr sqlparse.TableRef, cat *catalogView) (relInfo, error) {
	switch r := tr.(type) {
	case *sqlparse.BaseTable:
		ti := cat.lookup(r.Name)
		alias := r.Alias
		if alias == "" {
			alias = r.Name
		}
		if ti == nil || !ti.spec.Kind.Sharded() {
			return relInfo{capRows: -1}, nil
		}
		info := relInfo{
			sharded: true,
			kind:    ti.spec.Kind,
			bounds:  ti.spec.Bounds,
			partCol: ti.spec.Column,
			aliases: map[string]bool{strings.ToLower(alias): true},
			capRows: -1,
		}
		if ti.colIndex(xtra.OrdCol) >= 0 {
			info.ord = &sqlparse.ColRef{Table: alias, Name: xtra.OrdCol}
		}
		return info, nil
	case *sqlparse.SubqueryRef:
		info, err := analyzeSelect(r.Query, cat)
		if err != nil {
			return relInfo{}, err
		}
		if info.sharded {
			info.aliases = map[string]bool{strings.ToLower(r.Alias): true}
			if info.ord != nil {
				info.ord = &sqlparse.ColRef{Table: r.Alias, Name: xtra.OrdCol}
			}
		}
		return info, nil
	case *sqlparse.JoinRef:
		l, err := analyzeRef(r.Left, cat)
		if err != nil {
			return relInfo{}, err
		}
		rr, err := analyzeRef(r.Right, cat)
		if err != nil {
			return relInfo{}, err
		}
		return joinInfo(r.Type, l, rr, r.On)
	}
	return relInfo{}, unsupportedErr("unknown table reference")
}

// joinInfo combines two sides of a join. A sharded side must be on the
// row-preserved side of an outer join (a preserved replicated side would
// emit its null-padded rows once per shard). Two sharded sides must be
// co-partitioned — same scheme and an ON equality over both partition
// keys — so matching rows are guaranteed co-located.
func joinInfo(jt sqlparse.JoinType, l, r relInfo, on sqlparse.Expr) (relInfo, error) {
	// a per-shard LIMIT under a join is not recappable after the merge
	if l.capRows >= 0 && l.sharded || r.capRows >= 0 && r.sharded {
		return relInfo{}, unsupportedErr("LIMIT below a join over a sharded relation")
	}
	switch {
	case !l.sharded && !r.sharded:
		return relInfo{capRows: -1}, nil
	case l.sharded != r.sharded:
		sharded := l
		if r.sharded {
			sharded = r
		}
		switch jt {
		case sqlparse.InnerJoin, sqlparse.CrossJoin:
		case sqlparse.LeftJoin:
			if !l.sharded {
				return relInfo{}, unsupportedErr("LEFT JOIN preserving a replicated side against a sharded side")
			}
		case sqlparse.RightJoin:
			if !r.sharded {
				return relInfo{}, unsupportedErr("RIGHT JOIN preserving a replicated side against a sharded side")
			}
		default:
			return relInfo{}, unsupportedErr("FULL JOIN with a sharded side")
		}
		out := sharded
		out.capRows = -1
		return out, nil
	}
	// both sharded: need co-partitioning
	if !schemeEqual(l, r) || l.partCol == "" || r.partCol == "" {
		return relInfo{}, unsupportedErr("join of differently partitioned relations")
	}
	if jt == sqlparse.FullJoin {
		return relInfo{}, unsupportedErr("FULL JOIN with a sharded side")
	}
	if !onEquatesKeys(on, l, r) {
		return relInfo{}, unsupportedErr("join of sharded relations without a partition-key equality")
	}
	out := relInfo{sharded: true, kind: l.kind, bounds: l.bounds, partCol: l.partCol, capRows: -1}
	out.aliases = map[string]bool{}
	for a := range l.aliases {
		out.aliases[a] = true
	}
	if strings.EqualFold(l.partCol, r.partCol) {
		for a := range r.aliases {
			out.aliases[a] = true
		}
	}
	out.ord = l.ord
	if out.ord == nil {
		out.ord = r.ord
	}
	return out, nil
}

// onEquatesKeys looks for an AND-conjunct of the ON condition equating the
// two sides' partition columns (plain = or the null-safe IS NOT DISTINCT
// FROM the translator emits for symbol keys).
func onEquatesKeys(on sqlparse.Expr, l, r relInfo) bool {
	if on == nil {
		return false
	}
	if b, ok := on.(*sqlparse.BinaryExpr); ok {
		switch b.Op {
		case "AND":
			return onEquatesKeys(b.L, l, r) || onEquatesKeys(b.R, l, r)
		case "=", "IS NOT DISTINCT FROM":
			return keyRef(b.L, l) && keyRef(b.R, r) || keyRef(b.L, r) && keyRef(b.R, l)
		}
	}
	return false
}

func keyRef(e sqlparse.Expr, side relInfo) bool {
	c, ok := e.(*sqlparse.ColRef)
	return ok && strings.EqualFold(c.Name, side.partCol) && c.Table != "" && side.hasAlias(c.Table)
}

// walkShardExpr visits every sub-expression (the shard-side twin of
// pgdb's walker, kept local so the planner does not reach into engine
// internals).
func walkShardExpr(e sqlparse.Expr, fn func(sqlparse.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *sqlparse.BinaryExpr:
		walkShardExpr(x.L, fn)
		walkShardExpr(x.R, fn)
	case *sqlparse.UnaryExpr:
		walkShardExpr(x.X, fn)
	case *sqlparse.IsNullExpr:
		walkShardExpr(x.X, fn)
	case *sqlparse.InExpr:
		walkShardExpr(x.X, fn)
		for _, it := range x.List {
			walkShardExpr(it, fn)
		}
	case *sqlparse.BetweenExpr:
		walkShardExpr(x.X, fn)
		walkShardExpr(x.Lo, fn)
		walkShardExpr(x.Hi, fn)
	case *sqlparse.CaseExpr:
		walkShardExpr(x.Operand, fn)
		for _, w := range x.Whens {
			walkShardExpr(w.Cond, fn)
			walkShardExpr(w.Then, fn)
		}
		walkShardExpr(x.Else, fn)
	case *sqlparse.FuncCall:
		for _, a := range x.Args {
			walkShardExpr(a, fn)
		}
		if x.Over != nil {
			for _, p := range x.Over.PartitionBy {
				walkShardExpr(p, fn)
			}
			for _, o := range x.Over.OrderBy {
				walkShardExpr(o.Expr, fn)
			}
		}
	case *sqlparse.CastExpr:
		walkShardExpr(x.X, fn)
	}
}

// aggNames mirrors the engine's aggregate registry: the planner must
// recognize exactly what the executor treats as an aggregate.
var aggNames = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
	"stddev": true, "stddev_samp": true, "stddev_pop": true,
	"variance": true, "var_samp": true, "var_pop": true,
	"bool_and": true, "bool_or": true, "string_agg": true,
	"first": true, "last": true, "median": true,
}

func exprHasAgg(e sqlparse.Expr) bool {
	found := false
	walkShardExpr(e, func(x sqlparse.Expr) {
		if fc, ok := x.(*sqlparse.FuncCall); ok && fc.Over == nil && aggNames[fc.Name] {
			found = true
		}
	})
	return found
}
