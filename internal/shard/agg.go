package shard

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"hyperq/internal/core"
	"hyperq/internal/pgdb"
	"hyperq/internal/pgdb/sqlparse"
)

// partTable is the coordinator-side scratch table holding per-shard
// partial aggregate rows.
const partTable = "hq_part"

// gatherTable is the coordinator-side scratch table holding the gathered
// aggregate input rows when the exactness fallback bypasses decomposition.
const gatherTable = "hq_gather"

// aggPlan is a decomposed distributed aggregate: one partial query every
// target shard runs over its slice, and a final statement the coordinator
// runs over the gathered partial rows.
//
// The decomposition table (also in DESIGN.md):
//
//	original          per-shard partial         coordinator final
//	SUM(x)            SUM(x)                    SUM(p)
//	COUNT(*)/(x)      COUNT(*)/(x)              COALESCE(SUM(p), 0)
//	MIN(x)/MAX(x)     MIN(x)/MAX(x)             MIN(p)/MAX(p)
//	AVG(x)            SUM(x), COUNT(x)          CAST(SUM(ps) AS dp) / NULLIF(SUM(pc), 0)
//	FIRST(x)          FIRST(x), MIN(ordcol)     FIRST(p)  (carrier rows, below)
//	LAST(x)           LAST(x), MAX(ordcol)      LAST(p)   (carrier rows, below)
//	BOOL_AND/OR(x)    same                      same over partials
//
// wavg needs no rule of its own: the translator already spells it as a
// SUM/SUM quotient, so the SUM rule distributes it.
//
// FIRST and LAST are positional (the engine's toolbox semantics: first and
// last row in input order, NULLs included), so the coordinator must
// re-create a scan order in which each group's first row is the globally
// first and its last row the globally last. Each (shard, group) partial
// becomes two carrier rows in the scratch table: an A row at the shard's
// MIN(ordcol) carrying every partial except LAST carriers, and a B row at
// the shard's MAX(ordcol) carrying only the group keys and LAST carriers
// (all other partials NULL, so sums don't double-count). Rows insert
// sorted by (ordcol, A-before-B); within any group the first scanned row
// is then the A row of the shard holding the globally first row, and the
// last is the B row of the shard holding the globally last.
type aggPlan struct {
	// partial is the per-shard statement, kept as an AST: execution renders
	// it twice — once with WHERE FALSE against one member (a zero-row probe
	// for the statically inferred column types, which the single backend's
	// value-dependent refinement starts from) and once for the real fan-out,
	// possibly extended with zero-sign carrier columns.
	partial *sqlparse.SelectStmt
	final   *sqlparse.SelectStmt
	grouped bool
	needAB  bool
	// ord is the input's implicit order column (nil when absent).
	ord *sqlparse.ColRef
	// lastCols names the partial columns that are LAST carriers (ride on B
	// rows); everything else rides on A rows.
	lastCols map[string]bool
	// minmax records MIN/MAX partials: the engine keeps the first-
	// encountered value among compare-equal ties (only ±0.0 is
	// distinguishable), so execution ships, per shard and group, the order
	// positions of the first negative and first positive zero and rewrites
	// the gathered partials to the sign the single backend's scan order
	// would have kept.
	minmax []mmPartial
	// sumCols names the SUM partials (including AVG's sum component).
	// Float addition is non-associative, so a sum of per-shard partial
	// sums cannot reproduce the single backend's sequential fold over
	// non-exact doubles — such aggregates take the gather fallback.
	sumCols []string
	// gather/gatherFinal are the exactness fallback: gather is the
	// aggregate's input relation (the scan, fanned out per shard), and
	// gatherFinal is the original aggregate re-targeted at the gathered
	// rows, which the coordinator replays in global order-column order —
	// reproducing the single backend's fold exactly, at the cost of full
	// data motion. Nil when the input has no order column (no global order
	// to re-create) or references qualified columns the scratch table
	// cannot resolve.
	gather      *sqlparse.SelectStmt
	gatherFinal *sqlparse.SelectStmt
}

// mmPartial is one MIN/MAX partial column and the aggregate's argument.
type mmPartial struct {
	col string
	arg sqlparse.Expr
}

// planAggregate decomposes a translated aggregate statement. Two shapes
// exist: the bare aggregate node (global aggregates translate without a
// wrapper) and a pure projection wrapper over the aggregate node (grouped
// selects wrap to reorder columns and ORDER BY ordcol).
func planAggregate(sel *sqlparse.SelectStmt, cat *catalogView) (*aggPlan, error) {
	inner := sel
	var wrapper *sqlparse.SelectStmt
	if sel.GroupBy == nil && !selectItemsHaveAggregate(sel.Items) {
		if len(sel.From) != 1 || sel.Where != nil || sel.Distinct ||
			sel.Limit != nil || sel.Offset != nil || sel.Union != nil || sel.Having != nil {
			return nil, unsupportedErr("aggregate nested below an unrecognized outer query")
		}
		sub, ok := sel.From[0].(*sqlparse.SubqueryRef)
		if !ok {
			return nil, unsupportedErr("aggregate nested below an unrecognized outer query")
		}
		wrapper, inner = sel, sub.Query
		if inner.GroupBy == nil && !selectItemsHaveAggregate(inner.Items) {
			return nil, unsupportedErr("aggregate nested deeper than one projection")
		}
	}
	if inner.Distinct || inner.Union != nil || inner.Limit != nil ||
		inner.Offset != nil || inner.Having != nil || len(inner.OrderBy) > 0 {
		return nil, unsupportedErr("aggregate node with DISTINCT/HAVING/LIMIT/ORDER BY/set operation")
	}

	// the aggregate's input relation must itself be shard-local
	scan := &sqlparse.SelectStmt{
		Items: []sqlparse.SelectItem{{Star: true}},
		From:  inner.From,
		Where: inner.Where,
	}
	info, err := analyzeSelect(scan, cat)
	if err != nil {
		return nil, unsupportedErr("aggregate input not shard-local: %v", err)
	}
	if !info.sharded {
		return nil, unsupportedErr("aggregate over replicated input reached the distributed path")
	}
	if info.capRows >= 0 {
		return nil, unsupportedErr("aggregate over a LIMIT subquery")
	}

	d := &decomposer{plan: &aggPlan{grouped: inner.GroupBy != nil, lastCols: map[string]bool{}}, ord: info.ord}

	// group keys: one hq_k column per GROUP BY expression, matched to
	// select items by rendered text. A sharded scalar subquery in a key
	// would evaluate per shard, splitting one global group into per-shard
	// groups — reject before decomposition.
	for _, gb := range inner.GroupBy {
		if _, any := exprSubqueryShards(gb, cat); any {
			return nil, unsupportedErr("scalar subquery over sharded relation in GROUP BY")
		}
	}
	keyText := make([]string, len(inner.GroupBy))
	for i, gb := range inner.GroupBy {
		keyText[i] = pgdb.RenderExpr(gb)
		d.keys = append(d.keys, sqlparse.SelectItem{Expr: gb, Alias: fmt.Sprintf("hq_k%d", i)})
	}

	var finalItems []sqlparse.SelectItem
	for _, it := range inner.Items {
		if it.Star {
			return nil, unsupportedErr("star select in aggregate node")
		}
		outName := it.Alias
		if outName == "" {
			if c, ok := it.Expr.(*sqlparse.ColRef); ok {
				outName = c.Name
			} else {
				return nil, unsupportedErr("unaliased aggregate output %s", pgdb.RenderExpr(it.Expr))
			}
		}
		if !exprHasAgg(it.Expr) {
			txt := pgdb.RenderExpr(it.Expr)
			ki := -1
			for i, kt := range keyText {
				if kt == txt {
					ki = i
					break
				}
			}
			if ki < 0 {
				return nil, unsupportedErr("non-aggregate output %s is not a group key", txt)
			}
			finalItems = append(finalItems, sqlparse.SelectItem{
				Expr: &sqlparse.ColRef{Name: fmt.Sprintf("hq_k%d", ki)}, Alias: outName})
			continue
		}
		re, err := d.rewrite(it.Expr)
		if err != nil {
			return nil, err
		}
		finalItems = append(finalItems, sqlparse.SelectItem{Expr: re, Alias: outName})
	}

	items := append([]sqlparse.SelectItem{}, d.keys...)
	items = append(items, d.partials...)
	if d.plan.needAB {
		if d.ord == nil {
			return nil, unsupportedErr("first/last aggregate over input without an order column")
		}
		items = append(items,
			sqlparse.SelectItem{Expr: &sqlparse.FuncCall{Name: "min", Args: []sqlparse.Expr{d.ord}}, Alias: "hq_fo"},
			sqlparse.SelectItem{Expr: &sqlparse.FuncCall{Name: "max", Args: []sqlparse.Expr{d.ord}}, Alias: "hq_lo"})
	}
	items = append(items, sqlparse.SelectItem{Expr: &sqlparse.FuncCall{Name: "count", Star: true}, Alias: "hq_cnt"})

	d.plan.partial = &sqlparse.SelectStmt{
		Items:   items,
		From:    inner.From,
		Where:   inner.Where,
		GroupBy: inner.GroupBy,
	}
	d.plan.ord = d.ord

	final := &sqlparse.SelectStmt{
		Items: finalItems,
		From:  []sqlparse.TableRef{&sqlparse.BaseTable{Name: partTable}},
	}
	for i := range inner.GroupBy {
		final.GroupBy = append(final.GroupBy, &sqlparse.ColRef{Name: fmt.Sprintf("hq_k%d", i)})
	}
	if wrapper != nil {
		w := *wrapper
		sub := *(wrapper.From[0].(*sqlparse.SubqueryRef))
		sub.Query = final
		w.From = []sqlparse.TableRef{&sub}
		d.plan.final = &w
	} else {
		d.plan.final = final
	}

	// exactness fallback: replay the original aggregate over the gathered
	// input rows. Possible whenever the input exposes an order column (the
	// global fold order to re-create) and the aggregate references only
	// unqualified columns (resolvable against the scratch table, whose name
	// is not the original's). The translator wraps every aggregate input in
	// a projected subquery, so SELECT * yields unique unqualified names.
	if d.ord != nil && selectExprsUnqualified(inner) {
		d.plan.gather = scan
		run := *inner
		run.From = []sqlparse.TableRef{&sqlparse.BaseTable{Name: gatherTable}}
		run.Where = nil // the gather scan already applied the filter
		if wrapper != nil {
			w := *wrapper
			sub := *(wrapper.From[0].(*sqlparse.SubqueryRef))
			sub.Query = &run
			w.From = []sqlparse.TableRef{&sub}
			d.plan.gatherFinal = &w
		} else {
			d.plan.gatherFinal = &run
		}
	}
	return d.plan, nil
}

// selectExprsUnqualified reports whether every column reference in the
// select's items and group keys is unqualified (and subquery-free), the
// precondition for replaying the statement against the gather scratch
// table.
func selectExprsUnqualified(sel *sqlparse.SelectStmt) bool {
	for _, it := range sel.Items {
		if !exprUnqualified(it.Expr) {
			return false
		}
	}
	for _, gb := range sel.GroupBy {
		if !exprUnqualified(gb) {
			return false
		}
	}
	return true
}

func exprUnqualified(e sqlparse.Expr) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *sqlparse.ColRef:
		return x.Table == ""
	case *sqlparse.BinaryExpr:
		return exprUnqualified(x.L) && exprUnqualified(x.R)
	case *sqlparse.UnaryExpr:
		return exprUnqualified(x.X)
	case *sqlparse.CastExpr:
		return exprUnqualified(x.X)
	case *sqlparse.IsNullExpr:
		return exprUnqualified(x.X)
	case *sqlparse.CaseExpr:
		if !exprUnqualified(x.Operand) {
			return false
		}
		for _, w := range x.Whens {
			if !exprUnqualified(w.Cond) || !exprUnqualified(w.Then) {
				return false
			}
		}
		return exprUnqualified(x.Else)
	case *sqlparse.FuncCall:
		if x.Over != nil {
			return false
		}
		for _, a := range x.Args {
			if !exprUnqualified(a) {
				return false
			}
		}
		return true
	case *sqlparse.SubqueryExpr:
		return false
	default:
		return true
	}
}

// decomposer accumulates partial columns while rewriting aggregate
// expressions.
type decomposer struct {
	plan     *aggPlan
	ord      *sqlparse.ColRef
	keys     []sqlparse.SelectItem
	partials []sqlparse.SelectItem
}

func (d *decomposer) addPartial(e sqlparse.Expr, last bool) *sqlparse.ColRef {
	name := fmt.Sprintf("hq_p%d", len(d.partials))
	d.partials = append(d.partials, sqlparse.SelectItem{Expr: e, Alias: name})
	if last {
		d.plan.lastCols[name] = true
	}
	return &sqlparse.ColRef{Name: name}
}

// rewrite clones an aggregate-bearing expression, replacing every
// aggregate call with its re-aggregation over a fresh partial column. The
// surrounding scalar structure (COALESCE, NULLIF, casts, arithmetic — the
// wavg spelling) is preserved.
func (d *decomposer) rewrite(e sqlparse.Expr) (sqlparse.Expr, error) {
	switch x := e.(type) {
	case *sqlparse.FuncCall:
		if x.Over != nil {
			return nil, unsupportedErr("window function in aggregate item")
		}
		if !aggNames[x.Name] {
			out := &sqlparse.FuncCall{Name: x.Name, Star: x.Star, Distinct: x.Distinct}
			for _, a := range x.Args {
				ra, err := d.rewrite(a)
				if err != nil {
					return nil, err
				}
				out.Args = append(out.Args, ra)
			}
			return out, nil
		}
		if x.Distinct {
			return nil, unsupportedErr("DISTINCT aggregate %s", x.Name)
		}
		sum := func(arg sqlparse.Expr) *sqlparse.FuncCall {
			return &sqlparse.FuncCall{Name: "sum", Args: []sqlparse.Expr{arg}}
		}
		switch x.Name {
		case "sum":
			p := d.addPartial(x, false)
			d.plan.sumCols = append(d.plan.sumCols, p.Name)
			return sum(p), nil
		case "count":
			p := d.addPartial(x, false)
			return &sqlparse.FuncCall{Name: "coalesce",
				Args: []sqlparse.Expr{sum(p), &sqlparse.NumberLit{Text: "0"}}}, nil
		case "min", "max", "bool_and", "bool_or":
			p := d.addPartial(x, false)
			if (x.Name == "min" || x.Name == "max") && len(x.Args) == 1 {
				d.plan.minmax = append(d.plan.minmax, mmPartial{col: p.Name, arg: x.Args[0]})
			}
			return &sqlparse.FuncCall{Name: x.Name, Args: []sqlparse.Expr{p}}, nil
		case "avg":
			ps := d.addPartial(&sqlparse.FuncCall{Name: "sum", Args: x.Args}, false)
			d.plan.sumCols = append(d.plan.sumCols, ps.Name)
			pc := d.addPartial(&sqlparse.FuncCall{Name: "count", Args: x.Args}, false)
			return &sqlparse.BinaryExpr{
				Op: "/",
				L:  &sqlparse.CastExpr{X: sum(ps), Type: "double precision"},
				R: &sqlparse.FuncCall{Name: "nullif",
					Args: []sqlparse.Expr{sum(pc), &sqlparse.NumberLit{Text: "0"}}},
			}, nil
		case "first":
			d.plan.needAB = true
			p := d.addPartial(x, false)
			return &sqlparse.FuncCall{Name: "first", Args: []sqlparse.Expr{p}}, nil
		case "last":
			d.plan.needAB = true
			p := d.addPartial(x, true)
			return &sqlparse.FuncCall{Name: "last", Args: []sqlparse.Expr{p}}, nil
		}
		return nil, unsupportedErr("aggregate %s has no distributed form", x.Name)
	case *sqlparse.BinaryExpr:
		l, err := d.rewrite(x.L)
		if err != nil {
			return nil, err
		}
		r, err := d.rewrite(x.R)
		if err != nil {
			return nil, err
		}
		return &sqlparse.BinaryExpr{Op: x.Op, L: l, R: r}, nil
	case *sqlparse.UnaryExpr:
		in, err := d.rewrite(x.X)
		if err != nil {
			return nil, err
		}
		return &sqlparse.UnaryExpr{Op: x.Op, X: in}, nil
	case *sqlparse.CastExpr:
		in, err := d.rewrite(x.X)
		if err != nil {
			return nil, err
		}
		return &sqlparse.CastExpr{X: in, Type: x.Type}, nil
	case *sqlparse.IsNullExpr:
		in, err := d.rewrite(x.X)
		if err != nil {
			return nil, err
		}
		return &sqlparse.IsNullExpr{X: in, Not: x.Not}, nil
	case *sqlparse.CaseExpr:
		out := &sqlparse.CaseExpr{}
		var err error
		if x.Operand != nil {
			if out.Operand, err = d.rewrite(x.Operand); err != nil {
				return nil, err
			}
		}
		for _, w := range x.Whens {
			cw := sqlparse.CaseWhen{}
			if cw.Cond, err = d.rewrite(w.Cond); err != nil {
				return nil, err
			}
			if cw.Then, err = d.rewrite(w.Then); err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, cw)
		}
		if x.Else != nil {
			if out.Else, err = d.rewrite(x.Else); err != nil {
				return nil, err
			}
		}
		return out, nil
	case *sqlparse.SubqueryExpr:
		return nil, unsupportedErr("scalar subquery in aggregate item")
	default:
		// leaves: literals, column references (group keys resolve through
		// hq_k items, anything else fails loudly on the scratch table)
		return e, nil
	}
}

// probeSQL renders the partial with WHERE FALSE: a zero-row execution
// whose result columns carry the statically inferred types, before the
// engine's value-dependent refinement has any values to refine from. The
// scratch table declares these types so the coordinator's final pass
// starts from the same static baseline the single backend does.
func probeSQL(ap *aggPlan) string {
	probe := *ap.partial
	probe.Where = &sqlparse.BoolLit{V: false}
	return pgdb.RenderSelect(&probe)
}

// zeroOrdCarrier builds MIN(CASE WHEN CAST(arg AS varchar) = '-0' ('0')
// THEN ord END): the first order position at which arg evaluates to a
// negative (positive) zero. The engine's varchar cast renders any value
// through FormatValue, which is the only total (never type-erroring) way
// SQL can see the sign of a zero that compares equal to its twin — the
// carriers must be safe to evaluate for non-float arguments too, because
// they are emitted before the type probe returns.
func zeroOrdCarrier(arg sqlparse.Expr, ord *sqlparse.ColRef, negative bool) sqlparse.Expr {
	want := "0"
	if negative {
		want = "-0"
	}
	cond := &sqlparse.BinaryExpr{
		Op: "=",
		L:  &sqlparse.CastExpr{X: arg, Type: "varchar"},
		R:  &sqlparse.StringLit{V: want},
	}
	return &sqlparse.FuncCall{Name: "min", Args: []sqlparse.Expr{
		&sqlparse.CaseExpr{Whens: []sqlparse.CaseWhen{{Cond: cond, Then: ord}}}}}
}

// extendZeroCarriers clones the partial select, appending the ±0 carrier
// pair for every MIN/MAX partial. It returns the select to fan out and,
// per partial column, the carrier suffix ("3" for hq_p3 → hq_zn3/hq_zp3);
// whether a column's carriers are acted on is decided later, when the
// type probe identifies the float-typed partials. Inputs without an order
// column keep the plain partial: the tie sign is then unreproducible and
// left to shard order.
func extendZeroCarriers(ap *aggPlan) (*sqlparse.SelectStmt, map[string]string) {
	if ap.ord == nil || len(ap.minmax) == 0 {
		return ap.partial, nil
	}
	zero := map[string]string{}
	sel := *ap.partial
	items := append([]sqlparse.SelectItem{}, sel.Items...)
	for _, mm := range ap.minmax {
		if _, dup := zero[mm.col]; dup {
			continue
		}
		sfx := strings.TrimPrefix(mm.col, "hq_p")
		zero[mm.col] = sfx
		items = append(items,
			sqlparse.SelectItem{Expr: zeroOrdCarrier(mm.arg, ap.ord, true), Alias: "hq_zn" + sfx},
			sqlparse.SelectItem{Expr: zeroOrdCarrier(mm.arg, ap.ord, false), Alias: "hq_zp" + sfx})
	}
	sel.Items = items
	return &sel, zero
}

// textToTyped rebuilds engine-typed values from a wire-text result, using
// each column's reported type. Members without a TypedBackend path (real
// networked clusters) lose per-value type fidelity at the wire — a shard
// whose refined column type is double precision reports every value as a
// float — which is the documented approximation for networked members.
func textToTyped(br *core.BackendResult) *pgdb.Result {
	res := &pgdb.Result{Tag: br.Tag}
	for _, c := range br.Cols {
		res.Cols = append(res.Cols, pgdb.Column{Name: c.Name, Type: c.SQLType})
	}
	for _, row := range br.Rows {
		r := make([]any, len(row))
		for j, f := range row {
			if f.Null {
				continue
			}
			r[j] = parseTextValue(f.Text, br.Cols[j].SQLType)
		}
		res.Rows = append(res.Rows, r)
	}
	return res
}

// parseTextValue inverts pgdb.FormatValue for one cell, keeping the text
// verbatim when the type doesn't parse (varchar and friends).
func parseTextValue(text, typ string) any {
	if v, err := pgdb.ParseValue(text, strings.ToLower(typ)); err == nil {
		return v
	}
	return text
}

// needGather decides, from the probed static types and the gathered
// partial values, whether exactness requires replaying the aggregate over
// its input rows instead of re-aggregating partials:
//
//   - a SUM partial over floats (static float class, or runtime floats
//     observed): float addition is non-associative, so a sum of per-shard
//     partial sums rounds differently than the single backend's
//     sequential fold over the same values;
//   - a MIN/MAX partial whose static type is not float but whose runtime
//     values include floats: a runtime int can tie against a runtime
//     float that compares equal (CASE arms of mixed types), and the kept
//     twin decides the observed column type after value-dependent
//     refinement — the ±0 carriers only arbitrate all-float ties.
func needGather(ap *aggPlan, static map[string]string, results []*pgdb.Result) bool {
	if ap.gatherFinal == nil || len(results) == 0 || results[0] == nil {
		return false
	}
	colIdx := func(name string) int {
		for j, c := range results[0].Cols {
			if c.Name == name {
				return j
			}
		}
		return -1
	}
	hasFloat := func(j int) bool {
		if j < 0 {
			return false
		}
		for _, res := range results {
			if res == nil {
				continue
			}
			for _, row := range res.Rows {
				if j < len(row) {
					if _, ok := row[j].(float64); ok {
						return true
					}
				}
			}
		}
		return false
	}
	for _, c := range ap.sumCols {
		if numericClass(static[c]) == 2 || hasFloat(colIdx(c)) {
			return true
		}
	}
	for _, mm := range ap.minmax {
		if numericClass(static[mm.col]) != 2 && hasFloat(colIdx(mm.col)) {
			return true
		}
	}
	return false
}

// groupKey renders a partial row's hq_k columns into a map key. A float
// ±0 pair collapses into one key, matching the engine's equality-based
// grouping.
func groupKey(row []any, cols []pgdb.Column) string {
	var sb strings.Builder
	for j, c := range cols {
		if !strings.HasPrefix(c.Name, "hq_k") {
			continue
		}
		sb.WriteByte('|')
		switch v := row[j].(type) {
		case nil:
			sb.WriteByte('n')
		case int64:
			sb.WriteString("i:")
			sb.WriteString(strconv.FormatInt(v, 10))
		case float64:
			if v == 0 {
				v = 0
			}
			sb.WriteString("f:")
			sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		case bool:
			sb.WriteString("b:")
			sb.WriteString(strconv.FormatBool(v))
		case string:
			sb.WriteString("s:")
			sb.WriteString(v)
		default:
			fmt.Fprintf(&sb, "%v", v)
		}
	}
	return sb.String()
}

// runAggregate executes a decomposed aggregate: typed partials gathered
// from the target shards land in a scratch embedded table (injected
// directly, preserving each value's runtime type), and the final statement
// re-aggregates there. static holds the probed static column types the
// scratch table declares; zero names the MIN/MAX partial columns carrying
// ±0 sign information.
func runAggregate(ctx context.Context, ap *aggPlan, results []*pgdb.Result, static, zero map[string]string) (*pgdb.Result, error) {
	if len(results) == 0 || results[0] == nil {
		return nil, fmt.Errorf("shard: missing partial results")
	}
	cols := results[0].Cols
	for _, r := range results[1:] {
		if r == nil {
			return nil, fmt.Errorf("shard: missing partial result")
		}
		if len(r.Cols) != len(cols) {
			return nil, fmt.Errorf("shard: partial schema width mismatch: %d vs %d", len(r.Cols), len(cols))
		}
	}
	idx := func(name string) int {
		for j, c := range cols {
			if c.Name == name {
				return j
			}
		}
		return -1
	}
	cntIdx := idx("hq_cnt")
	foIdx, loIdx := idx("hq_fo"), idx("hq_lo")
	if cntIdx < 0 || ap.needAB && (foIdx < 0 || loIdx < 0) {
		return nil, fmt.Errorf("shard: partial result missing bookkeeping columns")
	}
	// the scratch row is the partial minus the trailing carrier columns
	width := cntIdx + 1
	getInt := func(row []any, i int) (int64, bool) {
		switch v := row[i].(type) {
		case int64:
			return v, true
		case float64:
			return int64(v), true
		}
		return 0, false
	}

	// zero-sign fix: the engine's MIN/MAX keep the first-encountered value
	// among compare-equal ties, and ±0.0 is the only distinguishable pair.
	// Per group, find the globally first order position holding a negative
	// and a positive zero, then rewrite every gathered ±0 partial to the
	// sign the single backend's scan order would have kept — after which
	// the coordinator's own tie-keeping cannot pick the wrong twin.
	for col, sfx := range zero {
		if numericClass(static[col]) != 2 {
			// the carriers were emitted before the probe settled the
			// partial's static type; a non-float MIN/MAX has no signed
			// zeros to fix
			continue
		}
		vi, ni, pi := idx(col), idx("hq_zn"+sfx), idx("hq_zp"+sfx)
		if vi < 0 || ni < 0 || pi < 0 {
			return nil, fmt.Errorf("shard: partial result missing zero carriers for %s", col)
		}
		type firstZeros struct {
			negOrd, posOrd int64
			hasNeg, hasPos bool
		}
		groups := map[string]*firstZeros{}
		for _, res := range results {
			for _, row := range res.Rows {
				k := groupKey(row, cols)
				g := groups[k]
				if g == nil {
					g = &firstZeros{}
					groups[k] = g
				}
				if v, ok := getInt(row, ni); ok && (!g.hasNeg || v < g.negOrd) {
					g.negOrd, g.hasNeg = v, true
				}
				if v, ok := getInt(row, pi); ok && (!g.hasPos || v < g.posOrd) {
					g.posOrd, g.hasPos = v, true
				}
			}
		}
		for _, res := range results {
			for _, row := range res.Rows {
				f, ok := row[vi].(float64)
				if !ok || f != 0 {
					continue
				}
				g := groups[groupKey(row, cols)]
				if g == nil || !g.hasNeg && !g.hasPos {
					continue
				}
				if g.hasNeg && (!g.hasPos || g.negOrd < g.posOrd) {
					row[vi] = math.Copysign(0, -1)
				} else {
					row[vi] = float64(0)
				}
			}
		}
	}

	type entry struct {
		ord   int64
		kind  int // 0 = A (first carriers), 1 = B (last carriers)
		shard int
		row   []any
	}
	var entries []entry
	for si, res := range results {
		for _, row := range res.Rows {
			if len(row) != len(cols) {
				return nil, fmt.Errorf("shard: partial row width mismatch")
			}
			cnt, _ := getInt(row, cntIdx)
			if cnt == 0 {
				// an empty shard's global-aggregate row: its partials are
				// identity values, but its FIRST/LAST must not compete
				continue
			}
			if !ap.needAB {
				entries = append(entries, entry{shard: si, row: append([]any{}, row[:width]...)})
				continue
			}
			fo, ok1 := getInt(row, foIdx)
			lo, ok2 := getInt(row, loIdx)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("shard: unparseable order bounds in partial row")
			}
			a := make([]any, width)
			b := make([]any, width)
			for j := 0; j < width; j++ {
				isKey := strings.HasPrefix(cols[j].Name, "hq_k")
				isLast := ap.lastCols[cols[j].Name]
				switch {
				case isKey:
					a[j], b[j] = row[j], row[j]
				case isLast:
					b[j] = row[j]
				default:
					a[j] = row[j]
				}
			}
			entries = append(entries,
				entry{ord: fo, kind: 0, shard: si, row: a},
				entry{ord: lo, kind: 1, shard: si, row: b})
		}
	}
	if ap.needAB {
		sort.SliceStable(entries, func(i, j int) bool {
			if entries[i].ord != entries[j].ord {
				return entries[i].ord < entries[j].ord
			}
			if entries[i].kind != entries[j].kind {
				return entries[i].kind < entries[j].kind
			}
			return entries[i].shard < entries[j].shard
		})
	}

	scols := make([]pgdb.Column, width)
	for j := 0; j < width; j++ {
		name := cols[j].Name
		typ := static[name]
		if typ == "" {
			typ = cols[j].Type
		}
		if typ == "varchar" {
			// the probe cannot tell a static varchar from a statically
			// unknown type refined over zero rows; when any shard refined
			// the column to something else, declare it unknown so the
			// final pass refines from the values, as the single backend's
			// does
			for _, r := range results {
				if r.Cols[j].Type != "varchar" {
					typ = "unknown"
					break
				}
			}
		}
		scols[j] = pgdb.Column{Name: name, Type: typ}
	}

	db := pgdb.NewDB()
	db.CreateTable(partTable, scols)
	rows := make([][]any, len(entries))
	for i, e := range entries {
		rows[i] = e.row
	}
	if err := db.InsertRows(partTable, rows); err != nil {
		return nil, fmt.Errorf("shard: scratch load: %w", err)
	}
	scratch := db.NewSession()
	defer scratch.Close()
	res, err := scratch.ExecContext(ctx, pgdb.RenderSelect(ap.final))
	if err != nil {
		return nil, fmt.Errorf("shard: final aggregation: %w", err)
	}
	return res, nil
}

// appendFieldLiteral renders a text field as a cast SQL literal
// ('text'::type), the spelling that round-trips every engine type
// including 'Infinity'::double precision.
func appendFieldLiteral(sb *strings.Builder, f core.Field, sqlType string) {
	if f.Null {
		sb.WriteString("NULL")
		return
	}
	sb.WriteByte('\'')
	for i := 0; i < len(f.Text); i++ {
		if f.Text[i] == '\'' {
			sb.WriteByte('\'')
		}
		sb.WriteByte(f.Text[i])
	}
	sb.WriteString("'::")
	sb.WriteString(sqlType)
}

// numericClass buckets SQL types: 1 integer kinds, 2 float kinds, 0 other.
func numericClass(t string) int {
	switch strings.ToLower(t) {
	case "smallint", "integer", "bigint":
		return 1
	case "real", "double precision", "numeric":
		return 2
	}
	return 0
}
