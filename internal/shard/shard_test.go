package shard

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hyperq/internal/core"
	"hyperq/internal/pgdb"
)

var bg = context.Background()

// countingBackend wraps a member backend and counts the statements it
// receives, so pruning tests can assert which shards were queried.
type countingBackend struct {
	inner *core.DirectBackend
	n     atomic.Int64
}

func (c *countingBackend) Exec(ctx context.Context, sql string) (*core.BackendResult, error) {
	c.n.Add(1)
	return c.inner.Exec(ctx, sql)
}

func (c *countingBackend) ExecStream(ctx context.Context, sql string, sink core.RowSink) error {
	c.n.Add(1)
	return c.inner.ExecStream(ctx, sql, sink)
}

func (c *countingBackend) QueryCatalog(ctx context.Context, sql string) ([][]string, error) {
	return c.inner.QueryCatalog(ctx, sql)
}

func (c *countingBackend) Close() error { return c.inner.Close() }

var testRules = []TableSpec{
	{Name: "t", Kind: Hash, Column: "s"},
	{Name: "q2", Kind: Hash, Column: "s"},
	{Name: "r", Kind: Range, Column: "k", Bounds: []string{"10", "20"}},
}

var setupSQL = []string{
	"CREATE TABLE t (ordcol bigint, s text, i bigint, f double precision)",
	"INSERT INTO t VALUES (0, 'aa', 1, 1.5), (1, 'bb', 2, 2.5), (2, 'cc', 3, 3.5), (3, 'aa', 4, 4.5), (4, NULL, 5, 0.5), (5, 'bb', 6, 6.5), (6, 'dd', 7, 7.5), (7, 'cc', 8, 8.5)",
	"CREATE TABLE d (s text, label text)",
	"INSERT INTO d VALUES ('aa', 'A'), ('bb', 'B'), ('cc', 'C'), ('dd', 'D')",
	"CREATE TABLE q2 (ordcol bigint, s text, p double precision)",
	"INSERT INTO q2 VALUES (0, 'aa', 10.25), (1, 'bb', 20.5), (2, 'aa', 11.75), (3, 'cc', 30.125), (4, 'ee', 40.0)",
	"CREATE TABLE r (ordcol bigint, k bigint, v text)",
	"INSERT INTO r VALUES (0, 5, 'low'), (1, 12, 'mid'), (2, 25, 'high'), (3, 15, 'mid2'), (4, 8, 'low2'), (5, 22, 'high2')",
}

// newTestCluster builds an n-shard cluster with counted members, loads the
// test schema into it and into a single-engine baseline backend.
func newTestCluster(t *testing.T, n int) (*Backend, []*countingBackend, *core.DirectBackend) {
	t.Helper()
	counters := make([]*countingBackend, n)
	factories := make([]func() (core.Backend, error), n)
	for i := range factories {
		db := pgdb.NewDB()
		cb := &countingBackend{inner: core.NewDirectBackend(db)}
		counters[i] = cb
		factories[i] = func() (core.Backend, error) { return cb, nil }
	}
	cl, err := New(NewCatalog(n, testRules), factories)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := cl.NewBackend()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sh.Close() })
	single := core.NewDirectBackend(pgdb.NewDB())
	t.Cleanup(func() { single.Close() })
	for _, sql := range setupSQL {
		if _, err := sh.Exec(bg, sql); err != nil {
			t.Fatalf("sharded setup %q: %v", sql, err)
		}
		if _, err := single.Exec(bg, sql); err != nil {
			t.Fatalf("single setup %q: %v", sql, err)
		}
	}
	return sh, counters, single
}

func snap(counters []*countingBackend) []int64 {
	out := make([]int64, len(counters))
	for i, c := range counters {
		out[i] = c.n.Load()
	}
	return out
}

func delta(counters []*countingBackend, before []int64) []int64 {
	out := make([]int64, len(counters))
	for i, c := range counters {
		out[i] = c.n.Load() - before[i]
	}
	return out
}

// checkParity runs sql on the sharded backend (both the materialized and
// the streaming path) and the single-engine baseline, and requires
// identical column names, rows, and command tag.
func checkParity(t *testing.T, sh *Backend, single core.Backend, sql string) *core.BackendResult {
	t.Helper()
	got, gerr := sh.Exec(bg, sql)
	want, werr := single.Exec(bg, sql)
	if (gerr != nil) != (werr != nil) {
		t.Fatalf("%q: sharded err=%v single err=%v", sql, gerr, werr)
	}
	if gerr != nil {
		return nil
	}
	compareResults(t, sql+" (exec)", got, want)
	var streamed resultSink
	if err := sh.ExecStream(bg, sql, &streamed); err != nil {
		t.Fatalf("%q: stream: %v", sql, err)
	}
	compareResults(t, sql+" (stream)", &streamed.res, want)
	return got
}

func compareResults(t *testing.T, label string, got, want *core.BackendResult) {
	t.Helper()
	if len(got.Cols) != len(want.Cols) {
		t.Fatalf("%s: %d cols, want %d", label, len(got.Cols), len(want.Cols))
	}
	for j := range got.Cols {
		if !strings.EqualFold(got.Cols[j].Name, want.Cols[j].Name) {
			t.Fatalf("%s: col %d name %q, want %q", label, j, got.Cols[j].Name, want.Cols[j].Name)
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			g, w := got.Rows[i][j], want.Rows[i][j]
			if g.Null != w.Null || (!g.Null && g.Text != w.Text) {
				t.Fatalf("%s: row %d col %d = %+v, want %+v", label, i, j, g, w)
			}
		}
	}
	if got.Tag != want.Tag {
		t.Fatalf("%s: tag %q, want %q", label, got.Tag, want.Tag)
	}
}

func hashShard(n int, key string) int {
	return shardFor(&TableSpec{Kind: Hash, Column: "s"}, n, partVal{str: key})
}

func assertCounts(t *testing.T, label string, got []int64, want map[int]int64) {
	t.Helper()
	for i, g := range got {
		if g != want[i] {
			t.Fatalf("%s: shard %d saw %d queries, want %d (all: %v)", label, i, g, want[i], got)
		}
	}
}

func TestPruneEquality(t *testing.T) {
	sh, counters, single := newTestCluster(t, 3)
	before := snap(counters)
	checkParity(t, sh, single, "SELECT ordcol, i FROM t WHERE s = 'aa' ORDER BY ordcol")
	own := hashShard(3, "aa")
	// exec path + stream path each hit the owning shard once
	assertCounts(t, "equality", delta(counters, before), map[int]int64{own: 2})
}

func TestPruneNullKey(t *testing.T) {
	sh, counters, single := newTestCluster(t, 3)
	before := snap(counters)
	checkParity(t, sh, single, "SELECT ordcol, i FROM t WHERE s IS NULL ORDER BY ordcol")
	// NULL keys are routed to shard 0 by convention
	assertCounts(t, "is-null", delta(counters, before), map[int]int64{0: 2})
}

func TestPruneInList(t *testing.T) {
	sh, counters, single := newTestCluster(t, 3)
	before := snap(counters)
	checkParity(t, sh, single, "SELECT ordcol, i FROM t WHERE s IN ('aa', 'bb', 'cc') ORDER BY ordcol")
	want := map[int]int64{}
	for _, sym := range []string{"aa", "bb", "cc"} {
		want[hashShard(3, sym)] += 0 // ensure key exists even on collision
	}
	for i := range want {
		want[i] = 2
	}
	assertCounts(t, "in-list", delta(counters, before), want)
}

func TestPruneNoShard(t *testing.T) {
	sh, counters, single := newTestCluster(t, 3)
	before := snap(counters)
	res := checkParity(t, sh, single, "SELECT ordcol, i FROM t WHERE s = NULL ORDER BY ordcol")
	if len(res.Rows) != 0 {
		t.Fatalf("expected empty result, got %d rows", len(res.Rows))
	}
	// the statement prunes to no shard at all: the designated shard runs it
	// once per path purely to produce the (empty) result shape, and no data
	// shard is queried
	assertCounts(t, "no-shard", delta(counters, before), map[int]int64{0: 2})
}

func TestPruneRange(t *testing.T) {
	cases := []struct {
		where  string
		shards []int
	}{
		{"k < 10", []int{0}},
		{"k <= 15", []int{0, 1}},
		{"k >= 10 AND k < 20", []int{1}},
		{"k = 25", []int{2}},
		{"k >= 21", []int{2}},
		{"k BETWEEN 12 AND 18", []int{1}},
	}
	for _, tc := range cases {
		t.Run(tc.where, func(t *testing.T) {
			sh, counters, single := newTestCluster(t, 3)
			before := snap(counters)
			checkParity(t, sh, single, "SELECT ordcol, k, v FROM r WHERE "+tc.where+" ORDER BY ordcol")
			want := map[int]int64{}
			for _, s := range tc.shards {
				want[s] = 2
			}
			assertCounts(t, tc.where, delta(counters, before), want)
		})
	}
}

func TestScatterOrderedMerge(t *testing.T) {
	sh, counters, single := newTestCluster(t, 3)
	before := snap(counters)
	checkParity(t, sh, single, "SELECT ordcol, s, i, f FROM t ORDER BY ordcol")
	assertCounts(t, "full scan", delta(counters, before), map[int]int64{0: 2, 1: 2, 2: 2})
	checkParity(t, sh, single, "SELECT ordcol, i FROM t ORDER BY ordcol DESC")
	checkParity(t, sh, single, "SELECT ordcol, i FROM t WHERE f > 3.0 ORDER BY ordcol")
}

func TestScatterLimit(t *testing.T) {
	sh, _, single := newTestCluster(t, 3)
	checkParity(t, sh, single, "SELECT ordcol, i FROM t ORDER BY ordcol LIMIT 3")
	checkParity(t, sh, single, "SELECT ordcol, i FROM t ORDER BY ordcol LIMIT 0")
	checkParity(t, sh, single, "SELECT ordcol, i FROM t ORDER BY ordcol LIMIT 100")
}

func TestDistributedAggregates(t *testing.T) {
	sh, _, single := newTestCluster(t, 3)
	for _, sql := range []string{
		"SELECT AVG(f) AS f FROM t",
		"SELECT SUM(i) AS i FROM t",
		"SELECT COUNT(*) AS n FROM t",
		"SELECT COUNT(s) AS n FROM t",
		"SELECT MIN(f) AS mn, MAX(f) AS mx FROM t",
		"SELECT first(s) AS fs, last(s) AS ls FROM t",
		"SELECT first(f) AS ff, last(i) AS li, sum(f) AS sf FROM t",
		"SELECT CAST(SUM(i * f) AS double precision) / NULLIF(CAST(SUM(i) AS double precision), 0) AS w FROM t",
		// empty input: the global aggregate still yields its one row
		"SELECT COUNT(*) AS n FROM t WHERE f < 0",
		"SELECT SUM(i) AS si, AVG(f) AS af FROM t WHERE f < 0",
		// grouped aggregates in the translator's wrapper shape
		"SELECT s, sf, ordcol FROM (SELECT s AS s, sum(f) AS sf, min(ordcol) AS ordcol FROM t GROUP BY s) hq_t1 ORDER BY ordcol",
		"SELECT s, af, n, ordcol FROM (SELECT s AS s, avg(f) AS af, count(*) AS n, min(ordcol) AS ordcol FROM t GROUP BY s) hq_t1 ORDER BY ordcol",
		"SELECT s, ff, lf, ordcol FROM (SELECT s AS s, first(f) AS ff, last(f) AS lf, min(ordcol) AS ordcol FROM t GROUP BY s) hq_t1 ORDER BY ordcol",
		"SELECT s, mn, mx, ordcol FROM (SELECT s AS s, min(i) AS mn, max(i) AS mx, min(ordcol) AS ordcol FROM t GROUP BY s) hq_t1 ORDER BY ordcol",
	} {
		checkParity(t, sh, single, sql)
	}
}

func TestJoins(t *testing.T) {
	sh, _, single := newTestCluster(t, 3)
	// sharded fact joined to a replicated dimension
	checkParity(t, sh, single,
		"SELECT t.ordcol AS ordcol, t.s AS s, d.label AS label FROM t JOIN d ON t.s = d.s ORDER BY ordcol")
	checkParity(t, sh, single,
		"SELECT t.ordcol AS ordcol, d.label AS label FROM t LEFT JOIN d ON t.s = d.s ORDER BY ordcol")
	// co-partitioned fact-fact join on the partition key
	checkParity(t, sh, single,
		"SELECT a.ordcol AS ordcol, a.s AS s, b.p AS p FROM t a JOIN q2 b ON a.s = b.s ORDER BY ordcol")
	// aggregate over a co-partitioned join
	checkParity(t, sh, single,
		"SELECT SUM(b.p) AS sp, COUNT(*) AS n FROM t a JOIN q2 b ON a.s = b.s")
	// a replicated side preserved against a sharded side is not distributable
	if _, err := sh.Exec(bg, "SELECT d.s AS s FROM d LEFT JOIN t ON d.s = t.s"); err == nil {
		t.Fatal("expected unsupported error for replicated-preserving LEFT JOIN")
	}
}

func TestDMLRouting(t *testing.T) {
	sh, counters, single := newTestCluster(t, 3)

	before := snap(counters)
	res, err := sh.Exec(bg, "UPDATE t SET i = 99 WHERE s = 'aa'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Tag != "UPDATE 2" {
		t.Fatalf("single-shard update tag = %q, want UPDATE 2", res.Tag)
	}
	assertCounts(t, "pruned update", delta(counters, before), map[int]int64{hashShard(3, "aa"): 1})
	if _, err := single.Exec(bg, "UPDATE t SET i = 99 WHERE s = 'aa'"); err != nil {
		t.Fatal(err)
	}

	// cross-shard DML: every owning shard runs it, rows-affected sums
	res, err = sh.Exec(bg, "UPDATE t SET f = f + 1.0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Tag != "UPDATE 8" {
		t.Fatalf("scatter update tag = %q, want UPDATE 8", res.Tag)
	}
	if _, err := single.Exec(bg, "UPDATE t SET f = f + 1.0"); err != nil {
		t.Fatal(err)
	}

	res, err = sh.Exec(bg, "DELETE FROM t WHERE s = 'bb'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Tag != "DELETE 2" {
		t.Fatalf("pruned delete tag = %q, want DELETE 2", res.Tag)
	}
	if _, err := single.Exec(bg, "DELETE FROM t WHERE s = 'bb'"); err != nil {
		t.Fatal(err)
	}

	// replicated DML broadcasts to keep copies identical but reports one
	// copy's count
	before = snap(counters)
	res, err = sh.Exec(bg, "UPDATE d SET label = 'X'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Tag != "UPDATE 4" {
		t.Fatalf("replicated update tag = %q, want UPDATE 4", res.Tag)
	}
	assertCounts(t, "replicated update", delta(counters, before), map[int]int64{0: 1, 1: 1, 2: 1})
	if _, err := single.Exec(bg, "UPDATE d SET label = 'X'"); err != nil {
		t.Fatal(err)
	}

	checkParity(t, sh, single, "SELECT ordcol, s, i, f FROM t ORDER BY ordcol")
	checkParity(t, sh, single, "SELECT s, label FROM d ORDER BY s")
}

func TestInsertRouting(t *testing.T) {
	sh, counters, _ := newTestCluster(t, 3)

	// the setup insert distributed 8 rows; verify slices directly on the
	// members: each shard holds exactly its symbols
	total := 0
	for i, c := range counters {
		res, err := c.inner.Exec(bg, "SELECT COUNT(*) AS n FROM t")
		if err != nil {
			t.Fatal(err)
		}
		n := core.RowsAffected("SELECT " + res.Rows[0][0].Text)
		total += n
		for _, sym := range []string{"aa", "bb", "cc", "dd"} {
			r, err := c.inner.Exec(bg, "SELECT COUNT(*) AS n FROM t WHERE s = '"+sym+"'")
			if err != nil {
				t.Fatal(err)
			}
			if own := hashShard(3, sym); (r.Rows[0][0].Text != "0") != (own == i) {
				t.Fatalf("shard %d holds %s rows for symbol %s owned by shard %d", i, r.Rows[0][0].Text, sym, own)
			}
		}
	}
	if total != 8 {
		t.Fatalf("shards hold %d rows total, want 8", total)
	}

	before := snap(counters)
	res, err := sh.Exec(bg, "INSERT INTO t VALUES (100, 'zz', 1, 1.0)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Tag != "INSERT 0 1" {
		t.Fatalf("insert tag = %q, want INSERT 0 1", res.Tag)
	}
	assertCounts(t, "routed insert", delta(counters, before), map[int]int64{hashShard(3, "zz"): 1})
}

func TestCreateTableAs(t *testing.T) {
	sh, counters, single := newTestCluster(t, 3)

	// CTAS over a shard-local select stays sharded and keeps the partition
	// column, so later predicates still prune
	for _, b := range []core.Backend{sh, single} {
		if _, err := b.Exec(bg, "CREATE TABLE t2 AS SELECT ordcol, s, i FROM t WHERE i > 1"); err != nil {
			t.Fatal(err)
		}
	}
	before := snap(counters)
	checkParity(t, sh, single, "SELECT ordcol, i FROM t2 WHERE s = 'cc' ORDER BY ordcol")
	assertCounts(t, "derived prune", delta(counters, before), map[int]int64{hashShard(3, "cc"): 2})

	// CTAS over a distributed aggregate replicates the merged result
	for _, b := range []core.Backend{sh, single} {
		if _, err := b.Exec(bg, "CREATE TABLE ta AS SELECT s AS s, sum(f) AS sf, min(ordcol) AS ordcol FROM t GROUP BY s"); err != nil {
			t.Fatal(err)
		}
	}
	before = snap(counters)
	checkParity(t, sh, single, "SELECT s, sf, ordcol FROM ta ORDER BY ordcol")
	assertCounts(t, "replicated agg result", delta(counters, before), map[int]int64{0: 2})

	// CTAS over a capped scatter materializes through the merge and
	// replicates, preserving global LIMIT semantics
	for _, b := range []core.Backend{sh, single} {
		if _, err := b.Exec(bg, "CREATE TABLE t3 AS SELECT ordcol, s, i FROM t ORDER BY ordcol LIMIT 3"); err != nil {
			t.Fatal(err)
		}
	}
	checkParity(t, sh, single, "SELECT ordcol, s, i FROM t3 ORDER BY ordcol")

	for _, b := range []core.Backend{sh, single} {
		if _, err := b.Exec(bg, "DROP TABLE t2"); err != nil {
			t.Fatal(err)
		}
	}
	checkParity(t, sh, single, "SELECT ordcol, i FROM t ORDER BY ordcol")
}

// errBackend fails every statement after a short delay, standing in for a
// member that dies mid-scatter.
type errBackend struct {
	delay time.Duration
}

func (e *errBackend) Exec(ctx context.Context, sql string) (*core.BackendResult, error) {
	select {
	case <-time.After(e.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return nil, errors.New("connection reset by peer")
}

func (e *errBackend) QueryCatalog(ctx context.Context, sql string) ([][]string, error) {
	return nil, errors.New("connection reset by peer")
}

func (e *errBackend) Close() error { return nil }

// TestKilledMember exercises the partial-failure path: one shard dies
// mid-scatter, its error surfaces once with shard attribution, and the
// healthy (slow) siblings are cancelled promptly instead of being drained.
func TestKilledMember(t *testing.T) {
	const slowDelay = 5 * time.Second
	mk := func() *core.DirectBackend {
		db := pgdb.NewDB()
		b := core.NewDirectBackend(db)
		if _, err := b.Exec(bg, "CREATE TABLE t (ordcol bigint, s text, i bigint)"); err != nil {
			t.Fatal(err)
		}
		b.Delay = slowDelay
		return b
	}
	slow0, slow1 := mk(), mk()
	bad := &errBackend{delay: 30 * time.Millisecond}
	cv := newCatalogView(NewCatalog(3, []TableSpec{{Name: "t", Kind: Hash, Column: "s"}}))
	cv.register("t", []string{"ordcol", "s", "i"}, nil, false)
	b := &Backend{
		cat:     cv,
		members: []core.Backend{slow0, slow1, bad},
		streams: []core.StreamBackend{slow0, slow1, nil},
	}
	defer b.Close()

	for _, run := range []func() error{
		func() error { _, err := b.Exec(bg, "SELECT ordcol, i FROM t ORDER BY ordcol"); return err },
		func() error {
			return b.ExecStream(bg, "SELECT ordcol, i FROM t ORDER BY ordcol", &resultSink{})
		},
		func() error { _, err := b.Exec(bg, "SELECT SUM(i) AS si FROM t"); return err },
	} {
		start := time.Now()
		err := run()
		elapsed := time.Since(start)
		if err == nil {
			t.Fatal("expected scatter error from killed member")
		}
		if !strings.Contains(err.Error(), "shard 2:") {
			t.Fatalf("error not attributed to the failing shard: %v", err)
		}
		if elapsed >= slowDelay/2 {
			t.Fatalf("siblings not cancelled promptly: scatter took %v", elapsed)
		}
	}
}

func TestShardedScalarSubquery(t *testing.T) {
	sh, counters, single := newTestCluster(t, 3)

	// a subquery pinned to one shard makes the whole statement single-shard:
	// every sharded row it can touch lives there, so verbatim execution on
	// that shard is exact — and NOT the designated shard 0, which would see
	// only its own slice
	before := snap(counters)
	checkParity(t, sh, single,
		"SELECT s, (SELECT COUNT(*) FROM t WHERE t.s = 'aa') AS n FROM d ORDER BY s")
	assertCounts(t, "pinned subquery", delta(counters, before), map[int]int64{hashShard(3, "aa"): 2})

	// a multi-shard subquery under a replicated FROM must be rejected, not
	// silently run on one shard (a shard-local count)
	for _, sql := range []string{
		"SELECT (SELECT COUNT(*) FROM t) AS n FROM d",
		"SELECT s FROM d WHERE (SELECT COUNT(*) FROM t) > 0",
		"SELECT s FROM d ORDER BY (SELECT COUNT(*) FROM t)",
	} {
		if _, err := sh.Exec(bg, sql); err == nil || !strings.Contains(err.Error(), "unsupported") {
			t.Fatalf("%q: want unsupported error, got %v", sql, err)
		}
	}

	// DML carrying a sharded subquery runs verbatim per shard and would
	// evaluate it over each shard's slice: rejected in every position
	for _, sql := range []string{
		"UPDATE d SET label = (SELECT MAX(s) FROM t)",
		"UPDATE t SET i = 0 WHERE i = (SELECT MAX(i) FROM t)",
		"DELETE FROM t WHERE i = (SELECT MAX(i) FROM t)",
		"INSERT INTO d VALUES ('zz', (SELECT MAX(s) FROM t))",
		"INSERT INTO d SELECT s, (SELECT MAX(s) FROM t) FROM d",
	} {
		if _, err := sh.Exec(bg, sql); err == nil || !strings.Contains(err.Error(), "unsupported") {
			t.Fatalf("%q: want unsupported error, got %v", sql, err)
		}
	}

	// replicated copies and sharded slices must be untouched by the rejected
	// statements
	checkParity(t, sh, single, "SELECT s, label FROM d ORDER BY s")
	checkParity(t, sh, single, "SELECT ordcol, s, i FROM t ORDER BY ordcol")
}

func TestNullSafeCmpShapeValidation(t *testing.T) {
	sh, counters, single := newTestCluster(t, 3)

	// not the translator's null-safe shape: the first arm admits rows that
	// live on other shards, so no unwrap may happen (regression: the partial
	// shape check unwrapped this and dropped the first-arm rows)
	other := ""
	for _, sym := range []string{"bb", "cc", "dd"} {
		if hashShard(3, sym) != hashShard(3, "aa") {
			other = sym
			break
		}
	}
	if other == "" {
		t.Fatal("test data degenerate: all symbols hash to one shard")
	}
	iOf := map[string]string{"bb": "2", "cc": "3", "dd": "7"}[other]
	res := checkParity(t, sh, single,
		"SELECT ordcol, s, i FROM t WHERE CASE WHEN i = "+iOf+" THEN TRUE WHEN s IS NULL THEN FALSE ELSE s = 'aa' END ORDER BY ordcol")
	if len(res.Rows) != 3 { // both 'aa' rows plus the first-arm row on the other shard
		t.Fatalf("crafted CASE returned %d rows, want 3", len(res.Rows))
	}

	// the translator's genuine shape with the literal in the first arm: the
	// arm is unreachable, so the inner comparison prunes tightly
	before := snap(counters)
	checkParity(t, sh, single,
		"SELECT ordcol, k, v FROM r WHERE CASE WHEN 21 IS NULL THEN (k IS NOT NULL) WHEN k IS NULL THEN FALSE ELSE (k > 21) END ORDER BY ordcol")
	assertCounts(t, "literal-first-arm", delta(counters, before), map[int]int64{2: 2})

	// a key-first-arm shape admits NULL keys, which live on shard 0: the
	// pruned set must keep it alongside the comparison's shards
	for _, b := range []core.Backend{sh, single} {
		if _, err := b.Exec(bg, "INSERT INTO r VALUES (6, NULL, 'nil')"); err != nil {
			t.Fatal(err)
		}
	}
	before = snap(counters)
	res = checkParity(t, sh, single,
		"SELECT ordcol, k, v FROM r WHERE CASE WHEN k IS NULL THEN TRUE WHEN 21 IS NULL THEN FALSE ELSE (k > 21) END ORDER BY ordcol")
	if len(res.Rows) != 3 { // k=25, k=22, and the NULL-k row
		t.Fatalf("key-first-arm CASE returned %d rows, want 3", len(res.Rows))
	}
	assertCounts(t, "key-first-arm", delta(counters, before), map[int]int64{0: 2, 2: 2})
}

func TestRangeBoundsNumericSort(t *testing.T) {
	bounds := []string{"10", "9"}
	cat := NewCatalog(3, []TableSpec{{Name: "nr", Kind: Range, Column: "k", Bounds: bounds}})
	ti := cat.lookup("nr")
	if got := strings.Join(ti.spec.Bounds, ","); got != "9,10" {
		t.Fatalf("bounds sorted to %q, want \"9,10\"", got)
	}
	if bounds[0] != "10" || bounds[1] != "9" {
		t.Fatalf("caller's bounds slice mutated: %v", bounds)
	}
	for _, tc := range []struct {
		key   float64
		shard int
	}{{5, 0}, {9, 1}, {9.5, 1}, {10, 2}, {50, 2}} {
		if got := shardFor(&ti.spec, 3, partVal{isNum: true, num: tc.key}); got != tc.shard {
			t.Fatalf("key %v routed to shard %d, want %d", tc.key, got, tc.shard)
		}
	}
	// bounds beyond shards-1 are unreachable (shardFor clamps) and dropped
	cat2 := NewCatalog(2, []TableSpec{{Name: "nr", Kind: Range, Column: "k", Bounds: []string{"3", "1", "2"}}})
	if got := strings.Join(cat2.lookup("nr").spec.Bounds, ","); got != "1" {
		t.Fatalf("excess bounds kept: %q", got)
	}
}

func TestTransactionBroadcast(t *testing.T) {
	sh, _, single := newTestCluster(t, 3)
	for _, sql := range []string{"BEGIN", "INSERT INTO t VALUES (50, 'aa', 9, 9.5)", "COMMIT"} {
		if _, err := sh.Exec(bg, sql); err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		if _, err := single.Exec(bg, sql); err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
	}
	checkParity(t, sh, single, "SELECT ordcol, s, i FROM t ORDER BY ordcol")
}
