// Package shard is the scatter-gather sharding layer: a core.Backend that
// spreads tables over N member backends (embedded pgdb engines or pooled
// PG v3 connections) and makes the cluster look like one database to the
// platform session. It sits exactly where Hyper-Q sits in the paper —
// between translation and the wire — so neither the q client nor the
// member backends know sharding is happening. A catalog declares per-table
// partitioning (hash by symbol, range by date, or replicated), a planner
// classifies each translated statement (single-shard via predicate
// pruning, scatter-gather with a streaming ordered merge, or distributed
// aggregation with sum/count decomposition), and a coordinator merges
// partial results into the typed columnar result pipeline.
package shard

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hyperq/internal/pgdb/sqlparse"
)

// Kind is a table's partitioning strategy.
type Kind int

// Partitioning strategies.
const (
	// Replicated keeps a full copy on every shard (dimension tables).
	Replicated Kind = iota
	// Hash spreads rows by a hash of one column (fact tables by symbol).
	Hash
	// Range spreads rows by comparing one column against sorted bounds
	// (time-series tables by date).
	Range
	// ShardedOpaque marks a derived table (CREATE TABLE AS over a sharded
	// select) whose rows live sliced across shards but whose partition
	// column is unknown: scans scatter, pruning and co-partitioned joins
	// are unavailable.
	ShardedOpaque
)

func (k Kind) String() string {
	switch k {
	case Replicated:
		return "replicated"
	case Hash:
		return "hash"
	case Range:
		return "range"
	case ShardedOpaque:
		return "sharded"
	}
	return "unknown"
}

// Sharded reports whether rows of a table with this kind are spread over
// shards (anything but Replicated).
func (k Kind) Sharded() bool { return k != Replicated }

// TableSpec declares one table's partitioning. Used both as a catalog rule
// (what to do when the table is created) and as the registered state.
type TableSpec struct {
	Name   string
	Kind   Kind
	Column string // partition column for Hash/Range
	// Bounds are the N-1 sorted split points for Range: shard i holds
	// rows with Bounds[i-1] <= key < Bounds[i]. Each bound is a literal in
	// the same text form queries use ("2024-01-02" for dates). Numeric
	// bounds compare numerically, everything else lexicographically —
	// which is exactly right for ISO dates, times and timestamps.
	Bounds []string
}

// tableInfo is a registered table: its spec plus the column order observed
// at CREATE TABLE time (needed to route positional INSERT ... VALUES).
type tableInfo struct {
	spec TableSpec
	cols []string
}

func (ti *tableInfo) colIndex(name string) int {
	for i, c := range ti.cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// Catalog is the cluster-wide table registry: partitioning rules plus the
// tables actually observed via broadcast DDL. Shared by all sessions of a
// Cluster, so it is internally locked.
type Catalog struct {
	mu     sync.RWMutex
	shards int
	rules  map[string]TableSpec
	tables map[string]*tableInfo
}

// NewCatalog builds a catalog for a cluster of n shards with the given
// partitioning rules. Tables without a rule are replicated — the safe
// default: every shard holds a full copy, any statement over them runs on
// one designated shard.
func NewCatalog(n int, rules []TableSpec) *Catalog {
	c := &Catalog{shards: n, rules: map[string]TableSpec{}, tables: map[string]*tableInfo{}}
	for _, r := range rules {
		r.Name = strings.ToLower(r.Name)
		if len(r.Bounds) > 0 {
			// sort with the same comparison routing uses (numeric when a
			// bound parses as a number), on a copy of the caller's slice:
			// lexicographic order would put "9" after "10" and silently
			// break the Bounds[i-1] <= key < Bounds[i] contract. Bounds
			// past shards-1 can never be selected (shardFor clamps to the
			// last shard), so drop them.
			b := append([]string(nil), r.Bounds...)
			sort.Slice(b, func(i, j int) bool {
				return parseBound(b[i]).compare(parseBound(b[j])) < 0
			})
			if n > 0 && len(b) > n-1 {
				b = b[:n-1]
			}
			r.Bounds = b
		}
		c.rules[r.Name] = r
		// sharded rules are visible immediately (with unknown columns), so a
		// cluster over pre-loaded members routes correctly before any DDL
		// flows through the coordinator; CREATE TABLE re-registers with the
		// observed column order
		if r.Kind.Sharded() {
			c.tables[r.Name] = &tableInfo{spec: r}
		}
	}
	return c
}

// Shards returns the cluster width.
func (c *Catalog) Shards() int { return c.shards }

// register records a table at CREATE TABLE time. The partitioning comes
// from the rule for its name; a rule whose partition column is absent from
// the created columns degrades to replicated (partitioning needs the key).
func (c *Catalog) register(name string, cols []string, spec *TableSpec) {
	lname := strings.ToLower(name)
	ti := &tableInfo{cols: cols}
	switch {
	case spec != nil:
		ti.spec = *spec
	default:
		rule, ok := c.rules[lname]
		if ok && rule.Kind.Sharded() {
			ti.spec = rule
		}
	}
	ti.spec.Name = lname
	if len(cols) > 0 && (ti.spec.Kind == Hash || ti.spec.Kind == Range) {
		if ti.colIndex(ti.spec.Column) < 0 {
			ti.spec = TableSpec{Name: lname, Kind: Replicated}
		}
	}
	c.mu.Lock()
	c.tables[lname] = ti
	c.mu.Unlock()
}

func (c *Catalog) drop(name string) {
	c.mu.Lock()
	delete(c.tables, strings.ToLower(name))
	c.mu.Unlock()
}

func (c *Catalog) lookup(name string) *tableInfo {
	c.mu.RLock()
	ti := c.tables[strings.ToLower(name)]
	c.mu.RUnlock()
	return ti
}

// catalogView is one session's view of the catalog: the shared registry
// plus a session-private overlay for temporary tables and views, which are
// visible only to the member sessions this backend owns.
type catalogView struct {
	shared  *Catalog
	overlay map[string]*tableInfo
}

func newCatalogView(shared *Catalog) *catalogView {
	return &catalogView{shared: shared, overlay: map[string]*tableInfo{}}
}

func (v *catalogView) shards() int { return v.shared.shards }

func (v *catalogView) lookup(name string) *tableInfo {
	if ti, ok := v.overlay[strings.ToLower(name)]; ok {
		return ti
	}
	return v.shared.lookup(name)
}

func (v *catalogView) register(name string, cols []string, spec *TableSpec, temp bool) {
	if temp {
		lname := strings.ToLower(name)
		ti := &tableInfo{cols: cols}
		if spec != nil {
			ti.spec = *spec
		}
		ti.spec.Name = lname
		if len(cols) > 0 && (ti.spec.Kind == Hash || ti.spec.Kind == Range) {
			if ti.colIndex(ti.spec.Column) < 0 {
				ti.spec = TableSpec{Name: lname, Kind: Replicated}
			}
		}
		v.overlay[lname] = ti
		return
	}
	v.shared.register(name, cols, spec)
}

func (v *catalogView) drop(name string) {
	lname := strings.ToLower(name)
	if _, ok := v.overlay[lname]; ok {
		delete(v.overlay, lname)
		return
	}
	v.shared.drop(name)
}

// partVal is a partition-key value in canonical form, comparable and
// hashable consistently whether it came from an INSERT literal, a WHERE
// literal, or a range bound.
type partVal struct {
	null  bool
	isNum bool
	num   float64
	str   string
}

// parseBound turns a range-bound text into a partVal (numeric if it parses
// as a number, else lexicographic text).
func parseBound(s string) partVal {
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return partVal{isNum: true, num: f}
	}
	return partVal{str: s}
}

// compare orders two partVals: null first, then numerics before text when
// mixed, NaN last among numerics (the PostgreSQL sort convention).
func (a partVal) compare(b partVal) int {
	switch {
	case a.null && b.null:
		return 0
	case a.null:
		return -1
	case b.null:
		return 1
	}
	if a.isNum != b.isNum {
		if a.isNum {
			return -1
		}
		return 1
	}
	if a.isNum {
		an, bn := math.IsNaN(a.num), math.IsNaN(b.num)
		switch {
		case an && bn:
			return 0
		case an:
			return 1
		case bn:
			return -1
		case a.num < b.num:
			return -1
		case a.num > b.num:
			return 1
		}
		return 0
	}
	return strings.Compare(a.str, b.str)
}

// canonical returns the hash text of a partVal. Integral floats print as
// integers so an INSERT of 2 and a predicate literal 2.0 land on the same
// shard.
func (a partVal) canonical() string {
	if a.isNum {
		if a.num == math.Trunc(a.num) && !math.IsInf(a.num, 0) && math.Abs(a.num) < 1e15 {
			return strconv.FormatInt(int64(a.num), 10)
		}
		return strconv.FormatFloat(a.num, 'g', -1, 64)
	}
	return a.str
}

// shardFor routes a partition-key value under a spec. NULL keys always
// live on shard 0 (both routing and pruning agree on this), hash keys go
// by FNV-1a of the canonical text, range keys by binary search over the
// bounds.
func shardFor(spec *TableSpec, n int, v partVal) int {
	if v.null {
		return 0
	}
	switch spec.Kind {
	case Hash:
		h := fnv.New64a()
		h.Write([]byte(v.canonical()))
		return int(h.Sum64() % uint64(n))
	case Range:
		i := sort.Search(len(spec.Bounds), func(i int) bool {
			return v.compare(parseBound(spec.Bounds[i])) < 0
		})
		if i >= n {
			i = n - 1
		}
		return i
	}
	return 0
}

// evalLiteral evaluates a literal expression to a partition-key value:
// numbers, strings, typed string casts ('2024-01-02'::date,
// 'Infinity'::double precision), booleans and NULL. Anything else — a
// column reference, arithmetic — is not a literal and reports false.
func evalLiteral(e sqlparse.Expr) (partVal, bool) {
	switch x := e.(type) {
	case *sqlparse.NumberLit:
		f, err := strconv.ParseFloat(x.Text, 64)
		if err != nil {
			return partVal{}, false
		}
		return partVal{isNum: true, num: f}, true
	case *sqlparse.StringLit:
		return partVal{str: x.V}, true
	case *sqlparse.BoolLit:
		if x.V {
			return partVal{str: "t"}, true
		}
		return partVal{str: "f"}, true
	case *sqlparse.NullLit:
		return partVal{null: true}, true
	case *sqlparse.UnaryExpr:
		if x.Op != "-" {
			return partVal{}, false
		}
		v, ok := evalLiteral(x.X)
		if !ok || !v.isNum {
			return partVal{}, false
		}
		v.num = -v.num
		return v, true
	case *sqlparse.CastExpr:
		v, ok := evalLiteral(x.X)
		if !ok {
			return partVal{}, false
		}
		// the quoted-and-cast numeric spellings: 'Infinity'::double
		// precision and friends become numerics so they compare right
		if !v.null && !v.isNum && isNumericType(x.Type) {
			if f, err := strconv.ParseFloat(v.str, 64); err == nil {
				return partVal{isNum: true, num: f}, true
			}
			switch strings.ToLower(v.str) {
			case "infinity", "+infinity":
				return partVal{isNum: true, num: math.Inf(1)}, true
			case "-infinity":
				return partVal{isNum: true, num: math.Inf(-1)}, true
			case "nan":
				return partVal{isNum: true, num: math.NaN()}, true
			}
		}
		return v, true
	case *sqlparse.ValueLit:
		switch y := x.V.(type) {
		case nil:
			return partVal{null: true}, true
		case int64:
			return partVal{isNum: true, num: float64(y)}, true
		case float64:
			return partVal{isNum: true, num: y}, true
		case string:
			return partVal{str: y}, true
		case bool:
			if y {
				return partVal{str: "t"}, true
			}
			return partVal{str: "f"}, true
		}
	}
	return partVal{}, false
}

func isNumericType(t string) bool {
	switch strings.ToLower(t) {
	case "smallint", "integer", "bigint", "real", "double precision", "numeric", "float", "float8", "float4":
		return true
	}
	return false
}

// shardSet is a set of shard indexes with a distinguished "all shards"
// top element (nil = all; the planner never prunes what it cannot prove).
type shardSet struct {
	all bool
	m   map[int]bool
}

func allShards() shardSet         { return shardSet{all: true} }
func noShards() shardSet          { return shardSet{m: map[int]bool{}} }
func oneShard(i int) shardSet     { return shardSet{m: map[int]bool{i: true}} }
func (s shardSet) has(i int) bool { return s.all || s.m[i] }
func (s shardSet) isAll() bool    { return s.all }
func (s shardSet) isEmpty() bool  { return !s.all && len(s.m) == 0 }
func (s shardSet) add(i int)      { s.m[i] = true }

func (s shardSet) union(o shardSet) shardSet {
	if s.all || o.all {
		return allShards()
	}
	out := noShards()
	for i := range s.m {
		out.add(i)
	}
	for i := range o.m {
		out.add(i)
	}
	return out
}

func (s shardSet) intersect(o shardSet) shardSet {
	if s.all {
		return o
	}
	if o.all {
		return s
	}
	out := noShards()
	for i := range s.m {
		if o.m[i] {
			out.add(i)
		}
	}
	return out
}

// list returns the members in ascending order (n is the cluster width,
// used when the set is "all").
func (s shardSet) list(n int) []int {
	if s.all {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, len(s.m))
	for i := range s.m {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func (s shardSet) String() string {
	if s.all {
		return "all"
	}
	return fmt.Sprint(s.list(0))
}

// rangeShards returns the shards that can hold keys satisfying `key op
// lit` for a Range spec: a contiguous run of shards around the bound's
// position.
func rangeShards(spec *TableSpec, n int, op string, v partVal) shardSet {
	if v.null {
		// comparisons with NULL match no rows; keep the designated shard
		// so the statement still has somewhere to produce its schema
		return noShards()
	}
	at := shardFor(spec, n, v)
	out := noShards()
	switch op {
	case "=", "IS NOT DISTINCT FROM":
		out.add(at)
	case "<", "<=":
		hi := at
		// `key < bound` at an exact split point excludes the shard whose
		// range starts there
		if op == "<" && at > 0 && v.compare(parseBound(spec.Bounds[at-1])) == 0 {
			hi = at - 1
		}
		for i := 0; i <= hi; i++ {
			out.add(i)
		}
	case ">", ">=":
		for i := at; i < n; i++ {
			out.add(i)
		}
	default:
		return allShards()
	}
	return out
}
