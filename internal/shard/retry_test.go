package shard

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"

	"hyperq/internal/core"
	"hyperq/internal/pgdb"
)

// flakyBackend wraps a member and fails the next `failures` read statements
// with a transient connection error, counting attempts.
type flakyBackend struct {
	inner    *core.DirectBackend
	failures atomic.Int64
	attempts atomic.Int64
	// permanent switches the injected error to a non-transient one.
	permanent bool
}

func (f *flakyBackend) injected() error {
	if f.permanent {
		return fmt.Errorf("syntax error near SELECT")
	}
	return &net.OpError{Op: "dial", Net: "tcp", Err: fmt.Errorf("connection refused")}
}

func (f *flakyBackend) fail(sql string) error {
	if !strings.HasPrefix(strings.ToUpper(strings.TrimSpace(sql)), "SELECT") {
		return nil // only disturb reads; setup DDL/DML must pass
	}
	f.attempts.Add(1)
	if f.failures.Load() > 0 {
		f.failures.Add(-1)
		return f.injected()
	}
	return nil
}

func (f *flakyBackend) Exec(ctx context.Context, sql string) (*core.BackendResult, error) {
	if err := f.fail(sql); err != nil {
		return nil, err
	}
	return f.inner.Exec(ctx, sql)
}

func (f *flakyBackend) ExecStream(ctx context.Context, sql string, sink core.RowSink) error {
	if err := f.fail(sql); err != nil {
		return err
	}
	return f.inner.ExecStream(ctx, sql, sink)
}

func (f *flakyBackend) QueryCatalog(ctx context.Context, sql string) ([][]string, error) {
	return f.inner.QueryCatalog(ctx, sql)
}

func (f *flakyBackend) Close() error { return f.inner.Close() }

func newFlakyCluster(t *testing.T, n int) (*Backend, []*flakyBackend) {
	t.Helper()
	flaky := make([]*flakyBackend, n)
	factories := make([]func() (core.Backend, error), n)
	for i := range factories {
		fb := &flakyBackend{inner: core.NewDirectBackend(pgdb.NewDB())}
		flaky[i] = fb
		factories[i] = func() (core.Backend, error) { return fb, nil }
	}
	cl, err := New(NewCatalog(n, testRules), factories)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := cl.NewBackend()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sh.Close() })
	for _, sql := range setupSQL {
		if _, err := sh.Exec(bg, sql); err != nil {
			t.Fatalf("setup %q: %v", sql, err)
		}
	}
	return sh, flaky
}

func TestRetrySingleShardTransient(t *testing.T) {
	sh, flaky := newFlakyCluster(t, 3)
	for _, fb := range flaky {
		fb.failures.Store(1)
	}
	// Single-shard point read: the owning member fails once, the retry
	// succeeds, the user never sees the failure.
	res, err := sh.Exec(bg, "SELECT i FROM t WHERE s = 'aa' ORDER BY ordcol")
	if err != nil {
		t.Fatalf("retry should have absorbed the transient failure: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestRetryScatterTransient(t *testing.T) {
	sh, flaky := newFlakyCluster(t, 3)
	for _, fb := range flaky {
		fb.failures.Store(1)
	}
	res, err := sh.Exec(bg, "SELECT ordcol, s, i FROM t ORDER BY ordcol")
	if err != nil {
		t.Fatalf("scatter retry: %v", err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestRetryGivesUpAfterOne(t *testing.T) {
	sh, flaky := newFlakyCluster(t, 3)
	for _, fb := range flaky {
		fb.failures.Store(100) // always failing: one retry, then surface
	}
	before := flaky[0].attempts.Load() + flaky[1].attempts.Load() + flaky[2].attempts.Load()
	_, err := sh.Exec(bg, "SELECT ordcol, s, i FROM t ORDER BY ordcol")
	if err == nil {
		t.Fatalf("expected error from persistently failing shards")
	}
	if !strings.Contains(err.Error(), "shard ") {
		t.Fatalf("error must attribute the shard: %v", err)
	}
	after := flaky[0].attempts.Load() + flaky[1].attempts.Load() + flaky[2].attempts.Load()
	// one scatter = 3 shard attempts; exactly one retry doubles it. Sibling
	// cancellation may spare some members, so bound instead of equate.
	if after-before > 6 {
		t.Fatalf("more than one retry: %d attempts", after-before)
	}
}

func TestNoRetryOnPermanentError(t *testing.T) {
	sh, flaky := newFlakyCluster(t, 3)
	for _, fb := range flaky {
		fb.permanent = true
		fb.failures.Store(100)
	}
	start := flaky[0].attempts.Load()
	_, err := sh.Exec(bg, "SELECT i FROM t WHERE s = 'aa'")
	if err == nil {
		t.Fatalf("expected permanent error to surface")
	}
	total := flaky[0].attempts.Load() + flaky[1].attempts.Load() + flaky[2].attempts.Load() - start
	if total > 1 {
		t.Fatalf("permanent error must not be retried: %d attempts", total)
	}
}

func TestNoRetryForDML(t *testing.T) {
	sh, flaky := newFlakyCluster(t, 3)
	// DML is not idempotent: a transient failure must surface immediately.
	for _, fb := range flaky {
		fb.failures.Store(0)
	}
	if _, err := sh.Exec(bg, "INSERT INTO t VALUES (8, 'aa', 9, 9.5)"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	// Sanity: the fail hook ignores non-SELECT statements entirely, so the
	// only retry surface is the read path — assert UPDATE flows through the
	// non-retrying fanExec by checking it still works with failures armed.
	for _, fb := range flaky {
		fb.failures.Store(5)
	}
	if _, err := sh.Exec(bg, "UPDATE t SET i = i + 1 WHERE s = 'zz'"); err != nil {
		t.Fatalf("update: %v", err)
	}
}

func TestRetryStreamOnlyWhenNothingDelivered(t *testing.T) {
	sh, flaky := newFlakyCluster(t, 3)
	for _, fb := range flaky {
		fb.failures.Store(1)
	}
	sink := &resultSink{}
	if err := sh.ExecStream(bg, "SELECT ordcol, s, i FROM t ORDER BY ordcol", sink); err != nil {
		t.Fatalf("stream retry: %v", err)
	}
	if len(sink.res.Rows) != 8 {
		t.Fatalf("rows = %d", len(sink.res.Rows))
	}
}

func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{fmt.Errorf("syntax error"), false},
		{&net.OpError{Op: "dial", Err: fmt.Errorf("refused")}, true},
		{fmt.Errorf("shard 2: %w", &net.OpError{Op: "read", Err: fmt.Errorf("reset")}), true},
		{fmt.Errorf("pq: connection refused"), true},
	}
	for _, c := range cases {
		if got := isTransient(c.err); got != c.want {
			t.Fatalf("isTransient(%v) = %v", c.err, got)
		}
	}
}
