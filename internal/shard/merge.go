package shard

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"

	"hyperq/internal/core"
)

// batchRows is the per-shard row batch size flowing through the merge
// channels: large enough to amortize channel hops, small enough to keep
// the merge streaming.
const batchRows = 256

// chanCap bounds in-flight batches per shard, providing backpressure: a
// fast shard cannot run unboundedly ahead of the merge.
const chanCap = 4

// srow is one in-flight row, in whichever form its backend produced:
// engine-typed values (embedded members) or wire-text cells (networked
// members). The merge compares keys across both forms.
type srow struct {
	typed []any
	text  [][]byte
}

// shardMsg is one message from a shard's streaming goroutine to the
// coordinator.
type shardMsg struct {
	schema    []core.BackendCol
	hint      int
	hasSchema bool
	rows      []srow
	tag       string
	done      bool
	err       error
}

// chanSink adapts core.RowSink onto a channel of batches, deep-copying
// rows (sink slices are only valid during the call).
type chanSink struct {
	ctx   context.Context
	ch    chan<- shardMsg
	batch []srow
	tag   string
}

func (s *chanSink) send(m shardMsg) error {
	select {
	case s.ch <- m:
		return nil
	case <-s.ctx.Done():
		return s.ctx.Err()
	}
}

func (s *chanSink) Schema(cols []core.BackendCol, hint int) error {
	c := append([]core.BackendCol{}, cols...)
	return s.send(shardMsg{schema: c, hint: hint, hasSchema: true})
}

func (s *chanSink) flush() error {
	if len(s.batch) == 0 {
		return nil
	}
	b := s.batch
	s.batch = nil
	return s.send(shardMsg{rows: b})
}

func (s *chanSink) Row(vals []any) error {
	s.batch = append(s.batch, srow{typed: append([]any{}, vals...)})
	if len(s.batch) >= batchRows {
		return s.flush()
	}
	return nil
}

func (s *chanSink) TextRow(fields [][]byte) error {
	cp := make([][]byte, len(fields))
	for j, f := range fields {
		if f != nil {
			cp[j] = append([]byte{}, f...)
		}
	}
	s.batch = append(s.batch, srow{text: cp})
	if len(s.batch) >= batchRows {
		return s.flush()
	}
	return nil
}

func (s *chanSink) Tag(tag string) { s.tag = tag }

// mergeSchemas reconciles per-shard result schemas into the schema the
// client sees, mirroring the engine's value-dependent type refinement: a
// shard with no rows reports weaker types for computed columns, so its
// schema yields to shards that produced rows; numeric disagreement
// between row-producing shards widens to double precision (which is what
// a single backend would have inferred seeing all rows together).
func mergeSchemas(schemas [][]core.BackendCol, hints []int) ([]core.BackendCol, int, error) {
	var base []core.BackendCol
	for _, s := range schemas {
		if base == nil {
			base = append(base, s...)
			continue
		}
		if len(s) != len(base) {
			return nil, 0, fmt.Errorf("shard: result schema width mismatch: %d vs %d", len(s), len(base))
		}
	}
	for j := range base {
		strong := map[string]bool{}
		var weak []string
		for i, s := range schemas {
			if hints[i] == 0 {
				weak = append(weak, s[j].SQLType)
			} else {
				strong[s[j].SQLType] = true
			}
		}
		switch {
		case len(strong) == 1:
			for t := range strong {
				base[j].SQLType = t
			}
		case len(strong) == 0:
			if len(weak) > 0 {
				base[j].SQLType = weak[0]
			}
		default:
			widened := ""
			for t := range strong {
				switch numericClass(t) {
				case 1:
					if widened == "" {
						widened = "bigint"
					}
				case 2:
					widened = "double precision"
				default:
					return nil, 0, fmt.Errorf("shard: conflicting result types for %s: %v", base[j].Name, strong)
				}
			}
			base[j].SQLType = widened
		}
	}
	hint := 0
	for _, h := range hints {
		if h < 0 {
			return base, -1, nil
		}
		hint += h
	}
	return base, hint, nil
}

// keyClass buckets a merge key's comparison behavior by SQL type.
type keyClass int

const (
	keyText  keyClass = iota // lexicographic (varchar, and ISO dates/times)
	keyInt                   // integer
	keyFloat                 // floating point
)

func classFor(sqlType string) keyClass {
	switch numericClass(sqlType) {
	case 1:
		return keyInt
	case 2:
		return keyFloat
	}
	return keyText
}

// cmpKey compares one key cell of two rows. NaN sorts after every number
// (the backend's sort convention); nulls are handled by the caller.
func cmpKey(a, b srow, col int, cls keyClass) int {
	switch cls {
	case keyInt:
		av, af, aIsInt := numCell(a, col)
		bv, bf, bIsInt := numCell(b, col)
		if aIsInt && bIsInt {
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			}
			return 0
		}
		return cmpFloat(af, bf)
	case keyFloat:
		_, af, _ := numCell(a, col)
		_, bf, _ := numCell(b, col)
		return cmpFloat(af, bf)
	}
	return strings.Compare(textCellStr(a, col), textCellStr(b, col))
}

func cmpFloat(a, b float64) int {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return 1
	case bn:
		return -1
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func isNullCell(r srow, col int) bool {
	if r.typed != nil {
		return r.typed[col] == nil
	}
	return r.text[col] == nil
}

func numCell(r srow, col int) (int64, float64, bool) {
	if r.typed != nil {
		switch v := r.typed[col].(type) {
		case int64:
			return v, float64(v), true
		case float64:
			return 0, v, false
		case string:
			if i, err := strconv.ParseInt(v, 10, 64); err == nil {
				return i, float64(i), true
			}
			f, _ := strconv.ParseFloat(v, 64)
			return 0, f, false
		}
		return 0, 0, false
	}
	s := string(r.text[col])
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, float64(i), true
	}
	f, _ := strconv.ParseFloat(s, 64)
	return 0, f, false
}

func textCellStr(r srow, col int) string {
	if r.typed != nil {
		switch v := r.typed[col].(type) {
		case string:
			return v
		case bool:
			if v {
				return "t"
			}
			return "f"
		default:
			return fmt.Sprint(v)
		}
	}
	return string(r.text[col])
}

// resolvedKey is a merge key bound to a column index and comparison class.
type resolvedKey struct {
	col        int
	cls        keyClass
	desc       bool
	nullsFirst bool
}

func resolveKeys(keys []mergeKey, cols []core.BackendCol) ([]resolvedKey, error) {
	out := make([]resolvedKey, 0, len(keys))
	for _, k := range keys {
		col := -1
		for j, c := range cols {
			if strings.EqualFold(c.Name, k.name) {
				col = j
				break
			}
		}
		if col < 0 {
			return nil, fmt.Errorf("shard: merge key %s not in result", k.name)
		}
		out = append(out, resolvedKey{col: col, cls: classFor(cols[col].SQLType), desc: k.desc, nullsFirst: k.nullsFirst})
	}
	return out, nil
}

// compareRows orders two rows under the resolved keys; ties break by
// shard index for determinism.
func compareRows(a, b srow, keys []resolvedKey) int {
	for _, k := range keys {
		an, bn := isNullCell(a, k.col), isNullCell(b, k.col)
		var c int
		switch {
		case an && bn:
			c = 0
		case an:
			if k.nullsFirst {
				c = -1
			} else {
				c = 1
			}
		case bn:
			if k.nullsFirst {
				c = 1
			} else {
				c = -1
			}
		default:
			c = cmpKey(a, b, k.col, k.cls)
			if k.desc {
				c = -c
			}
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// streamCursor iterates one shard's message stream row by row.
type streamCursor struct {
	ctx   context.Context
	ch    <-chan shardMsg
	shard int
	batch []srow
	pos   int
	tag   string
	done  bool
}

// next advances to the next row; ok=false means the stream finished.
func (c *streamCursor) next() (srow, bool, error) {
	for {
		if c.pos < len(c.batch) {
			r := c.batch[c.pos]
			c.pos++
			return r, true, nil
		}
		if c.done {
			return srow{}, false, nil
		}
		select {
		case m := <-c.ch:
			if m.err != nil {
				return srow{}, false, m.err
			}
			if m.done {
				c.done = true
				c.tag = m.tag
				continue
			}
			c.batch, c.pos = m.rows, 0
		case <-c.ctx.Done():
			return srow{}, false, c.ctx.Err()
		}
	}
}

// cursorHeap is the k-way merge heap over shard cursors; each entry holds
// the cursor's current head row.
type cursorHeap struct {
	keys []resolvedKey
	cur  []*heapEntry
}

type heapEntry struct {
	row srow
	c   *streamCursor
}

func (h *cursorHeap) Len() int { return len(h.cur) }
func (h *cursorHeap) Less(i, j int) bool {
	c := compareRows(h.cur[i].row, h.cur[j].row, h.keys)
	if c != 0 {
		return c < 0
	}
	return h.cur[i].c.shard < h.cur[j].c.shard
}
func (h *cursorHeap) Swap(i, j int) { h.cur[i], h.cur[j] = h.cur[j], h.cur[i] }
func (h *cursorHeap) Push(x any)    { h.cur = append(h.cur, x.(*heapEntry)) }
func (h *cursorHeap) Pop() any {
	x := h.cur[len(h.cur)-1]
	h.cur = h.cur[:len(h.cur)-1]
	return x
}

// forwardRow delivers a row to the destination sink in its native form.
func forwardRow(sink core.RowSink, r srow) error {
	if r.typed != nil {
		return sink.Row(r.typed)
	}
	return sink.TextRow(r.text)
}

// mergeTag rebuilds the command tag for the merged result: the per-shard
// tags' trailing counts are replaced with the number of rows actually
// emitted ("SELECT 12" from three shards' SELECT 4s).
func mergeTag(tags []string, emitted int64) string {
	for _, t := range tags {
		if t == "" {
			continue
		}
		if _, ok := core.ParseRowsAffected(t); ok {
			fields := strings.Fields(t)
			fields[len(fields)-1] = strconv.FormatInt(emitted, 10)
			return strings.Join(fields, " ")
		}
		return t
	}
	return ""
}

// mergeStreams is the coordinator side of a scatter: it waits for every
// shard's schema (the type barrier), emits the reconciled schema, then
// merges rows — a k-way ordered merge under the plan's keys, or plain
// shard-order concatenation when the statement has no ORDER BY.
func mergeStreams(ctx context.Context, cursors []*streamCursor, p *plan, sink core.RowSink) error {
	schemas := make([][]core.BackendCol, len(cursors))
	hints := make([]int, len(cursors))
	heads := make([]*heapEntry, 0, len(cursors))
	for i, c := range cursors {
		// the first message of a healthy stream is its schema; rows can
		// only follow it
		select {
		case m := <-c.ch:
			if m.err != nil {
				return m.err
			}
			if !m.hasSchema {
				return fmt.Errorf("shard %d: stream produced rows before schema", i)
			}
			schemas[i], hints[i] = m.schema, m.hint
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	cols, hint, err := mergeSchemas(schemas, hints)
	if err != nil {
		return err
	}
	if err := sink.Schema(cols, hint); err != nil {
		return err
	}

	var emitted int64
	capped := func() bool { return p.capRows >= 0 && emitted >= p.capRows }

	if len(p.orderBy) == 0 {
		for _, c := range cursors {
			for {
				r, ok, err := c.next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				if err := forwardRow(sink, r); err != nil {
					return err
				}
				emitted++
			}
		}
	} else {
		keys, err := resolveKeys(p.orderBy, cols)
		if err != nil {
			return err
		}
		h := &cursorHeap{keys: keys}
		for _, c := range cursors {
			r, ok, err := c.next()
			if err != nil {
				return err
			}
			if ok {
				heads = append(heads, &heapEntry{row: r, c: c})
			}
		}
		h.cur = heads
		heap.Init(h)
		for h.Len() > 0 && !capped() {
			e := h.cur[0]
			if err := forwardRow(sink, e.row); err != nil {
				return err
			}
			emitted++
			r, ok, err := e.c.next()
			if err != nil {
				return err
			}
			if ok {
				e.row = r
				heap.Fix(h, 0)
			} else {
				heap.Pop(h)
			}
		}
		// a LIMIT satisfied early: per-shard LIMITs bound the leftovers,
		// so drain rather than cancel (cancelling would race real errors)
		for _, c := range cursors {
			for {
				_, ok, err := c.next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
			}
		}
	}

	tags := make([]string, len(cursors))
	for i, c := range cursors {
		tags[i] = c.tag
	}
	sink.Tag(mergeTag(tags, emitted))
	return nil
}
