// Package gateway is Hyper-Q's PG-specific plugin (paper §3.1, Figure 1):
// it packs translated SQL into PG v3 messages, transmits them to the
// backend database over TCP, and extracts row sets from the result
// messages. It implements core.Backend, so a platform session is oblivious
// to whether it runs in-process or against a networked backend — exactly
// the plugin boundary the paper describes.
package gateway

import (
	"context"
	"time"

	"hyperq/internal/core"
	"hyperq/internal/wire/pgv3"
)

// pingTimeout bounds the health-probe round trip so a dead backend cannot
// wedge a pool checkout.
const pingTimeout = 5 * time.Second

// Gateway is a PG v3 backend connection.
type Gateway struct {
	conn *pgv3.ClientConn
}

// Dial connects and authenticates to a PG v3 server. The context bounds the
// dial and handshake only; per-query deadlines flow through Exec's context.
func Dial(ctx context.Context, addr, user, password, database string) (*Gateway, error) {
	conn, err := pgv3.Connect(ctx, addr, user, password, database)
	if err != nil {
		return nil, err
	}
	return &Gateway{conn: conn}, nil
}

// Exec implements core.Backend. The context's deadline maps onto the socket
// I/O deadline and cancellation aborts the query; an abort surfaces as a
// typed error satisfying errors.Is(err, ctx.Err()).
func (g *Gateway) Exec(ctx context.Context, sql string) (*core.BackendResult, error) {
	res, err := g.conn.Query(ctx, sql)
	if err != nil {
		return nil, err
	}
	out := &core.BackendResult{Tag: res.Tag}
	for _, c := range res.Cols {
		out.Cols = append(out.Cols, core.BackendCol{Name: c.Name, SQLType: pgv3.TypeForOID(c.TypeOID)})
	}
	for _, row := range res.Rows {
		r := make([]core.Field, len(row))
		for j, f := range row {
			r[j] = core.Field{Null: f.Null, Text: f.Text}
		}
		out.Rows = append(out.Rows, r)
	}
	return out, nil
}

// ExecStream implements core.StreamBackend: DataRow messages decode
// incrementally into the sink as they arrive off the wire, with no
// [][]Field materialization in between. Cancellation and abort semantics
// match Exec's.
func (g *Gateway) ExecStream(ctx context.Context, sql string, sink core.RowSink) error {
	return g.conn.QueryStream(ctx, sql, &streamAdapter{sink: sink})
}

// streamAdapter bridges pgv3.RowReceiver onto core.RowSink, mapping wire
// OIDs to SQL type names once per result.
type streamAdapter struct {
	sink core.RowSink
	cols []core.BackendCol
}

func (a *streamAdapter) Describe(cols []pgv3.ColDesc) error {
	a.cols = a.cols[:0]
	for _, c := range cols {
		a.cols = append(a.cols, core.BackendCol{Name: c.Name, SQLType: pgv3.TypeForOID(c.TypeOID)})
	}
	// no row-count hint: the wire protocol does not announce result size
	return a.sink.Schema(a.cols, -1)
}

func (a *streamAdapter) DataRow(fields [][]byte) error { return a.sink.TextRow(fields) }

func (a *streamAdapter) Complete(tag string) { a.sink.Tag(tag) }

// QueryCatalog implements core.Backend: the binder's metadata lookups run
// as ordinary catalog queries over the same connection (paper §3.2.3).
func (g *Gateway) QueryCatalog(ctx context.Context, sql string) ([][]string, error) {
	res, err := g.conn.Query(ctx, sql)
	if err != nil {
		return nil, err
	}
	out := make([][]string, len(res.Rows))
	for i, row := range res.Rows {
		r := make([]string, len(row))
		for j, f := range row {
			r[j] = f.Text
		}
		out[i] = r
	}
	return out, nil
}

// Ping performs a trivial round trip, verifying the connection is alive —
// the pool's checkout health probe. It carries its own short deadline.
func (g *Gateway) Ping() error {
	ctx, cancel := context.WithTimeout(context.Background(), pingTimeout)
	defer cancel()
	_, err := g.conn.Query(ctx, "SELECT 1")
	return err
}

// Close implements core.Backend.
func (g *Gateway) Close() error { return g.conn.Close() }
