package gateway

import (
	"context"
	"net"
	"strings"
	"testing"

	"hyperq/internal/core"
	"hyperq/internal/pgdb"
	"hyperq/internal/wire/pgv3"
)

var ctx = context.Background()

func startBackend(t *testing.T) (string, *pgdb.DB) {
	t.Helper()
	db := pgdb.NewDB()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go pgdb.Serve(ctx, l, db, pgdb.AuthConfig{
		Method: pgv3.AuthMethodCleartext,
		Users:  map[string]string{"hq": "pw"},
	})
	return l.Addr().String(), db
}

func TestGatewayExecOverWire(t *testing.T) {
	addr, _ := startBackend(t)
	gw, err := Dial(ctx, addr, "hq", "pw", "db")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	if _, err := gw.Exec(ctx, "CREATE TABLE t (a bigint, b varchar)"); err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Exec(ctx, "INSERT INTO t VALUES (1, 'x'), (2, NULL)"); err != nil {
		t.Fatal(err)
	}
	res, err := gw.Exec(ctx, "SELECT a, b FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 2 || res.Cols[0].SQLType != "bigint" {
		t.Fatalf("cols = %+v", res.Cols)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Text != "1" {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if !res.Rows[1][1].Null {
		t.Fatal("NULL not preserved across the wire")
	}
}

func TestGatewayQueryCatalog(t *testing.T) {
	addr, _ := startBackend(t)
	gw, err := Dial(ctx, addr, "hq", "pw", "db")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	if _, err := gw.Exec(ctx, "CREATE TABLE trades (ordcol bigint, price double precision)"); err != nil {
		t.Fatal(err)
	}
	rows, err := gw.QueryCatalog(ctx, "SELECT column_name, data_type FROM information_schema.columns WHERE table_name = 'trades' ORDER BY ordinal_position")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0] != "ordcol" || rows[1][1] != "double precision" {
		t.Fatalf("catalog rows = %v", rows)
	}
}

func TestGatewayAsCoreBackend(t *testing.T) {
	// the full platform runs over the networked gateway exactly as over the
	// direct backend (the plugin boundary of §3.1)
	addr, db := startBackend(t)
	loader := core.NewDirectBackend(db)
	if _, err := loader.Exec(ctx, "CREATE TABLE trades (ordcol bigint, \"Symbol\" varchar, \"Price\" double precision)"); err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Exec(ctx, "INSERT INTO trades VALUES (0, 'A', 1.5), (1, 'B', 2.5)"); err != nil {
		t.Fatal(err)
	}
	gw, err := Dial(ctx, addr, "hq", "pw", "db")
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewPlatform().NewSession(gw, core.Config{})
	defer s.Close()
	v, _, err := s.Run(ctx, "select Price from trades where Symbol=`B")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v.String(), "2.5") {
		t.Fatalf("result = %v", v)
	}
}

func TestGatewayErrorsKeepSQLSTATE(t *testing.T) {
	addr, _ := startBackend(t)
	gw, err := Dial(ctx, addr, "hq", "pw", "db")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	_, err = gw.Exec(ctx, "SELECT * FROM missing")
	se, ok := err.(*pgv3.ServerError)
	if !ok || se.Code != "42P01" {
		t.Fatalf("err = %v", err)
	}
}
