package interp

import (
	"hyperq/internal/qlang/ast"
	"hyperq/internal/qlang/qval"
)

// applyAdverb applies an adverb-modified verb to its arguments:
//
//	over (/)     fold:           (+/) 1 2 3          -> 6
//	scan (\)     running fold:   (+\) 1 2 3          -> 1 3 6
//	each         map:            count each (1 2;3)  -> 2 1
//	' each-both  zip:            1 2 +' 10 20        -> 11 22
//	': prior     pairwise:       -': 1 3 6           -> 1 2 3
//	/: each-rt   right map:      1 +/: 10 20         -> 11 21
//	\: each-lt   left map:       1 2 +\: 10          -> 11 12
func (in *Interp) applyAdverb(a *adverbValue, args []qval.Value, e *env) (qval.Value, error) {
	switch a.adverb {
	case "/", "over":
		return in.foldVerb(a, args, e, false)
	case "\\", "scan":
		return in.foldVerb(a, args, e, true)
	case "each":
		if len(args) == 1 {
			return in.mapVerb(a, args[0], e)
		}
		if len(args) == 2 {
			return in.zipVerb(a, args[0], args[1], e)
		}
		return nil, qval.Errorf("rank")
	case "'":
		if len(args) == 2 {
			return in.zipVerb(a, args[0], args[1], e)
		}
		if len(args) == 1 {
			return in.mapVerb(a, args[0], e)
		}
		return nil, qval.Errorf("rank")
	case "':", "prior":
		if len(args) != 1 {
			return nil, qval.Errorf("rank")
		}
		return in.priorVerb(a, args[0], e)
	case "/:":
		if len(args) != 2 {
			return nil, qval.Errorf("rank")
		}
		return in.eachRight(a, args[0], args[1], e)
	case "\\:":
		if len(args) != 2 {
			return nil, qval.Errorf("rank")
		}
		return in.eachLeft(a, args[0], args[1], e)
	default:
		return nil, qval.Errorf("nyi adverb " + a.adverb)
	}
}

// callVerb2 applies the underlying verb dyadically.
func (in *Interp) callVerb2(a *adverbValue, x, y qval.Value, e *env) (qval.Value, error) {
	if v, ok := a.verb.(*ast.Var); ok && (isOperatorName(v.Name) || infixOps[v.Name]) {
		return in.applyDyadOp(v.Name, x, y, e)
	}
	fn, err := in.eval(a.verb, a.env)
	if err != nil {
		return nil, err
	}
	return in.applyValue(fn, []qval.Value{x, y}, e)
}

// callVerb1 applies the underlying verb monadically.
func (in *Interp) callVerb1(a *adverbValue, x qval.Value, e *env) (qval.Value, error) {
	if v, ok := a.verb.(*ast.Var); ok {
		if mf, ok := monads[v.Name]; ok {
			return mf(x)
		}
		if isOperatorName(v.Name) {
			return in.applyMonadOp(v.Name, x, e)
		}
	}
	fn, err := in.eval(a.verb, a.env)
	if err != nil {
		return nil, err
	}
	return in.applyValue(fn, []qval.Value{x}, e)
}

func (in *Interp) foldVerb(a *adverbValue, args []qval.Value, e *env, scan bool) (qval.Value, error) {
	var acc qval.Value
	var list qval.Value
	switch len(args) {
	case 1:
		list = args[0]
	case 2:
		acc = args[0]
		list = args[1]
	default:
		return nil, qval.Errorf("rank")
	}
	n := list.Len()
	if n < 0 {
		return list, nil
	}
	var out []qval.Value
	for i := 0; i < n; i++ {
		x := qval.Index(list, i)
		if acc == nil {
			acc = x
		} else {
			var err error
			acc, err = in.callVerb2(a, acc, x, e)
			if err != nil {
				return nil, err
			}
		}
		if scan {
			out = append(out, acc)
		}
	}
	if scan {
		return qval.FromAtoms(out), nil
	}
	if acc == nil {
		return qval.Long(0), nil
	}
	return acc, nil
}

func (in *Interp) mapVerb(a *adverbValue, list qval.Value, e *env) (qval.Value, error) {
	n := list.Len()
	if n < 0 {
		return in.callVerb1(a, list, e)
	}
	out := make([]qval.Value, n)
	for i := 0; i < n; i++ {
		v, err := in.callVerb1(a, qval.Index(list, i), e)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return qval.FromAtoms(out), nil
}

func (in *Interp) zipVerb(a *adverbValue, x, y qval.Value, e *env) (qval.Value, error) {
	lx, ly := x.Len(), y.Len()
	if lx < 0 && ly < 0 {
		return in.callVerb2(a, x, y, e)
	}
	n := lx
	if lx < 0 {
		n = ly
	}
	if lx >= 0 && ly >= 0 && lx != ly {
		return nil, qval.Errorf("length")
	}
	out := make([]qval.Value, n)
	for i := 0; i < n; i++ {
		v, err := in.callVerb2(a, qval.Index(x, i), qval.Index(y, i), e)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return qval.FromAtoms(out), nil
}

func (in *Interp) priorVerb(a *adverbValue, list qval.Value, e *env) (qval.Value, error) {
	n := list.Len()
	if n < 0 {
		return list, nil
	}
	out := make([]qval.Value, n)
	for i := 0; i < n; i++ {
		if i == 0 {
			out[i] = qval.Index(list, 0)
			continue
		}
		v, err := in.callVerb2(a, qval.Index(list, i), qval.Index(list, i-1), e)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return qval.FromAtoms(out), nil
}

func (in *Interp) eachRight(a *adverbValue, x, ys qval.Value, e *env) (qval.Value, error) {
	n := ys.Len()
	if n < 0 {
		return in.callVerb2(a, x, ys, e)
	}
	out := make([]qval.Value, n)
	for i := 0; i < n; i++ {
		v, err := in.callVerb2(a, x, qval.Index(ys, i), e)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return qval.FromAtoms(out), nil
}

func (in *Interp) eachLeft(a *adverbValue, xs, y qval.Value, e *env) (qval.Value, error) {
	n := xs.Len()
	if n < 0 {
		return in.callVerb2(a, xs, y, e)
	}
	out := make([]qval.Value, n)
	for i := 0; i < n; i++ {
		v, err := in.callVerb2(a, qval.Index(xs, i), y, e)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return qval.FromAtoms(out), nil
}
