package interp

import (
	"testing"
	"testing/quick"

	"hyperq/internal/qlang/qval"
)

// Property: sum is invariant under reverse.
func TestPropSumReverseInvariant(t *testing.T) {
	in := New()
	f := func(xs []int32) bool {
		v := make(qval.LongVec, len(xs))
		for i, x := range xs {
			v[i] = int64(x)
		}
		in.SetGlobal("v", v)
		a, err1 := in.Eval("sum v")
		b, err2 := in.Eval("sum reverse v")
		if err1 != nil || err2 != nil {
			return false
		}
		return qval.EqualValues(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: count where mask equals sum mask for boolean vectors.
func TestPropWhereCountEqualsSum(t *testing.T) {
	in := New()
	f := func(bits []bool) bool {
		in.SetGlobal("m", qval.BoolVec(bits))
		a, err1 := in.Eval("count where m")
		b, err2 := in.Eval("sum m")
		if err1 != nil || err2 != nil {
			return false
		}
		return qval.EqualValues(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: iasc produces a permutation that sorts the vector.
func TestPropIascSorts(t *testing.T) {
	in := New()
	f := func(xs []int16) bool {
		v := make(qval.LongVec, len(xs))
		for i, x := range xs {
			v[i] = int64(x)
		}
		in.SetGlobal("v", v)
		sorted, err1 := in.Eval("v[iasc v]")
		direct, err2 := in.Eval("asc v")
		if err1 != nil || err2 != nil {
			return false
		}
		return qval.EqualValues(sorted, direct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sums is the running prefix of sum — last of sums == sum.
func TestPropSumsPrefix(t *testing.T) {
	in := New()
	f := func(xs []int32) bool {
		if len(xs) == 0 {
			return true
		}
		v := make(qval.LongVec, len(xs))
		for i, x := range xs {
			v[i] = int64(x)
		}
		in.SetGlobal("v", v)
		a, err1 := in.Eval("last sums v")
		b, err2 := in.Eval("sum v")
		if err1 != nil || err2 != nil {
			return false
		}
		return qval.EqualValues(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: distinct is idempotent and a subset preserving membership.
func TestPropDistinctIdempotent(t *testing.T) {
	in := New()
	f := func(xs []int8) bool {
		v := make(qval.LongVec, len(xs))
		for i, x := range xs {
			v[i] = int64(x)
		}
		in.SetGlobal("v", v)
		once, err1 := in.Eval("distinct v")
		twice, err2 := in.Eval("distinct distinct v")
		if err1 != nil || err2 != nil {
			return false
		}
		if !qval.EqualValues(once, twice) {
			return false
		}
		member, err := in.Eval("all v in distinct v")
		if err != nil {
			// "all" is not defined; check via min
			member, err = in.Eval("min v in distinct v")
			if len(xs) == 0 {
				return true
			}
			if err != nil {
				return false
			}
		}
		f, _ := qval.AsFloat(member)
		return f == 1 || len(xs) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: take/drop partition the vector: (n#v),(n _ v) ~ v for 0<=n<=len.
func TestPropTakeDropPartition(t *testing.T) {
	in := New()
	f := func(xs []int32, nRaw uint8) bool {
		v := make(qval.LongVec, len(xs))
		for i, x := range xs {
			v[i] = int64(x)
		}
		n := 0
		if len(xs) > 0 {
			n = int(nRaw) % (len(xs) + 1)
		}
		in.SetGlobal("v", v)
		in.SetGlobal("n", qval.Long(int64(n)))
		got, err := in.Eval("(n#v),(n _ v)")
		if err != nil {
			return false
		}
		return qval.EqualValues(got, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the group dict's index lists partition til(count v).
func TestPropGroupPartitions(t *testing.T) {
	in := New()
	f := func(xs []uint8) bool {
		v := make(qval.LongVec, len(xs))
		for i, x := range xs {
			v[i] = int64(x % 4)
		}
		in.SetGlobal("v", v)
		got, err := in.Eval("asc raze value group v")
		if err != nil {
			return false
		}
		want, err := in.Eval("til count v")
		if err != nil {
			return false
		}
		if len(xs) == 0 {
			return got.Len() == 0
		}
		return qval.EqualValues(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
