package interp

import (
	"fmt"
	"sync"

	"hyperq/internal/qlang/ast"
	"hyperq/internal/qlang/parse"
	"hyperq/internal/qlang/qval"
)

// Interp is an in-memory Q evaluator playing the role of a kdb+ server.
// Like kdb+, it executes one request at a time: Eval serializes concurrent
// callers on a mutex, which is precisely how kdb+ accomplishes isolation
// (paper §2.2).
type Interp struct {
	mu      sync.Mutex
	globals map[string]qval.Value
}

// New returns an empty interpreter.
func New() *Interp {
	return &Interp{globals: make(map[string]qval.Value)}
}

// SetGlobal installs a server-level variable, e.g. a loaded table.
func (in *Interp) SetGlobal(name string, v qval.Value) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.globals[name] = v
}

// Global fetches a server-level variable.
func (in *Interp) Global(name string) (qval.Value, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	v, ok := in.globals[name]
	return v, ok
}

// GlobalNames lists the defined server variables.
func (in *Interp) GlobalNames() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.globals))
	for k := range in.globals {
		out = append(out, k)
	}
	return out
}

// Eval parses and evaluates a Q program, returning the value of its last
// statement. The whole request runs under the server lock, mirroring the
// kdb+ single-threaded main loop.
func (in *Interp) Eval(src string) (qval.Value, error) {
	prog, err := parse.Parse(src)
	if err != nil {
		return nil, err
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	env := &env{in: in}
	var last qval.Value = qval.Identity
	for _, stmt := range prog.Stmts {
		last, err = in.eval(stmt, env)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// env is a local lexical scope. A nil vars map means top level, where
// assignments go to the server's global scope (kdb+ behaviour: names set at
// the console or in a remote query are server globals).
type env struct {
	in     *Interp
	vars   map[string]qval.Value
	parent *env
}

func (e *env) lookup(name string) (qval.Value, bool) {
	for s := e; s != nil; s = s.parent {
		if s.vars != nil {
			if v, ok := s.vars[name]; ok {
				return v, true
			}
		}
	}
	if v, ok := e.in.globals[name]; ok {
		return v, true
	}
	return nil, false
}

// set implements Q assignment semantics: ":" assigns locally inside a
// function body (never promoted, paper §3.2.3), and globally at top level;
// "::" always targets the global scope.
func (e *env) set(name string, v qval.Value, global bool) {
	if global || e.vars == nil {
		e.in.globals[name] = v
		return
	}
	e.vars[name] = v
}

// returnValue carries an explicit ":x" early return through the evaluator.
type returnValue struct {
	v qval.Value
}

func (r *returnValue) Error() string { return "return" }

func (in *Interp) eval(n ast.Node, e *env) (qval.Value, error) {
	switch x := n.(type) {
	case *ast.Lit:
		if lam, ok := x.Val.(*qval.Lambda); ok {
			return lam, nil
		}
		return x.Val, nil
	case *ast.Var:
		if v, ok := e.lookup(x.Name); ok {
			return v, nil
		}
		if _, ok := monads[x.Name]; ok {
			return &builtinRef{name: x.Name}, nil
		}
		if _, ok := dyadFns[x.Name]; ok {
			return &builtinRef{name: x.Name}, nil
		}
		return nil, qval.Errorf(x.Name) // kdb+ reports unknown names as 'name
	case *ast.Assign:
		v, err := in.eval(x.Expr, e)
		if err != nil {
			return nil, err
		}
		e.set(x.Name, v, x.Global)
		return v, nil
	case *ast.Return:
		v, err := in.eval(x.Expr, e)
		if err != nil {
			return nil, err
		}
		return nil, &returnValue{v: v}
	case *ast.Monad:
		return in.evalMonadOp(x.Op, x.X, e)
	case *ast.Dyad:
		return in.evalDyadOp(x.Op, x.L, x.R, e)
	case *ast.Apply:
		return in.evalApply(x, e)
	case *ast.Lambda:
		return &qval.Lambda{Params: x.Params, Source: x.Source, Body: x.Body}, nil
	case *ast.ListExpr:
		items := make([]qval.Value, len(x.Items))
		for i, it := range x.Items {
			v, err := in.eval(it, e)
			if err != nil {
				return nil, err
			}
			items[i] = v
		}
		return qval.FromAtoms(items), nil
	case *ast.AdverbExpr:
		return &adverbValue{adverb: x.Adverb, verb: x.Verb, env: e}, nil
	case *ast.SQLTemplate:
		return in.evalTemplate(x, e)
	case *ast.Program:
		var last qval.Value = qval.Identity
		var err error
		for _, s := range x.Stmts {
			last, err = in.eval(s, e)
			if err != nil {
				return nil, err
			}
		}
		return last, nil
	default:
		return nil, qval.Errorf(fmt.Sprintf("nyi node %T", n))
	}
}

// builtinRef is a first-class reference to a built-in verb, so that
// expressions like "sum each x" or passing verbs as arguments work.
type builtinRef struct {
	name string
}

// Type implements qval.Value.
func (*builtinRef) Type() qval.Type { return qval.KUnary }

// Len implements qval.Value.
func (*builtinRef) Len() int { return -1 }

// String renders the verb name.
func (b *builtinRef) String() string { return b.name }

// adverbValue is a verb modified by an adverb, e.g. +/ or f each, reified as
// a value so it can be applied.
type adverbValue struct {
	adverb string
	verb   ast.Node
	env    *env
}

// Type implements qval.Value.
func (*adverbValue) Type() qval.Type { return qval.KUnary }

// Len implements qval.Value.
func (*adverbValue) Len() int { return -1 }

// String renders the modified verb.
func (a *adverbValue) String() string { return a.verb.QString() + a.adverb }

func (in *Interp) evalMonadOp(op string, xn ast.Node, e *env) (qval.Value, error) {
	x, err := in.eval(xn, e)
	if err != nil {
		return nil, err
	}
	return in.applyMonadOp(op, x, e)
}

func (in *Interp) applyMonadOp(op string, x qval.Value, e *env) (qval.Value, error) {
	switch op {
	case "-":
		return arith("-", qval.Long(0), x)
	case "+":
		return builtinFlip(x)
	case "#":
		return builtinCount(x)
	case "?":
		return builtinDistinct(x)
	case "=":
		return builtinGroup(x)
	case "<":
		return builtinIasc(x)
	case ">":
		return builtinIdesc(x)
	case "!":
		return builtinKey(x)
	case "_":
		return builtinFloorV(x)
	case "~":
		return builtinNot(x)
	case ",":
		return qval.Enlist(x), nil
	case "%":
		return builtinSqrt(x)
	case "&":
		return builtinWhere(x)
	case "|":
		return builtinReverse(x)
	case "$":
		return builtinString(x)
	case "@":
		return qval.Long(int64(x.Type())), nil // type of
	case "^":
		return builtinAsc(x)
	default:
		if fn, ok := monads[op]; ok {
			return fn(x)
		}
		return nil, qval.Errorf("nyi monadic " + op)
	}
}

func (in *Interp) evalDyadOp(op string, ln, rn ast.Node, e *env) (qval.Value, error) {
	// right-to-left: Q evaluates the right operand first.
	r, err := in.eval(rn, e)
	if err != nil {
		return nil, err
	}
	l, err := in.eval(ln, e)
	if err != nil {
		return nil, err
	}
	return in.applyDyadOp(op, l, r, e)
}

func (in *Interp) applyDyadOp(op string, l, r qval.Value, e *env) (qval.Value, error) {
	switch op {
	case "+", "-", "*", "%", "mod", "div", "xbar":
		return arith(op, l, r)
	case "&", "|":
		// boolean intersection/union when both sides are booleans,
		// otherwise min/max
		if lm, ok := boolMask(l); ok {
			if rm, ok2 := boolMask(r); ok2 {
				return boolCombine(op, l, r, lm, rm)
			}
		}
		return arith(op, l, r)
	case "=", "<>", "<", ">", "<=", ">=":
		return compareValues(op, l, r)
	case "~":
		return qval.Bool(qval.EqualValues(l, r) && l.Type() == r.Type()), nil
	case "!":
		return builtinMakeDictOrKey(l, r)
	case ",":
		return joinValues(l, r)
	case "#":
		return builtinTake(l, r)
	case "_":
		return builtinDrop(l, r)
	case "?":
		return builtinFind(l, r)
	case "@":
		return indexApply(l, r)
	case "^":
		return builtinFill(l, r)
	case "$":
		return builtinCast(l, r)
	case ".":
		return indexApply(l, r)
	case "in":
		return builtinIn(l, r)
	case "within":
		return builtinWithin(l, r)
	case "like":
		return builtinLike(l, r)
	case "and":
		return in.applyDyadOp("&", l, r, e)
	case "or":
		return in.applyDyadOp("|", l, r, e)
	case "lj", "ij", "uj", "pj":
		return applyNamedJoin(op, l, r)
	case "insert", "upsert":
		return in.insertRows(l, r)
	default:
		if fn, ok := dyadFns[op]; ok {
			return fn(l, r)
		}
		return nil, qval.Errorf("nyi dyadic " + op)
	}
}

func boolCombine(op string, l, r qval.Value, lm, rm []bool) (qval.Value, error) {
	la, ra := l.Len() < 0, r.Len() < 0
	n := len(lm)
	if la {
		n = len(rm)
	}
	if !la && !ra && len(lm) != len(rm) {
		return nil, qval.Errorf("length")
	}
	get := func(m []bool, atom bool, i int) bool {
		if atom {
			return m[0]
		}
		return m[i]
	}
	if la && ra {
		if op == "&" {
			return qval.Bool(lm[0] && rm[0]), nil
		}
		return qval.Bool(lm[0] || rm[0]), nil
	}
	out := make(qval.BoolVec, n)
	for i := range out {
		a, b := get(lm, la, i), get(rm, ra, i)
		if op == "&" {
			out[i] = a && b
		} else {
			out[i] = a || b
		}
	}
	return out, nil
}

// evalApply evaluates f[a;b;...] or monadic juxtaposition f x.
func (in *Interp) evalApply(x *ast.Apply, e *env) (qval.Value, error) {
	// special forms first
	if v, ok := x.Fn.(*ast.Var); ok {
		switch v.Name {
		case "$": // cond: $[c;t;f] with lazy branches
			if len(x.Args) >= 3 {
				return in.evalCond(x.Args, e)
			}
		case "if", "while", "do":
			// control flow (paper §5 lists while-loops among Q's complex
			// constructs); arguments evaluate lazily, repeatedly for loops
			if _, shadowed := e.lookup(v.Name); !shadowed {
				return in.evalControl(v.Name, x.Args, e)
			}
		case "aj", "aj0":
			return in.evalAj(x.Args, e)
		case "lj", "ij", "uj", "ej", "pj":
			return in.evalJoinCall(v.Name, x.Args, e)
		}
		if _, isGlobal := e.lookup(v.Name); !isGlobal {
			if mf, ok := monads[v.Name]; ok && len(x.Args) == 1 {
				a, err := in.eval(x.Args[0], e)
				if err != nil {
					return nil, err
				}
				return mf(a)
			}
			if df, ok := dyadFns[v.Name]; ok && len(x.Args) == 2 {
				// named dyad called with brackets: f[x;y]
				a, err := in.eval(x.Args[0], e)
				if err != nil {
					return nil, err
				}
				b, err := in.eval(x.Args[1], e)
				if err != nil {
					return nil, err
				}
				return df(a, b)
			}
			if infixOps[v.Name] && len(x.Args) == 2 {
				a, err := in.eval(x.Args[0], e)
				if err != nil {
					return nil, err
				}
				b, err := in.eval(x.Args[1], e)
				if err != nil {
					return nil, err
				}
				return in.applyDyadOp(v.Name, a, b, e)
			}
		}
	}
	// operator used with brackets, e.g. +[1;2]
	if v, ok := x.Fn.(*ast.Var); ok && isOperatorName(v.Name) && len(x.Args) == 2 {
		a, err := in.eval(x.Args[0], e)
		if err != nil {
			return nil, err
		}
		b, err := in.eval(x.Args[1], e)
		if err != nil {
			return nil, err
		}
		return in.applyDyadOp(v.Name, a, b, e)
	}
	fn, err := in.eval(x.Fn, e)
	if err != nil {
		return nil, err
	}
	args := make([]qval.Value, len(x.Args))
	for i, a := range x.Args {
		if a == nil {
			args[i] = nil // projection slot
			continue
		}
		v, err := in.eval(a, e)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return in.applyValue(fn, args, e)
}

var infixOps = map[string]bool{
	"in": true, "within": true, "like": true, "and": true, "or": true,
	"mod": true, "div": true, "xbar": true,
}

func isOperatorName(s string) bool {
	switch s {
	case "+", "-", "*", "%", "&", "|", "=", "<>", "<", ">", "<=", ">=", "~",
		"!", ",", "#", "_", "?", "@", "^", "$", ".":
		return true
	}
	return false
}

// applyValue applies a function value (lambda, builtin reference, adverb
// expression, or data-as-function: list/dict/table indexing).
func (in *Interp) applyValue(fn qval.Value, args []qval.Value, e *env) (qval.Value, error) {
	switch f := fn.(type) {
	case *qval.Lambda:
		return in.callLambda(f, args, e)
	case *builtinRef:
		if mf, ok := monads[f.name]; ok && len(args) == 1 {
			return mf(args[0])
		}
		if df, ok := dyadFns[f.name]; ok && len(args) == 2 {
			return df(args[0], args[1])
		}
		return nil, qval.Errorf("rank")
	case *adverbValue:
		return in.applyAdverb(f, args, e)
	case *qval.Dict:
		if len(args) == 1 {
			return f.Lookup(args[0]), nil
		}
		return nil, qval.Errorf("rank")
	default:
		// data applied to indexes
		if len(args) == 1 && args[0] != nil {
			return indexApply(fn, args[0])
		}
		return nil, qval.Errorf("type")
	}
}

// callLambda invokes a lambda with a fresh local scope. Local assignments
// stay local (paper §3.2.3); an explicit ":x" returns early.
func (in *Interp) callLambda(f *qval.Lambda, args []qval.Value, e *env) (qval.Value, error) {
	body, ok := f.Body.([]ast.Node)
	if !ok {
		// body stored as source text: re-parse (mirrors Hyper-Q, §4.3)
		n, err := parse.ParseExpr(f.Source)
		if err != nil {
			return nil, err
		}
		lam, ok := n.(*ast.Lambda)
		if !ok {
			return nil, qval.Errorf("type")
		}
		body = lam.Body
		if len(f.Params) == 0 {
			f.Params = lam.Params
		}
	}
	if len(args) > len(f.Params) {
		return nil, qval.Errorf("rank")
	}
	local := &env{in: in, vars: make(map[string]qval.Value), parent: nil}
	for i, p := range f.Params {
		if i < len(args) && args[i] != nil {
			local.vars[p] = args[i]
		} else {
			local.vars[p] = qval.Identity
		}
	}
	var last qval.Value = qval.Identity
	var err error
	for _, stmt := range body {
		last, err = in.eval(stmt, local)
		if err != nil {
			if rv, ok := err.(*returnValue); ok {
				return rv.v, nil
			}
			return nil, err
		}
	}
	return last, nil
}

// evalCond implements $[c;t;f;...] with lazy branch evaluation.
func (in *Interp) evalCond(args []ast.Node, e *env) (qval.Value, error) {
	i := 0
	for i+1 < len(args) {
		c, err := in.eval(args[i], e)
		if err != nil {
			return nil, err
		}
		if truthy(c) {
			return in.eval(args[i+1], e)
		}
		i += 2
	}
	if i < len(args) {
		return in.eval(args[i], e)
	}
	return qval.Identity, nil
}

func truthy(v qval.Value) bool {
	if b, ok := v.(qval.Bool); ok {
		return bool(b)
	}
	if f, ok := qval.AsFloat(v); ok {
		return f != 0 && !qval.IsNull(v)
	}
	return v.Len() > 0
}

// insertRows implements `tbl insert rows and `tbl upsert rows: the left
// operand names a global table (or is one); the right operand supplies rows
// as a table or a list of column values. It returns the indexes of the new
// rows, like kdb+.
func (in *Interp) insertRows(l, r qval.Value) (qval.Value, error) {
	name := ""
	var target *qval.Table
	switch t := l.(type) {
	case qval.Symbol:
		name = string(t)
		g, ok := in.globals[name]
		if !ok {
			return nil, qval.Errorf(name)
		}
		tbl, ok := qval.Unkey(g)
		if !ok {
			return nil, qval.Errorf("type")
		}
		target = tbl
	case *qval.Table:
		target = t
	default:
		return nil, qval.Errorf("type")
	}
	var rows *qval.Table
	switch x := r.(type) {
	case *qval.Table:
		rows = x
	case *qval.Dict:
		flat, ok := qval.Unkey(x)
		if !ok {
			// dict of col->atom: single row
			syms, ok1 := x.Keys.(qval.SymbolVec)
			if !ok1 {
				return nil, qval.Errorf("type")
			}
			data := make([]qval.Value, len(syms))
			for i := range syms {
				data[i] = qval.Enlist(qval.Index(x.Vals, i))
			}
			rows = qval.NewTable(append([]string(nil), syms...), data)
		} else {
			rows = flat
		}
	case qval.List:
		// positional column values, one entry per column
		if len(x) != len(target.Cols) {
			return nil, qval.Errorf("length")
		}
		data := make([]qval.Value, len(x))
		for i, col := range x {
			if col.Len() < 0 {
				col = qval.Enlist(col)
			}
			data[i] = col
		}
		rows = qval.NewTable(append([]string(nil), target.Cols...), data)
	default:
		return nil, qval.Errorf("type")
	}
	before := target.Len()
	joined, err := appendTables(target, rows)
	if err != nil {
		return nil, err
	}
	newTable := joined.(*qval.Table)
	if name != "" {
		in.globals[name] = newTable
	} else {
		*target = *newTable
	}
	out := make(qval.LongVec, newTable.Len()-before)
	for i := range out {
		out[i] = int64(before + i)
	}
	return out, nil
}

// evalControl implements the if/while/do control constructs. Bodies are
// statements evaluated for effect; loops guard against runaway iteration.
func (in *Interp) evalControl(kind string, args []ast.Node, e *env) (qval.Value, error) {
	if len(args) < 1 {
		return nil, qval.Errorf("rank")
	}
	const maxIters = 10_000_000
	runBody := func() error {
		for _, stmt := range args[1:] {
			if stmt == nil {
				continue
			}
			if _, err := in.eval(stmt, e); err != nil {
				return err
			}
		}
		return nil
	}
	switch kind {
	case "if":
		c, err := in.eval(args[0], e)
		if err != nil {
			return nil, err
		}
		if truthy(c) {
			if err := runBody(); err != nil {
				return nil, err
			}
		}
	case "while":
		for iters := 0; ; iters++ {
			if iters > maxIters {
				return nil, qval.Errorf("limit: while exceeded iteration bound")
			}
			c, err := in.eval(args[0], e)
			if err != nil {
				return nil, err
			}
			if !truthy(c) {
				break
			}
			if err := runBody(); err != nil {
				return nil, err
			}
		}
	case "do":
		nv, err := in.eval(args[0], e)
		if err != nil {
			return nil, err
		}
		n, ok := qval.AsLong(nv)
		if !ok || n < 0 {
			return nil, qval.Errorf("type")
		}
		for i := int64(0); i < n; i++ {
			if err := runBody(); err != nil {
				return nil, err
			}
		}
	}
	return qval.Identity, nil
}
