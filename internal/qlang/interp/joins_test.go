package interp

import (
	"testing"

	"hyperq/internal/qlang/qval"
)

func setupJoinTables(t *testing.T, in *Interp) {
	t.Helper()
	trades := qval.NewTable(
		[]string{"Symbol", "Time", "Price"},
		[]qval.Value{
			qval.SymbolVec{"GOOG", "IBM", "GOOG"},
			qval.TemporalVec{T: qval.KTime, V: []int64{1000, 2000, 3000}},
			qval.FloatVec{100, 150, 101},
		})
	quotes := qval.NewTable(
		[]string{"Symbol", "Time", "Bid"},
		[]qval.Value{
			qval.SymbolVec{"GOOG", "GOOG", "IBM"},
			qval.TemporalVec{T: qval.KTime, V: []int64{500, 2500, 1500}},
			qval.FloatVec{99, 100.5, 149},
		})
	daily := qval.NewTable(
		[]string{"Symbol", "Close"},
		[]qval.Value{qval.SymbolVec{"GOOG", "MSFT"}, qval.FloatVec{102, 55}})
	in.SetGlobal("trades", trades)
	in.SetGlobal("quotes", quotes)
	in.SetGlobal("daily", daily)
}

func TestAsOfJoinSemantics(t *testing.T) {
	in := New()
	setupJoinTables(t, in)
	v := ev(t, in, "aj[`Symbol`Time; trades; quotes]")
	tbl := v.(*qval.Table)
	bid, _ := tbl.Column("Bid")
	// GOOG@1000 -> quote@500 (99); IBM@2000 -> quote@1500 (149);
	// GOOG@3000 -> quote@2500 (100.5)
	want := qval.FloatVec{99, 149, 100.5}
	if !qval.EqualValues(bid, want) {
		t.Fatalf("aj bids = %v, want %v", bid, want)
	}
}

func TestAsOfJoinNoMatchGivesNull(t *testing.T) {
	in := New()
	setupJoinTables(t, in)
	ev(t, in, "early: ([] Symbol:enlist `GOOG; Time:enlist 00:00:00.100)")
	v := ev(t, in, "aj[`Symbol`Time; early; quotes]")
	bid, _ := v.(*qval.Table).Column("Bid")
	if !qval.NullAt(bid, 0) {
		t.Fatalf("expected null bid, got %v", qval.Index(bid, 0))
	}
}

func TestLeftJoinKeyedTable(t *testing.T) {
	in := New()
	setupJoinTables(t, in)
	v := ev(t, in, "trades lj `Symbol xkey daily")
	tbl := v.(*qval.Table)
	cl, ok := tbl.Column("Close")
	if !ok {
		t.Fatalf("cols = %v", tbl.Cols)
	}
	// GOOG rows get 102, IBM row gets null
	if !qval.EqualValues(qval.Index(cl, 0), qval.Float(102)) {
		t.Fatalf("close[0] = %v", qval.Index(cl, 0))
	}
	if !qval.NullAt(cl, 1) {
		t.Fatalf("close[1] = %v, want null", qval.Index(cl, 1))
	}
	if tbl.Len() != 3 {
		t.Fatalf("lj must keep all left rows, got %d", tbl.Len())
	}
}

func TestInnerJoinDropsUnmatched(t *testing.T) {
	in := New()
	setupJoinTables(t, in)
	v := ev(t, in, "trades ij `Symbol xkey daily")
	tbl := v.(*qval.Table)
	if tbl.Len() != 2 { // only the two GOOG rows
		t.Fatalf("ij rows = %d", tbl.Len())
	}
}

func TestUnionJoin(t *testing.T) {
	in := New()
	ev(t, in, "a: ([] x:1 2; y:10 20)")
	ev(t, in, "b: ([] x:3 4; z:30 40)")
	v := ev(t, in, "a uj b")
	tbl := v.(*qval.Table)
	if tbl.Len() != 4 || tbl.NumCols() != 3 {
		t.Fatalf("uj shape = %dx%d (%v)", tbl.Len(), tbl.NumCols(), tbl.Cols)
	}
	y, _ := tbl.Column("y")
	if !qval.NullAt(y, 2) {
		t.Fatal("uj should pad missing columns with nulls")
	}
}

func TestEquiJoin(t *testing.T) {
	in := New()
	setupJoinTables(t, in)
	v := ev(t, in, "ej[`Symbol; trades; daily]")
	tbl := v.(*qval.Table)
	if tbl.Len() != 2 {
		t.Fatalf("ej rows = %d", tbl.Len())
	}
	if _, ok := tbl.Column("Close"); !ok {
		t.Fatalf("ej cols = %v", tbl.Cols)
	}
}

func TestPlusJoin(t *testing.T) {
	in := New()
	ev(t, in, "a: ([] k:`x`y; v:1 2)")
	ev(t, in, "b: ([] k:`x`z; v:10 30)")
	v := ev(t, in, "a pj `k xkey b")
	tbl := v.(*qval.Table)
	vc, _ := tbl.Column("v")
	if !qval.EqualValues(vc, qval.LongVec{11, 2}) {
		t.Fatalf("pj v = %v", vc)
	}
}

func TestAdverbScanAndPrior(t *testing.T) {
	in := New()
	wantEq(t, ev(t, in, "(+\\)1 2 3"), qval.LongVec{1, 3, 6})
	wantEq(t, ev(t, in, "(-':)1 3 6"), qval.LongVec{1, 2, 3})
	wantEq(t, ev(t, in, "deltas 1 3 6"), qval.LongVec{1, 2, 3})
}

func TestAdverbEachLeftRight(t *testing.T) {
	in := New()
	wantEq(t, ev(t, in, "1 2+\\:10"), qval.LongVec{11, 12})
	wantEq(t, ev(t, in, "1+/:10 20"), qval.LongVec{11, 21})
}

func TestWindowedAggregates(t *testing.T) {
	in := New()
	wantEq(t, ev(t, in, "2 mavg 1 2 3 4"), qval.FloatVec{1, 1.5, 2.5, 3.5})
	wantEq(t, ev(t, in, "2 msum 1 2 3 4"), qval.LongVec{1, 3, 5, 7})
	wantEq(t, ev(t, in, "2 mmax 1 5 2 4"), qval.LongVec{1, 5, 5, 4})
	wantEq(t, ev(t, in, "2 mmin 3 1 2 0"), qval.LongVec{3, 1, 1, 0})
}

func TestFillsAndNulls(t *testing.T) {
	in := New()
	wantEq(t, ev(t, in, "fills 1 0N 0N 2 0N"), qval.LongVec{1, 1, 1, 2, 2})
	wantEq(t, ev(t, in, "null 1 0N 3"), qval.BoolVec{false, true, false})
	wantEq(t, ev(t, in, "prev 1 2 3"), qval.LongVec{qval.NullLong, 1, 2})
	wantEq(t, ev(t, in, "next 1 2 3"), qval.LongVec{2, 3, qval.NullLong})
}

func TestSetOperations(t *testing.T) {
	in := New()
	wantEq(t, ev(t, in, "1 2 3 union 3 4"), qval.LongVec{1, 2, 3, 4})
	wantEq(t, ev(t, in, "1 2 3 inter 2 3 4"), qval.LongVec{2, 3})
	wantEq(t, ev(t, in, "1 2 3 except 2"), qval.LongVec{1, 3})
}

func TestBinSearch(t *testing.T) {
	in := New()
	wantEq(t, ev(t, in, "0 2 4 6 bin 5"), qval.Long(2))
	wantEq(t, ev(t, in, "0 2 4 6 bin 1 3 7"), qval.LongVec{0, 1, 3})
	wantEq(t, ev(t, in, "2 4 bin 1"), qval.Long(-1))
}

func TestStringVerbs(t *testing.T) {
	in := New()
	wantEq(t, ev(t, in, "upper `goog"), qval.Symbol("GOOG"))
	wantEq(t, ev(t, in, "lower \"ABC\""), qval.CharVec("abc"))
	v := ev(t, in, "\",\" vs \"a,b,c\"")
	if v.Len() != 3 {
		t.Fatalf("vs = %v", v)
	}
	wantEq(t, ev(t, in, "\"-\" sv (\"a\";\"b\")"), qval.CharVec("a-b"))
}

func TestXcolRename(t *testing.T) {
	in := New()
	ev(t, in, "t: ([] a:1 2; b:3 4)")
	v := ev(t, in, "`x`y xcol t")
	tbl := v.(*qval.Table)
	if tbl.Cols[0] != "x" || tbl.Cols[1] != "y" {
		t.Fatalf("xcol = %v", tbl.Cols)
	}
}

func TestCrossProduct(t *testing.T) {
	in := New()
	v := ev(t, in, "1 2 cross 10 20")
	if v.Len() != 4 {
		t.Fatalf("cross = %v", v)
	}
}

func TestSublist(t *testing.T) {
	in := New()
	wantEq(t, ev(t, in, "2 sublist 1 2 3 4"), qval.LongVec{1, 2})
	wantEq(t, ev(t, in, "10 sublist 1 2"), qval.LongVec{1, 2}) // no cycling
}

func TestGroupPrimitive(t *testing.T) {
	in := New()
	v := ev(t, in, "group `a`b`a")
	d := v.(*qval.Dict)
	if d.Len() != 2 {
		t.Fatalf("group = %v", d)
	}
	if !qval.EqualValues(d.Lookup(qval.Symbol("a")), qval.LongVec{0, 2}) {
		t.Fatalf("group[a] = %v", d.Lookup(qval.Symbol("a")))
	}
}

func TestTakeColumnsFromTable(t *testing.T) {
	in := New()
	ev(t, in, "t: ([] a:1 2; b:3 4; c:5 6)")
	v := ev(t, in, "`a`c#t")
	tbl := v.(*qval.Table)
	if tbl.NumCols() != 2 || tbl.Cols[0] != "a" || tbl.Cols[1] != "c" {
		t.Fatalf("take cols = %v", tbl.Cols)
	}
	v = ev(t, in, "`b _ t")
	tbl = v.(*qval.Table)
	if tbl.NumCols() != 2 {
		t.Fatalf("drop col = %v", tbl.Cols)
	}
}

func TestControlFlow(t *testing.T) {
	in := New()
	// while-loop (paper §5: among Q's complex language constructs)
	wantEq(t, ev(t, in, "s:0; i:0; while[i<5; s:s+i; i:i+1]; s"), qval.Long(10))
	wantEq(t, ev(t, in, "x:0; do[4; x:x+2]; x"), qval.Long(8))
	wantEq(t, ev(t, in, "y:1; if[1; y:99]; y"), qval.Long(99))
	wantEq(t, ev(t, in, "z:1; if[0; z:99]; z"), qval.Long(1))
}

func TestRecursion(t *testing.T) {
	in := New()
	ev(t, in, "fact:{$[x<2; 1; x*fact[x-1]]}")
	wantEq(t, ev(t, in, "fact[5]"), qval.Long(120))
}

func TestWhileIterationBound(t *testing.T) {
	in := New()
	if _, err := in.Eval("while[1; 0]"); err == nil {
		t.Fatal("infinite while should hit the iteration bound")
	}
}
