package interp

import (
	"math"
	"sort"
	"strings"

	"hyperq/internal/qlang/qval"
)

// monads maps named monadic verbs to their implementations.
var monads map[string]func(qval.Value) (qval.Value, error)

// dyadFns maps named dyadic verbs (beyond the operator symbols) to their
// implementations.
var dyadFns map[string]func(a, b qval.Value) (qval.Value, error)

func init() {
	monads = map[string]func(qval.Value) (qval.Value, error){
		"count":    builtinCount,
		"first":    builtinFirst,
		"last":     builtinLast,
		"sum":      builtinSum,
		"avg":      builtinAvg,
		"min":      builtinMin,
		"max":      builtinMax,
		"med":      builtinMed,
		"dev":      builtinDev,
		"var":      builtinVar,
		"til":      builtinTil,
		"reverse":  builtinReverse,
		"distinct": builtinDistinct,
		"where":    builtinWhere,
		"group":    builtinGroup,
		"asc":      builtinAsc,
		"desc":     builtinDesc,
		"iasc":     builtinIasc,
		"idesc":    builtinIdesc,
		"key":      builtinKey,
		"value":    builtinValue,
		"flip":     builtinFlip,
		"enlist":   func(v qval.Value) (qval.Value, error) { return qval.Enlist(v), nil },
		"string":   builtinString,
		"neg":      func(v qval.Value) (qval.Value, error) { return arith("-", qval.Long(0), v) },
		"abs":      builtinAbs,
		"sqrt":     builtinSqrt,
		"exp":      mapFloat(math.Exp),
		"log":      mapFloat(math.Log),
		"floor":    builtinFloorV,
		"ceiling":  mapFloatInt(math.Ceil),
		"signum":   builtinSignum,
		"not":      builtinNot,
		"null":     builtinNullP,
		"type":     func(v qval.Value) (qval.Value, error) { return qval.Short(int16(v.Type())), nil },
		"cols":     builtinCols,
		"meta":     builtinMeta,
		"raze":     builtinRaze,
		"ungroup":  builtinUngroup,
		"deltas":   builtinDeltas,
		"sums":     builtinSums,
		"maxs":     builtinMaxs,
		"mins":     builtinMins,
		"fills":    builtinFills,
		"next":     builtinNext,
		"prev":     builtinPrev,
		"lower":    mapString(strings.ToLower),
		"upper":    mapString(strings.ToUpper),
		"trim":     mapString(strings.TrimSpace),
	}
	dyadFns = map[string]func(a, b qval.Value) (qval.Value, error){
		"xasc":    builtinXasc,
		"xdesc":   builtinXdesc,
		"xkey":    builtinXkey,
		"xcol":    builtinXcol,
		"wavg":    builtinWavg,
		"wsum":    builtinWsum,
		"cor":     builtinCor,
		"cov":     builtinCov,
		"mavg":    builtinMavg,
		"msum":    builtinMsum,
		"mmax":    builtinMmax,
		"mmin":    builtinMmin,
		"union":   builtinUnion,
		"inter":   builtinInter,
		"except":  builtinExcept,
		"cross":   builtinCross,
		"bin":     builtinBin,
		"sublist": builtinSublist,
		"vs":      builtinVs,
		"sv":      builtinSv,
	}
}

func builtinCount(v qval.Value) (qval.Value, error) {
	n := v.Len()
	if n < 0 {
		n = 1
	}
	return qval.Long(int64(n)), nil
}

func builtinFirst(v qval.Value) (qval.Value, error) {
	if v.Len() < 0 {
		return v, nil
	}
	if v.Len() == 0 {
		return qval.Null(v.Type()), nil
	}
	return qval.Index(v, 0), nil
}

func builtinLast(v qval.Value) (qval.Value, error) {
	if v.Len() < 0 {
		return v, nil
	}
	if v.Len() == 0 {
		return qval.Null(v.Type()), nil
	}
	return qval.Index(v, v.Len()-1), nil
}

// reduceNums folds a numeric vector, skipping nulls (Q aggregates ignore
// nulls, matching SQL aggregate behaviour — one of the few places the two
// languages agree).
func reduceNums(v qval.Value, f func(acc, x float64) float64, init float64) (float64, int, error) {
	n := v.Len()
	if n < 0 {
		x, ok := qval.AsFloat(v)
		if !ok {
			return 0, 0, qval.Errorf("type")
		}
		if qval.IsNull(v) {
			return init, 0, nil
		}
		return f(init, x), 1, nil
	}
	acc := init
	cnt := 0
	for i := 0; i < n; i++ {
		if qval.NullAt(v, i) {
			continue
		}
		x, ok := qval.AsFloat(qval.Index(v, i))
		if !ok {
			return 0, 0, qval.Errorf("type")
		}
		acc = f(acc, x)
		cnt++
	}
	return acc, cnt, nil
}

func isFloatFamily(t qval.Type) bool {
	if t < 0 {
		t = -t
	}
	return t == qval.KReal || t == qval.KFloat || t == qval.KDatetime
}

func builtinSum(v qval.Value) (qval.Value, error) {
	acc, _, err := reduceNums(v, func(a, x float64) float64 { return a + x }, 0)
	if err != nil {
		return nil, err
	}
	if isFloatFamily(v.Type()) {
		return qval.Float(acc), nil
	}
	if qval.IsTemporal(v.Type()) {
		return qval.Temporal{T: absType(v.Type()), V: int64(acc)}, nil
	}
	return qval.Long(int64(acc)), nil
}

func absType(t qval.Type) qval.Type {
	if t < 0 {
		return -t
	}
	return t
}

func builtinAvg(v qval.Value) (qval.Value, error) {
	acc, cnt, err := reduceNums(v, func(a, x float64) float64 { return a + x }, 0)
	if err != nil {
		return nil, err
	}
	if cnt == 0 {
		return qval.Null(qval.KFloat), nil
	}
	return qval.Float(acc / float64(cnt)), nil
}

func builtinMin(v qval.Value) (qval.Value, error) { return extremum(v, true) }
func builtinMax(v qval.Value) (qval.Value, error) { return extremum(v, false) }

func extremum(v qval.Value, min bool) (qval.Value, error) {
	n := v.Len()
	if n < 0 {
		return v, nil
	}
	var best qval.Value
	for i := 0; i < n; i++ {
		if qval.NullAt(v, i) {
			continue
		}
		x := qval.Index(v, i)
		if best == nil {
			best = x
			continue
		}
		c := qval.Compare(x, best)
		if (min && c < 0) || (!min && c > 0) {
			best = x
		}
	}
	if best == nil {
		return qval.Null(v.Type()), nil
	}
	return best, nil
}

func builtinMed(v qval.Value) (qval.Value, error) {
	n := v.Len()
	if n < 0 {
		f, _ := qval.AsFloat(v)
		return qval.Float(f), nil
	}
	var xs []float64
	for i := 0; i < n; i++ {
		if qval.NullAt(v, i) {
			continue
		}
		f, ok := qval.AsFloat(qval.Index(v, i))
		if !ok {
			return nil, qval.Errorf("type")
		}
		xs = append(xs, f)
	}
	if len(xs) == 0 {
		return qval.Null(qval.KFloat), nil
	}
	sort.Float64s(xs)
	m := len(xs) / 2
	if len(xs)%2 == 1 {
		return qval.Float(xs[m]), nil
	}
	return qval.Float((xs[m-1] + xs[m]) / 2), nil
}

func variance(v qval.Value) (float64, bool, error) {
	sum, cnt, err := reduceNums(v, func(a, x float64) float64 { return a + x }, 0)
	if err != nil {
		return 0, false, err
	}
	if cnt == 0 {
		return 0, false, nil
	}
	mean := sum / float64(cnt)
	ss, _, err := reduceNums(v, func(a, x float64) float64 { return a + (x-mean)*(x-mean) }, 0)
	if err != nil {
		return 0, false, err
	}
	return ss / float64(cnt), true, nil
}

func builtinVar(v qval.Value) (qval.Value, error) {
	x, ok, err := variance(v)
	if err != nil {
		return nil, err
	}
	if !ok {
		return qval.Null(qval.KFloat), nil
	}
	return qval.Float(x), nil
}

func builtinDev(v qval.Value) (qval.Value, error) {
	x, ok, err := variance(v)
	if err != nil {
		return nil, err
	}
	if !ok {
		return qval.Null(qval.KFloat), nil
	}
	return qval.Float(math.Sqrt(x)), nil
}

func builtinTil(v qval.Value) (qval.Value, error) {
	n, ok := qval.AsLong(v)
	if !ok || n < 0 {
		return nil, qval.Errorf("type")
	}
	return qval.Til(n), nil
}

func builtinReverse(v qval.Value) (qval.Value, error) {
	n := v.Len()
	if n < 0 {
		return v, nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = n - 1 - i
	}
	return qval.TakeIndexes(v, idx), nil
}

func builtinDistinct(v qval.Value) (qval.Value, error) {
	n := v.Len()
	if n < 0 {
		return qval.Enlist(v), nil
	}
	var keep []int
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		k := qval.Index(v, i).String()
		if !seen[k] {
			seen[k] = true
			keep = append(keep, i)
		}
	}
	return qval.TakeIndexes(v, keep), nil
}

func builtinWhere(v qval.Value) (qval.Value, error) {
	switch x := v.(type) {
	case qval.BoolVec:
		var out qval.LongVec
		for i, b := range x {
			if b {
				out = append(out, int64(i))
			}
		}
		if out == nil {
			out = qval.LongVec{}
		}
		return out, nil
	case qval.LongVec: // where 1 2 0 -> 0 1 1
		var out qval.LongVec
		for i, c := range x {
			for k := int64(0); k < c; k++ {
				out = append(out, int64(i))
			}
		}
		if out == nil {
			out = qval.LongVec{}
		}
		return out, nil
	default:
		return nil, qval.Errorf("type")
	}
}

func builtinGroup(v qval.Value) (qval.Value, error) {
	n := v.Len()
	if n < 0 {
		return nil, qval.Errorf("type")
	}
	var order []string
	buckets := map[string][]int64{}
	reps := map[string]qval.Value{}
	for i := 0; i < n; i++ {
		x := qval.Index(v, i)
		k := x.String()
		if _, ok := buckets[k]; !ok {
			order = append(order, k)
			reps[k] = x
		}
		buckets[k] = append(buckets[k], int64(i))
	}
	keys := make([]qval.Value, len(order))
	vals := make(qval.List, len(order))
	for i, k := range order {
		keys[i] = reps[k]
		vals[i] = qval.LongVec(buckets[k])
	}
	return qval.NewDict(qval.FromAtoms(keys), vals), nil
}

func sortIndexes(v qval.Value, desc bool) []int {
	n := v.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if desc {
			return qval.LessAt(v, idx[b], idx[a])
		}
		return qval.LessAt(v, idx[a], idx[b])
	})
	return idx
}

func builtinAsc(v qval.Value) (qval.Value, error) {
	if v.Len() < 0 {
		return v, nil
	}
	return qval.TakeIndexes(v, sortIndexes(v, false)), nil
}

func builtinDesc(v qval.Value) (qval.Value, error) {
	if v.Len() < 0 {
		return v, nil
	}
	return qval.TakeIndexes(v, sortIndexes(v, true)), nil
}

func builtinIasc(v qval.Value) (qval.Value, error) {
	if v.Len() < 0 {
		return nil, qval.Errorf("type")
	}
	idx := sortIndexes(v, false)
	out := make(qval.LongVec, len(idx))
	for i, x := range idx {
		out[i] = int64(x)
	}
	return out, nil
}

func builtinIdesc(v qval.Value) (qval.Value, error) {
	if v.Len() < 0 {
		return nil, qval.Errorf("type")
	}
	idx := sortIndexes(v, true)
	out := make(qval.LongVec, len(idx))
	for i, x := range idx {
		out[i] = int64(x)
	}
	return out, nil
}

func builtinKey(v qval.Value) (qval.Value, error) {
	switch x := v.(type) {
	case *qval.Dict:
		return x.Keys, nil
	case *qval.Table:
		return qval.SymbolVec(append([]string(nil), x.Cols...)), nil
	default:
		return v, nil
	}
}

func builtinValue(v qval.Value) (qval.Value, error) {
	switch x := v.(type) {
	case *qval.Dict:
		return x.Vals, nil
	case qval.Symbol:
		return x, nil
	default:
		return v, nil
	}
}

// builtinFlip transposes: a dict of equal-length columns becomes a table and
// vice versa.
func builtinFlip(v qval.Value) (qval.Value, error) {
	switch x := v.(type) {
	case *qval.Dict:
		syms, ok := x.Keys.(qval.SymbolVec)
		if !ok {
			return nil, qval.Errorf("type")
		}
		valsList, ok := x.Vals.(qval.List)
		if !ok {
			return nil, qval.Errorf("type")
		}
		if len(syms) != len(valsList) {
			return nil, qval.Errorf("length")
		}
		data := make([]qval.Value, len(valsList))
		copy(data, valsList)
		// broadcast atom-valued columns to the common row count
		rows := 1
		for _, c := range data {
			if c.Len() > rows {
				rows = c.Len()
			}
		}
		for i, c := range data {
			if c.Len() < 0 {
				idx := make([]int, rows)
				data[i] = qval.TakeIndexes(qval.Enlist(c), idx)
			}
		}
		return qval.NewTable(append([]string(nil), syms...), data), nil
	case *qval.Table:
		return qval.NewDict(qval.SymbolVec(append([]string(nil), x.Cols...)), append(qval.List{}, x.Data...)), nil
	default:
		return nil, qval.Errorf("type")
	}
}

func builtinString(v qval.Value) (qval.Value, error) {
	n := v.Len()
	if n < 0 || v.Type() == qval.KChar {
		s := v.String()
		s = strings.TrimPrefix(s, "`")
		s = strings.Trim(s, `"`)
		return qval.CharVec(s), nil
	}
	out := make(qval.List, n)
	for i := 0; i < n; i++ {
		s, _ := builtinString(qval.Index(v, i))
		out[i] = s
	}
	return out, nil
}

func builtinAbs(v qval.Value) (qval.Value, error) {
	return mapNumeric(v, math.Abs, false)
}

func builtinSqrt(v qval.Value) (qval.Value, error) {
	return mapNumeric(v, math.Sqrt, true)
}

func mapFloat(f func(float64) float64) func(qval.Value) (qval.Value, error) {
	return func(v qval.Value) (qval.Value, error) { return mapNumeric(v, f, true) }
}

func mapFloatInt(f func(float64) float64) func(qval.Value) (qval.Value, error) {
	return func(v qval.Value) (qval.Value, error) { return mapNumeric(v, f, false) }
}

// mapNumeric applies f elementwise; toFloat forces a float result type,
// otherwise the input type is preserved.
func mapNumeric(v qval.Value, f func(float64) float64, toFloat bool) (qval.Value, error) {
	rt := absType(v.Type())
	if toFloat {
		rt = qval.KFloat
	}
	n := v.Len()
	if n < 0 {
		x, isN, ok := scalarNum(v)
		if !ok {
			return nil, qval.Errorf("type")
		}
		if isN {
			return qval.Null(rt), nil
		}
		return packNum(rt, f(x), false), nil
	}
	atoms := make([]qval.Value, n)
	for i := 0; i < n; i++ {
		x, isN, ok := scalarNum(qval.Index(v, i))
		if !ok {
			return nil, qval.Errorf("type")
		}
		if isN {
			atoms[i] = qval.Null(rt)
		} else {
			atoms[i] = packNum(rt, f(x), false)
		}
	}
	return qval.FromAtoms(atoms), nil
}

func builtinFloorV(v qval.Value) (qval.Value, error) {
	return mapNumeric(v, math.Floor, false)
}

func builtinSignum(v qval.Value) (qval.Value, error) {
	return mapNumeric(v, func(x float64) float64 {
		switch {
		case x > 0:
			return 1
		case x < 0:
			return -1
		default:
			return 0
		}
	}, false)
}

func builtinNot(v qval.Value) (qval.Value, error) {
	n := v.Len()
	if n < 0 {
		f, _, ok := scalarNum(v)
		if !ok {
			return nil, qval.Errorf("type")
		}
		return qval.Bool(f == 0), nil
	}
	out := make(qval.BoolVec, n)
	for i := 0; i < n; i++ {
		f, _, ok := scalarNum(qval.Index(v, i))
		if !ok {
			return nil, qval.Errorf("type")
		}
		out[i] = f == 0
	}
	return out, nil
}

func builtinNullP(v qval.Value) (qval.Value, error) {
	n := v.Len()
	if n < 0 {
		return qval.Bool(qval.IsNull(v)), nil
	}
	out := make(qval.BoolVec, n)
	for i := 0; i < n; i++ {
		out[i] = qval.NullAt(v, i)
	}
	return out, nil
}

func builtinCols(v qval.Value) (qval.Value, error) {
	t, ok := qval.Unkey(v)
	if !ok {
		return nil, qval.Errorf("type")
	}
	return qval.SymbolVec(append([]string(nil), t.Cols...)), nil
}

// builtinMeta returns a table of column name, type char, like kdb+'s meta.
func builtinMeta(v qval.Value) (qval.Value, error) {
	t, ok := qval.Unkey(v)
	if !ok {
		return nil, qval.Errorf("type")
	}
	names := make(qval.SymbolVec, len(t.Cols))
	types := make(qval.CharVec, len(t.Cols))
	for i, c := range t.Cols {
		names[i] = c
		types[i] = qval.CharCode(t.Data[i].Type())
	}
	return qval.NewTable([]string{"c", "t"}, []qval.Value{names, types}), nil
}

func builtinRaze(v qval.Value) (qval.Value, error) {
	l, ok := v.(qval.List)
	if !ok {
		return v, nil
	}
	if len(l) == 0 {
		return qval.List{}, nil
	}
	out := l[0]
	for _, x := range l[1:] {
		var err error
		out, err = joinValues(out, x)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func builtinUngroup(v qval.Value) (qval.Value, error) {
	t, ok := qval.Unkey(v)
	if !ok {
		return nil, qval.Errorf("type")
	}
	// explode list-valued columns in parallel
	n := t.Len()
	var counts []int
	for i := 0; i < n; i++ {
		c := -1
		for _, col := range t.Data {
			e := qval.Index(col, i)
			if e.Len() >= 0 && e.Type() != -qval.KChar {
				if c == -1 {
					c = e.Len()
				}
			}
		}
		if c == -1 {
			c = 1
		}
		counts = append(counts, c)
	}
	data := make([]qval.Value, len(t.Data))
	for j, col := range t.Data {
		var atoms []qval.Value
		for i := 0; i < n; i++ {
			e := qval.Index(col, i)
			if e.Len() >= 0 {
				for k := 0; k < counts[i]; k++ {
					atoms = append(atoms, qval.Index(e, k))
				}
			} else {
				for k := 0; k < counts[i]; k++ {
					atoms = append(atoms, e)
				}
			}
		}
		data[j] = qval.FromAtoms(atoms)
	}
	return qval.NewTable(append([]string(nil), t.Cols...), data), nil
}

func builtinDeltas(v qval.Value) (qval.Value, error) {
	n := v.Len()
	if n <= 0 {
		return v, nil
	}
	first := qval.Index(v, 0)
	atoms := make([]qval.Value, n)
	atoms[0] = first
	for i := 1; i < n; i++ {
		d, err := arith("-", qval.Index(v, i), qval.Index(v, i-1))
		if err != nil {
			return nil, err
		}
		atoms[i] = d
	}
	return qval.FromAtoms(atoms), nil
}

func runningFold(v qval.Value, op string) (qval.Value, error) {
	n := v.Len()
	if n < 0 {
		return v, nil
	}
	atoms := make([]qval.Value, n)
	var acc qval.Value
	for i := 0; i < n; i++ {
		x := qval.Index(v, i)
		if acc == nil {
			acc = x
		} else {
			var err error
			switch op {
			case "+":
				acc, err = arith("+", acc, x)
			case "&":
				acc, err = arith("&", acc, x)
			case "|":
				acc, err = arith("|", acc, x)
			}
			if err != nil {
				return nil, err
			}
		}
		atoms[i] = acc
	}
	return qval.FromAtoms(atoms), nil
}

func builtinSums(v qval.Value) (qval.Value, error) { return runningFold(v, "+") }
func builtinMins(v qval.Value) (qval.Value, error) { return runningFold(v, "&") }
func builtinMaxs(v qval.Value) (qval.Value, error) { return runningFold(v, "|") }

// builtinFills replaces nulls with the previous non-null value.
func builtinFills(v qval.Value) (qval.Value, error) {
	n := v.Len()
	if n < 0 {
		return v, nil
	}
	atoms := make([]qval.Value, n)
	var lastGood qval.Value
	for i := 0; i < n; i++ {
		x := qval.Index(v, i)
		if qval.IsNull(x) && lastGood != nil {
			atoms[i] = lastGood
		} else {
			atoms[i] = x
			if !qval.IsNull(x) {
				lastGood = x
			}
		}
	}
	return qval.FromAtoms(atoms), nil
}

func builtinNext(v qval.Value) (qval.Value, error) {
	n := v.Len()
	if n < 0 {
		return v, nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i + 1 // last becomes null via out-of-range
	}
	return qval.TakeIndexes(v, idx), nil
}

func builtinPrev(v qval.Value) (qval.Value, error) {
	n := v.Len()
	if n < 0 {
		return v, nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i - 1
	}
	return qval.TakeIndexes(v, idx), nil
}

func mapString(f func(string) string) func(qval.Value) (qval.Value, error) {
	return func(v qval.Value) (qval.Value, error) {
		switch x := v.(type) {
		case qval.Symbol:
			return qval.Symbol(f(string(x))), nil
		case qval.SymbolVec:
			out := make(qval.SymbolVec, len(x))
			for i, s := range x {
				out[i] = f(s)
			}
			return out, nil
		case qval.CharVec:
			return qval.CharVec(f(string(x))), nil
		default:
			return nil, qval.Errorf("type")
		}
	}
}
