package interp

import (
	"sort"
	"strings"

	"hyperq/internal/qlang/qval"
)

// joinValues implements the ',' join operator: list concatenation with
// widening, atom,atom -> 2-vector, table,table -> row append.
func joinValues(a, b qval.Value) (qval.Value, error) {
	if ta, ok := a.(*qval.Table); ok {
		if tb, ok := b.(*qval.Table); ok {
			return appendTables(ta, tb)
		}
	}
	la, lb := a.Len(), b.Len()
	toAtoms := func(v qval.Value) []qval.Value {
		n := v.Len()
		if n < 0 {
			return []qval.Value{v}
		}
		out := make([]qval.Value, n)
		for i := 0; i < n; i++ {
			out[i] = qval.Index(v, i)
		}
		return out
	}
	// fast path: same-type vectors
	if la >= 0 && lb >= 0 && a.Type() == b.Type() && a.Type() > 0 {
		switch x := a.(type) {
		case qval.LongVec:
			return append(append(qval.LongVec{}, x...), b.(qval.LongVec)...), nil
		case qval.FloatVec:
			return append(append(qval.FloatVec{}, x...), b.(qval.FloatVec)...), nil
		case qval.SymbolVec:
			return append(append(qval.SymbolVec{}, x...), b.(qval.SymbolVec)...), nil
		case qval.CharVec:
			return append(append(qval.CharVec{}, x...), b.(qval.CharVec)...), nil
		case qval.BoolVec:
			return append(append(qval.BoolVec{}, x...), b.(qval.BoolVec)...), nil
		case qval.TemporalVec:
			y := b.(qval.TemporalVec)
			return qval.TemporalVec{T: x.T, V: append(append([]int64{}, x.V...), y.V...)}, nil
		}
	}
	return qval.FromAtoms(append(toAtoms(a), toAtoms(b)...)), nil
}

// appendTables appends rows of b to a, matching columns by name.
func appendTables(a, b *qval.Table) (qval.Value, error) {
	data := make([]qval.Value, len(a.Cols))
	for i, c := range a.Cols {
		bc, ok := b.Column(c)
		if !ok {
			return nil, qval.Errorf("mismatch")
		}
		j, err := joinValues(a.Data[i], bc)
		if err != nil {
			return nil, err
		}
		data[i] = j
	}
	return qval.NewTable(append([]string(nil), a.Cols...), data), nil
}

// builtinTake implements n#x: first n (or last -n) elements, cycling when n
// exceeds the length; also sym#table for column selection.
func builtinTake(a, b qval.Value) (qval.Value, error) {
	if syms, ok := a.(qval.SymbolVec); ok {
		if t, ok2 := qval.Unkey(b); ok2 {
			data := make([]qval.Value, 0, len(syms))
			names := make([]string, 0, len(syms))
			for _, s := range syms {
				c, ok := t.Column(s)
				if !ok {
					return nil, qval.Errorf(s)
				}
				names = append(names, s)
				data = append(data, c)
			}
			return qval.NewTable(names, data), nil
		}
	}
	n, ok := qval.AsLong(a)
	if !ok {
		return nil, qval.Errorf("type")
	}
	if t, ok := b.(*qval.Table); ok {
		idx := takeIdx(int(n), t.Len())
		return t.Take(idx), nil
	}
	ln := b.Len()
	if ln < 0 {
		b = qval.Enlist(b)
		ln = 1
	}
	return qval.TakeIndexes(b, takeIdx(int(n), ln)), nil
}

func takeIdx(n, ln int) []int {
	if n >= 0 {
		idx := make([]int, n)
		for i := range idx {
			if ln > 0 {
				idx[i] = i % ln
			}
		}
		return idx
	}
	n = -n
	idx := make([]int, n)
	for i := range idx {
		if ln > 0 {
			idx[i] = (ln - n + i + n*ln) % ln
			if ln >= n {
				idx[i] = ln - n + i
			}
		}
	}
	return idx
}

// builtinDrop implements n_x (drop first n / last -n) and sym_table
// (drop column).
func builtinDrop(a, b qval.Value) (qval.Value, error) {
	if s, ok := a.(qval.Symbol); ok {
		if t, ok2 := qval.Unkey(b); ok2 {
			return dropCols(t, []string{string(s)})
		}
	}
	if syms, ok := a.(qval.SymbolVec); ok {
		if t, ok2 := qval.Unkey(b); ok2 {
			return dropCols(t, syms)
		}
	}
	n, ok := qval.AsLong(a)
	if !ok {
		return nil, qval.Errorf("type")
	}
	ln := b.Len()
	if ln < 0 {
		return nil, qval.Errorf("type")
	}
	var lo, hi int
	if n >= 0 {
		lo, hi = int(n), ln
	} else {
		lo, hi = 0, ln+int(n)
	}
	if lo > ln {
		lo = ln
	}
	if hi < lo {
		hi = lo
	}
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	if t, ok := b.(*qval.Table); ok {
		return t.Take(idx), nil
	}
	return qval.TakeIndexes(b, idx), nil
}

func dropCols(t *qval.Table, names []string) (qval.Value, error) {
	var cols []string
	var data []qval.Value
	for i, c := range t.Cols {
		drop := false
		for _, n := range names {
			if c == n {
				drop = true
				break
			}
		}
		if !drop {
			cols = append(cols, c)
			data = append(data, t.Data[i])
		}
	}
	return qval.NewTable(cols, data), nil
}

// builtinFind implements x?y (index of first occurrence; len(x) when
// missing).
func builtinFind(a, b qval.Value) (qval.Value, error) {
	n := a.Len()
	if n < 0 {
		return nil, qval.Errorf("type")
	}
	find := func(needle qval.Value) qval.Long {
		for i := 0; i < n; i++ {
			if qval.EqualValues(qval.Index(a, i), needle) {
				return qval.Long(int64(i))
			}
		}
		return qval.Long(int64(n))
	}
	if b.Len() < 0 {
		return find(b), nil
	}
	out := make(qval.LongVec, b.Len())
	for i := range out {
		out[i] = int64(find(qval.Index(b, i)))
	}
	return out, nil
}

// indexApply implements x@i / x . i — indexing a list, dict or table.
func indexApply(x, i qval.Value) (qval.Value, error) {
	if d, ok := x.(*qval.Dict); ok {
		if i.Len() < 0 {
			return d.Lookup(i), nil
		}
		out := make([]qval.Value, i.Len())
		for k := 0; k < i.Len(); k++ {
			out[k] = d.Lookup(qval.Index(i, k))
		}
		return qval.FromAtoms(out), nil
	}
	if t, ok := x.(*qval.Table); ok {
		if s, ok := i.(qval.Symbol); ok {
			c, found := t.Column(string(s))
			if !found {
				return nil, qval.Errorf(string(s))
			}
			return c, nil
		}
	}
	if i.Len() < 0 {
		n, ok := qval.AsLong(i)
		if !ok {
			return nil, qval.Errorf("type")
		}
		return qval.Index(x, int(n)), nil
	}
	idx := make([]int, i.Len())
	for k := range idx {
		n, ok := qval.AsLong(qval.Index(i, k))
		if !ok {
			return nil, qval.Errorf("type")
		}
		idx[k] = int(n)
	}
	return qval.TakeIndexes(x, idx), nil
}

// builtinFill implements x^y: replace nulls in y with x.
func builtinFill(a, b qval.Value) (qval.Value, error) {
	n := b.Len()
	if n < 0 {
		if qval.IsNull(b) {
			return a, nil
		}
		return b, nil
	}
	atoms := make([]qval.Value, n)
	for i := 0; i < n; i++ {
		if qval.NullAt(b, i) {
			atoms[i] = qval.Index(a, i) // atom a extends
		} else {
			atoms[i] = qval.Index(b, i)
		}
	}
	return qval.FromAtoms(atoms), nil
}

// builtinCast implements t$x for symbol type names and char codes.
func builtinCast(a, b qval.Value) (qval.Value, error) {
	var target qval.Type
	switch t := a.(type) {
	case qval.Symbol:
		target = typeByName(string(t))
	case qval.Char:
		target = qval.TypeFromCharCode(byte(t))
	case qval.Long, qval.Int, qval.Short:
		n, _ := qval.AsLong(a)
		target = qval.Type(n)
	default:
		return nil, qval.Errorf("type")
	}
	if target == 0 {
		return nil, qval.Errorf("type")
	}
	return castTo(target, b)
}

func typeByName(s string) qval.Type {
	switch s {
	case "boolean":
		return qval.KBool
	case "byte":
		return qval.KByte
	case "short":
		return qval.KShort
	case "int":
		return qval.KInt
	case "long":
		return qval.KLong
	case "real":
		return qval.KReal
	case "float":
		return qval.KFloat
	case "char":
		return qval.KChar
	case "symbol":
		return qval.KSymbol
	case "timestamp":
		return qval.KTimestamp
	case "month":
		return qval.KMonth
	case "date":
		return qval.KDate
	case "datetime":
		return qval.KDatetime
	case "timespan":
		return qval.KTimespan
	case "minute":
		return qval.KMinute
	case "second":
		return qval.KSecond
	case "time":
		return qval.KTime
	default:
		return 0
	}
}

func castTo(t qval.Type, v qval.Value) (qval.Value, error) {
	if t == qval.KSymbol {
		switch x := v.(type) {
		case qval.CharVec:
			return qval.Symbol(string(x)), nil
		case qval.Symbol:
			return x, nil
		case qval.List:
			out := make(qval.SymbolVec, len(x))
			for i, e := range x {
				s, err := castTo(qval.KSymbol, e)
				if err != nil {
					return nil, err
				}
				out[i] = string(s.(qval.Symbol))
			}
			return out, nil
		}
		return nil, qval.Errorf("type")
	}
	n := v.Len()
	if n < 0 || v.Type() == qval.KChar {
		f, isN, ok := scalarNum(v)
		if !ok {
			return nil, qval.Errorf("type")
		}
		return packNum(t, f, isN), nil
	}
	atoms := make([]qval.Value, n)
	for i := 0; i < n; i++ {
		f, isN, ok := scalarNum(qval.Index(v, i))
		if !ok {
			return nil, qval.Errorf("type")
		}
		atoms[i] = packNum(t, f, isN)
	}
	return qval.FromAtoms(atoms), nil
}

// builtinIn implements x in y membership test.
func builtinIn(a, b qval.Value) (qval.Value, error) {
	contains := func(needle qval.Value) bool {
		n := b.Len()
		if n < 0 {
			return qval.EqualValues(needle, b)
		}
		for i := 0; i < n; i++ {
			if qval.EqualValues(qval.Index(b, i), needle) {
				return true
			}
		}
		return false
	}
	if a.Len() < 0 {
		return qval.Bool(contains(a)), nil
	}
	out := make(qval.BoolVec, a.Len())
	for i := range out {
		out[i] = contains(qval.Index(a, i))
	}
	return out, nil
}

// builtinWithin implements x within (lo;hi), inclusive bounds.
func builtinWithin(a, b qval.Value) (qval.Value, error) {
	if b.Len() != 2 {
		return nil, qval.Errorf("length")
	}
	lo, hi := qval.Index(b, 0), qval.Index(b, 1)
	check := func(x qval.Value) bool {
		return qval.Compare(x, lo) >= 0 && qval.Compare(x, hi) <= 0
	}
	if a.Len() < 0 {
		return qval.Bool(check(a)), nil
	}
	out := make(qval.BoolVec, a.Len())
	for i := range out {
		out[i] = check(qval.Index(a, i))
	}
	return out, nil
}

// builtinLike implements glob matching with * and ? wildcards.
func builtinLike(a, b qval.Value) (qval.Value, error) {
	pat := ""
	switch p := b.(type) {
	case qval.CharVec:
		pat = string(p)
	case qval.Symbol:
		pat = string(p)
	default:
		return nil, qval.Errorf("type")
	}
	match := func(v qval.Value) (bool, error) {
		var s string
		switch x := v.(type) {
		case qval.Symbol:
			s = string(x)
		case qval.CharVec:
			s = string(x)
		default:
			return false, qval.Errorf("type")
		}
		return globMatch(pat, s), nil
	}
	if a.Len() < 0 || a.Type() == qval.KChar {
		ok, err := match(a)
		if err != nil {
			return nil, err
		}
		return qval.Bool(ok), nil
	}
	out := make(qval.BoolVec, a.Len())
	for i := range out {
		ok, err := match(qval.Index(a, i))
		if err != nil {
			return nil, err
		}
		out[i] = ok
	}
	return out, nil
}

func globMatch(pat, s string) bool {
	// iterative wildcard match: * any run, ? one char
	var pi, si, star, mark int
	star = -1
	for si < len(s) {
		if pi < len(pat) && (pat[pi] == '?' || pat[pi] == s[si]) {
			pi++
			si++
			continue
		}
		if pi < len(pat) && pat[pi] == '*' {
			star = pi
			mark = si
			pi++
			continue
		}
		if star >= 0 {
			pi = star + 1
			mark++
			si = mark
			continue
		}
		return false
	}
	for pi < len(pat) && pat[pi] == '*' {
		pi++
	}
	return pi == len(pat)
}

// builtinMakeDictOrKey implements k!v: dictionary construction, or n!table
// to key a table on its first n columns, or syms!table? (xkey handles syms).
func builtinMakeDictOrKey(a, b qval.Value) (qval.Value, error) {
	if t, ok := b.(*qval.Table); ok {
		if n, isInt := qval.AsLong(a); isInt {
			if n == 0 {
				return t, nil
			}
			if int(n) > len(t.Cols) {
				return nil, qval.Errorf("length")
			}
			return qval.KeyTable(t.Cols[:n], t)
		}
	}
	if d, ok := b.(*qval.Dict); ok {
		if n, isInt := qval.AsLong(a); isInt && n == 0 {
			flat, ok := qval.Unkey(d)
			if !ok {
				return nil, qval.Errorf("type")
			}
			return flat, nil
		}
	}
	if a.Len() < 0 {
		a = qval.Enlist(a)
	}
	if b.Len() < 0 {
		b = qval.Enlist(b)
	}
	return qval.NewDict(a, b), nil
}

// table sort/key/rename verbs

func builtinXasc(a, b qval.Value) (qval.Value, error)  { return sortTable(a, b, false) }
func builtinXdesc(a, b qval.Value) (qval.Value, error) { return sortTable(a, b, true) }

func sortTable(a, b qval.Value, desc bool) (qval.Value, error) {
	t, ok := qval.Unkey(b)
	if !ok {
		return nil, qval.Errorf("type")
	}
	var keys []string
	switch s := a.(type) {
	case qval.Symbol:
		keys = []string{string(s)}
	case qval.SymbolVec:
		keys = s
	default:
		return nil, qval.Errorf("type")
	}
	idx := make([]int, t.Len())
	for i := range idx {
		idx[i] = i
	}
	cols := make([]qval.Value, len(keys))
	for i, k := range keys {
		c, ok := t.Column(k)
		if !ok {
			return nil, qval.Errorf(k)
		}
		cols[i] = c
	}
	stableSortBy(idx, cols, desc)
	return t.Take(idx), nil
}

func stableSortBy(idx []int, cols []qval.Value, desc bool) {
	lessRow := func(a, b int) bool {
		for _, c := range cols {
			cmp := qval.Compare(qval.Index(c, a), qval.Index(c, b))
			if cmp != 0 {
				if desc {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	}
	stableSortFunc(idx, lessRow)
}

func builtinXkey(a, b qval.Value) (qval.Value, error) {
	t, ok := qval.Unkey(b)
	if !ok {
		return nil, qval.Errorf("type")
	}
	var keys []string
	switch s := a.(type) {
	case qval.Symbol:
		keys = []string{string(s)}
	case qval.SymbolVec:
		keys = s
	default:
		return nil, qval.Errorf("type")
	}
	return qval.KeyTable(keys, t)
}

// builtinXcol renames columns: `new1`new2 xcol t (positional).
func builtinXcol(a, b qval.Value) (qval.Value, error) {
	t, ok := qval.Unkey(b)
	if !ok {
		return nil, qval.Errorf("type")
	}
	switch s := a.(type) {
	case qval.SymbolVec:
		cols := append([]string(nil), t.Cols...)
		for i := 0; i < len(s) && i < len(cols); i++ {
			cols[i] = s[i]
		}
		return qval.NewTable(cols, append([]qval.Value(nil), t.Data...)), nil
	case *qval.Dict:
		olds, ok1 := s.Keys.(qval.SymbolVec)
		news, ok2 := s.Vals.(qval.SymbolVec)
		if !ok1 || !ok2 {
			return nil, qval.Errorf("type")
		}
		cols := append([]string(nil), t.Cols...)
		for i, o := range olds {
			for j, c := range cols {
				if c == o {
					cols[j] = news[i]
				}
			}
		}
		return qval.NewTable(cols, append([]qval.Value(nil), t.Data...)), nil
	default:
		return nil, qval.Errorf("type")
	}
}

// weighted and windowed statistics

func builtinWavg(w, x qval.Value) (qval.Value, error) {
	num, err := arith("*", w, x)
	if err != nil {
		return nil, err
	}
	ns, _, err := reduceNums(num, func(a, v float64) float64 { return a + v }, 0)
	if err != nil {
		return nil, err
	}
	ws, _, err := reduceNums(w, func(a, v float64) float64 { return a + v }, 0)
	if err != nil {
		return nil, err
	}
	if ws == 0 {
		return qval.Null(qval.KFloat), nil
	}
	return qval.Float(ns / ws), nil
}

func builtinWsum(w, x qval.Value) (qval.Value, error) {
	num, err := arith("*", w, x)
	if err != nil {
		return nil, err
	}
	return builtinSum(num)
}

func meanOf(v qval.Value) (float64, int, error) {
	s, c, err := reduceNums(v, func(a, x float64) float64 { return a + x }, 0)
	if err != nil {
		return 0, 0, err
	}
	if c == 0 {
		return 0, 0, nil
	}
	return s / float64(c), c, nil
}

func builtinCov(x, y qval.Value) (qval.Value, error) {
	mx, cx, err := meanOf(x)
	if err != nil {
		return nil, err
	}
	my, cy, err := meanOf(y)
	if err != nil {
		return nil, err
	}
	if cx == 0 || cy == 0 || x.Len() != y.Len() {
		return qval.Null(qval.KFloat), nil
	}
	var acc float64
	n := x.Len()
	for i := 0; i < n; i++ {
		xf, _, _ := scalarNum(qval.Index(x, i))
		yf, _, _ := scalarNum(qval.Index(y, i))
		acc += (xf - mx) * (yf - my)
	}
	return qval.Float(acc / float64(n)), nil
}

func builtinCor(x, y qval.Value) (qval.Value, error) {
	cv, err := builtinCov(x, y)
	if err != nil {
		return nil, err
	}
	dx, err := builtinDev(x)
	if err != nil {
		return nil, err
	}
	dy, err := builtinDev(y)
	if err != nil {
		return nil, err
	}
	c, _ := qval.AsFloat(cv)
	a, _ := qval.AsFloat(dx)
	b, _ := qval.AsFloat(dy)
	if a == 0 || b == 0 {
		return qval.Null(qval.KFloat), nil
	}
	return qval.Float(c / (a * b)), nil
}

func windowed(nV, x qval.Value, agg func(qval.Value) (qval.Value, error)) (qval.Value, error) {
	n, ok := qval.AsLong(nV)
	if !ok || n <= 0 {
		return nil, qval.Errorf("type")
	}
	ln := x.Len()
	if ln < 0 {
		return agg(x)
	}
	atoms := make([]qval.Value, ln)
	for i := 0; i < ln; i++ {
		lo := i - int(n) + 1
		if lo < 0 {
			lo = 0
		}
		idx := make([]int, i-lo+1)
		for k := range idx {
			idx[k] = lo + k
		}
		w := qval.TakeIndexes(x, idx)
		a, err := agg(w)
		if err != nil {
			return nil, err
		}
		atoms[i] = a
	}
	return qval.FromAtoms(atoms), nil
}

func builtinMavg(n, x qval.Value) (qval.Value, error) { return windowed(n, x, builtinAvg) }
func builtinMsum(n, x qval.Value) (qval.Value, error) { return windowed(n, x, builtinSum) }
func builtinMmax(n, x qval.Value) (qval.Value, error) { return windowed(n, x, builtinMax) }
func builtinMmin(n, x qval.Value) (qval.Value, error) { return windowed(n, x, builtinMin) }

// set operations

func builtinUnion(a, b qval.Value) (qval.Value, error) {
	j, err := joinValues(a, b)
	if err != nil {
		return nil, err
	}
	return builtinDistinct(j)
}

func builtinInter(a, b qval.Value) (qval.Value, error) {
	mask, err := builtinIn(a, b)
	if err != nil {
		return nil, err
	}
	idx, err := builtinWhere(mask)
	if err != nil {
		return nil, err
	}
	return indexApply(a, idx)
}

func builtinExcept(a, b qval.Value) (qval.Value, error) {
	mask, err := builtinIn(a, b)
	if err != nil {
		return nil, err
	}
	notMask, err := builtinNot(mask)
	if err != nil {
		return nil, err
	}
	idx, err := builtinWhere(notMask)
	if err != nil {
		return nil, err
	}
	return indexApply(a, idx)
}

func builtinCross(a, b qval.Value) (qval.Value, error) {
	la, lb := a.Len(), b.Len()
	if la < 0 {
		a, la = qval.Enlist(a), 1
	}
	if lb < 0 {
		b, lb = qval.Enlist(b), 1
	}
	out := make(qval.List, 0, la*lb)
	for i := 0; i < la; i++ {
		for j := 0; j < lb; j++ {
			out = append(out, qval.List{qval.Index(a, i), qval.Index(b, j)})
		}
	}
	return out, nil
}

// builtinBin implements x bin y: for each y, the index of the rightmost
// element of sorted x that is <= y; -1 when y is below all of x. This is
// the primitive beneath the as-of join.
func builtinBin(a, b qval.Value) (qval.Value, error) {
	n := a.Len()
	if n < 0 {
		return nil, qval.Errorf("type")
	}
	search := func(y qval.Value) int64 {
		lo, hi := 0, n // find rightmost index with a[i] <= y
		for lo < hi {
			mid := (lo + hi) / 2
			if qval.Compare(qval.Index(a, mid), y) <= 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int64(lo - 1)
	}
	if b.Len() < 0 {
		return qval.Long(search(b)), nil
	}
	out := make(qval.LongVec, b.Len())
	for i := range out {
		out[i] = search(qval.Index(b, i))
	}
	return out, nil
}

func builtinSublist(a, b qval.Value) (qval.Value, error) {
	if a.Len() == 2 {
		lo, _ := qval.AsLong(qval.Index(a, 0))
		cnt, _ := qval.AsLong(qval.Index(a, 1))
		idx := make([]int, 0, cnt)
		for i := int64(0); i < cnt && int(lo+i) < b.Len(); i++ {
			idx = append(idx, int(lo+i))
		}
		return qval.TakeIndexes(b, idx), nil
	}
	n, ok := qval.AsLong(a)
	if !ok {
		return nil, qval.Errorf("type")
	}
	ln := b.Len()
	if int(n) > ln {
		n = int64(ln)
	}
	if n < 0 && int(-n) > ln {
		n = int64(-ln)
	}
	return builtinTake(qval.Long(n), b)
}

// builtinVs splits a string by a separator; builtinSv joins.
func builtinVs(a, b qval.Value) (qval.Value, error) {
	sep, ok := a.(qval.CharVec)
	sepStr := ""
	if ok {
		sepStr = string(sep)
	} else if c, ok := a.(qval.Char); ok {
		sepStr = string(rune(c))
	} else {
		return nil, qval.Errorf("type")
	}
	s, ok := b.(qval.CharVec)
	if !ok {
		return nil, qval.Errorf("type")
	}
	parts := strings.Split(string(s), sepStr)
	out := make(qval.List, len(parts))
	for i, p := range parts {
		out[i] = qval.CharVec(p)
	}
	return out, nil
}

func builtinSv(a, b qval.Value) (qval.Value, error) {
	sepStr := ""
	switch s := a.(type) {
	case qval.CharVec:
		sepStr = string(s)
	case qval.Char:
		sepStr = string(rune(s))
	default:
		return nil, qval.Errorf("type")
	}
	l, ok := b.(qval.List)
	if !ok {
		return nil, qval.Errorf("type")
	}
	parts := make([]string, len(l))
	for i, p := range l {
		cv, ok := p.(qval.CharVec)
		if !ok {
			return nil, qval.Errorf("type")
		}
		parts[i] = string(cv)
	}
	return qval.CharVec(strings.Join(parts, sepStr)), nil
}

// stableSortFunc stably sorts an index slice with the given row comparator.
func stableSortFunc(idx []int, less func(a, b int) bool) {
	sort.SliceStable(idx, func(i, j int) bool { return less(idx[i], idx[j]) })
}
