package interp

import (
	"hyperq/internal/qlang/ast"
	"hyperq/internal/qlang/parse"
	"hyperq/internal/qlang/qval"
)

// colEnv is the environment used when evaluating expressions inside a q-sql
// template: column names resolve to (filtered) column vectors first, then
// fall through to the enclosing scope.
type colEnv struct {
	table *qval.Table
	rows  []int // nil means all rows, in order
}

func (c *colEnv) column(name string) (qval.Value, bool) {
	col, ok := c.table.Column(name)
	if !ok {
		return nil, false
	}
	if c.rows == nil {
		return col, true
	}
	return qval.TakeIndexes(col, c.rows), true
}

// evalTemplate executes select/exec/update/delete against the interpreter's
// in-memory tables.
func (in *Interp) evalTemplate(t *ast.SQLTemplate, e *env) (qval.Value, error) {
	fromV, err := in.eval(t.From, e)
	if err != nil {
		return nil, err
	}
	table, ok := qval.Unkey(fromV)
	if !ok {
		return nil, qval.Errorf("type: from clause is not a table")
	}
	// Where: conditions apply in sequence, each over the survivors of the
	// previous one (q semantics).
	rows := make([]int, table.Len())
	for i := range rows {
		rows[i] = i
	}
	for _, cond := range t.Where {
		rows, err = in.filterRows(table, rows, cond, e)
		if err != nil {
			return nil, err
		}
	}
	switch t.Kind {
	case ast.Select, ast.Exec:
		return in.evalSelect(t, table, rows, e)
	case ast.Update:
		return in.evalUpdate(t, table, rows, e)
	case ast.Delete:
		return in.evalDelete(t, table, rows, e)
	default:
		return nil, qval.Errorf("nyi template")
	}
}

// filterRows evaluates cond over the rows-restricted table and keeps the
// rows where it is true.
func (in *Interp) filterRows(table *qval.Table, rows []int, cond ast.Node, e *env) ([]int, error) {
	ce := &colEnv{table: table, rows: rows}
	v, err := in.evalInCols(cond, ce, e)
	if err != nil {
		return nil, err
	}
	mask, ok := boolMask(v)
	if !ok {
		return nil, qval.Errorf("type: where clause must be boolean")
	}
	if v.Len() < 0 { // scalar condition applies to all or none
		if mask[0] {
			return rows, nil
		}
		return []int{}, nil
	}
	if len(mask) != len(rows) {
		return nil, qval.Errorf("length")
	}
	// non-nil even when empty: a nil row set means "all rows" to colEnv
	out := make([]int, 0, len(rows))
	for i, keep := range mask {
		if keep {
			out = append(out, rows[i])
		}
	}
	return out, nil
}

// evalInCols evaluates an expression where variable references resolve to
// table columns first. It is implemented by swapping a column-scope into the
// environment chain.
func (in *Interp) evalInCols(n ast.Node, ce *colEnv, e *env) (qval.Value, error) {
	scope := &env{in: in, vars: map[string]qval.Value{}, parent: e}
	// expose columns lazily by pre-binding the names; the columns are
	// materialized once per reference
	for _, c := range ce.table.Cols {
		col, _ := ce.column(c)
		scope.vars[c] = col
	}
	// 'i' is the virtual row-index column in q
	if _, shadow := scope.vars["i"]; !shadow {
		idx := make(qval.LongVec, len(ce.rowsOrAll()))
		for k, r := range ce.rowsOrAll() {
			idx[k] = int64(r)
		}
		scope.vars["i"] = idx
	}
	return in.eval(n, scope)
}

func (c *colEnv) rowsOrAll() []int {
	if c.rows != nil {
		return c.rows
	}
	all := make([]int, c.table.Len())
	for i := range all {
		all[i] = i
	}
	return all
}

// evalSelect handles select/exec with optional by grouping.
func (in *Interp) evalSelect(t *ast.SQLTemplate, table *qval.Table, rows []int, e *env) (qval.Value, error) {
	if len(t.By) > 0 {
		return in.evalSelectBy(t, table, rows, e)
	}
	ce := &colEnv{table: table, rows: rows}
	// no columns: all columns, filtered
	if len(t.Cols) == 0 {
		data := make([]qval.Value, len(table.Cols))
		for i := range table.Cols {
			data[i] = qval.TakeIndexes(table.Data[i], rows)
		}
		res := qval.NewTable(append([]string(nil), table.Cols...), data)
		if t.Kind == ast.Exec {
			return res, nil
		}
		return res, nil
	}
	names := make([]string, len(t.Cols))
	vals := make([]qval.Value, len(t.Cols))
	maxLen := 0
	anyVec := false
	for i, spec := range t.Cols {
		v, err := in.evalInCols(spec.Expr, ce, e)
		if err != nil {
			return nil, err
		}
		name := spec.Name
		if name == "" {
			name = parse.InferColName(spec.Expr)
		}
		names[i] = name
		vals[i] = v
		if v.Len() >= 0 {
			anyVec = true
			if v.Len() > maxLen {
				maxLen = v.Len()
			}
		}
	}
	// exec of a single column returns the bare vector/atom
	if t.Kind == ast.Exec && len(vals) == 1 {
		return vals[0], nil
	}
	if !anyVec {
		maxLen = 1
	}
	// broadcast atoms to the row count
	for i, v := range vals {
		if v.Len() < 0 {
			idx := make([]int, maxLen)
			vals[i] = qval.TakeIndexes(qval.Enlist(v), idx)
		} else if v.Len() != maxLen {
			return nil, qval.Errorf("length")
		}
	}
	if t.Kind == ast.Exec {
		return qval.NewDict(qval.SymbolVec(names), qval.List(vals)), nil
	}
	return qval.NewTable(names, vals), nil
}

// evalSelectBy implements grouped select: the result is a keyed table from
// by-columns to aggregated columns, as in q.
func (in *Interp) evalSelectBy(t *ast.SQLTemplate, table *qval.Table, rows []int, e *env) (qval.Value, error) {
	ce := &colEnv{table: table, rows: rows}
	// evaluate by expressions over filtered rows
	byNames := make([]string, len(t.By))
	byVals := make([]qval.Value, len(t.By))
	for i, spec := range t.By {
		v, err := in.evalInCols(spec.Expr, ce, e)
		if err != nil {
			return nil, err
		}
		if v.Len() < 0 {
			idx := make([]int, len(rows))
			v = qval.TakeIndexes(qval.Enlist(v), idx)
		}
		name := spec.Name
		if name == "" {
			name = parse.InferColName(spec.Expr)
		}
		byNames[i] = name
		byVals[i] = v
	}
	// group rows by the tuple of by values (first-appearance order, as q)
	type group struct {
		rep  []qval.Value
		rows []int
	}
	var order []string
	groups := map[string]*group{}
	for k, r := range rows {
		key := ""
		rep := make([]qval.Value, len(byVals))
		for j, bv := range byVals {
			x := qval.Index(bv, k)
			rep[j] = x
			key += x.String() + "|"
		}
		g, ok := groups[key]
		if !ok {
			g = &group{rep: rep}
			groups[key] = g
			order = append(order, key)
		}
		g.rows = append(g.rows, r)
	}
	// aggregate each column spec per group
	specs := t.Cols
	if len(specs) == 0 {
		// q: select by c from t keeps last row per group of remaining cols
		for _, c := range table.Cols {
			if !containsName(byNames, c) {
				specs = append(specs, ast.ColSpec{Name: c, Expr: &ast.Apply{
					Fn:   &ast.Var{Name: "last"},
					Args: []ast.Node{&ast.Var{Name: c}},
				}})
			}
		}
	}
	aggNames := make([]string, len(specs))
	for i, spec := range specs {
		// names exist even when the filter leaves zero groups
		aggNames[i] = spec.Name
		if aggNames[i] == "" {
			aggNames[i] = parse.InferColName(spec.Expr)
		}
	}
	aggCols := make([][]qval.Value, len(specs))
	for i := range aggCols {
		aggCols[i] = make([]qval.Value, 0, len(order))
	}
	for _, key := range order {
		g := groups[key]
		gce := &colEnv{table: table, rows: g.rows}
		for i, spec := range specs {
			v, err := in.evalInCols(spec.Expr, gce, e)
			if err != nil {
				return nil, err
			}
			if v.Len() >= 0 && v.Len() == 1 {
				v = qval.Index(v, 0)
			}
			aggCols[i] = append(aggCols[i], v)
		}
	}
	keyData := make([]qval.Value, len(byNames))
	for j := range byNames {
		reps := make([]qval.Value, len(order))
		for i, key := range order {
			reps[i] = groups[key].rep[j]
		}
		keyData[j] = qval.FromAtoms(reps)
	}
	valData := make([]qval.Value, len(aggNames))
	for i := range aggNames {
		valData[i] = qval.FromAtoms(aggCols[i])
	}
	keyTable := qval.NewTable(byNames, keyData)
	valTable := qval.NewTable(aggNames, valData)
	if t.Kind == ast.Exec {
		if len(aggNames) == 1 {
			return qval.NewDict(keyData[0], valData[0]), nil
		}
	}
	return &qval.Dict{Keys: keyTable, Vals: valTable}, nil
}

func containsName(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// evalUpdate replaces columns in the query output; per q semantics this does
// not modify persisted state (paper §2.2) unless reassigned.
func (in *Interp) evalUpdate(t *ast.SQLTemplate, table *qval.Table, rows []int, e *env) (qval.Value, error) {
	cols := append([]string(nil), table.Cols...)
	data := append([]qval.Value(nil), table.Data...)
	out := qval.NewTable(cols, data)
	ce := &colEnv{table: table, rows: rows}
	for _, spec := range t.Cols {
		v, err := in.evalInCols(spec.Expr, ce, e)
		if err != nil {
			return nil, err
		}
		name := spec.Name
		if name == "" {
			name = parse.InferColName(spec.Expr)
		}
		full := table.Len()
		// scatter the updated values back into a copy of the column
		var newCol qval.Value
		if old, ok := out.Column(name); ok {
			newCol = qval.TakeIndexes(old, seq(full))
		} else {
			// new column: start with nulls of the value type
			nullAtom := qval.Null(v.Type())
			idx := make([]int, full)
			for i := range idx {
				idx[i] = 1 // out of range of a 1-element vector -> null
			}
			newCol = qval.TakeIndexes(qval.Enlist(nullAtom), idx)
		}
		atoms := make([]qval.Value, full)
		for i := 0; i < full; i++ {
			atoms[i] = qval.Index(newCol, i)
		}
		for k, r := range rows {
			if v.Len() < 0 {
				atoms[r] = v
			} else {
				atoms[r] = qval.Index(v, k)
			}
		}
		col := qval.FromAtoms(atoms)
		if j := out.ColumnIndex(name); j >= 0 {
			out.Data[j] = col
		} else {
			out.Cols = append(out.Cols, name)
			out.Data = append(out.Data, col)
		}
	}
	return out, nil
}

// evalDelete removes rows (with where) or columns (with names).
func (in *Interp) evalDelete(t *ast.SQLTemplate, table *qval.Table, rows []int, e *env) (qval.Value, error) {
	if len(t.Cols) > 0 && len(t.Where) == 0 {
		names := make([]string, 0, len(t.Cols))
		for _, spec := range t.Cols {
			if v, ok := spec.Expr.(*ast.Var); ok {
				names = append(names, v.Name)
			} else {
				return nil, qval.Errorf("type: delete expects column names")
			}
		}
		return dropCols(table, names)
	}
	// delete rows matched by where: keep complement
	matched := map[int]bool{}
	for _, r := range rows {
		matched[r] = true
	}
	if len(t.Where) == 0 {
		// delete from t with no where: empty table
		matched = nil
		return table.Take(nil), nil
	}
	var keep []int
	for i := 0; i < table.Len(); i++ {
		if !matched[i] {
			keep = append(keep, i)
		}
	}
	return table.Take(keep), nil
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
