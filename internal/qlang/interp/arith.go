// Package interp implements an in-memory Q interpreter that stands in for
// the kdb+ server in this reproduction. It follows kdb+'s execution model:
// the server loop executes one request at a time (concurrent requests are
// queued and run serially, paper §2.2), values have ordered-list semantics,
// comparison uses two-valued logic, and expressions evaluate strictly
// right-to-left. The interpreter is the reference implementation for the
// side-by-side testing framework (paper §5) and the "real-time database"
// baseline in the benchmarks.
package interp

import (
	"math"

	"hyperq/internal/qlang/qval"
)

// numKind ranks types for arithmetic promotion.
func numRank(t qval.Type) int {
	if t < 0 {
		t = -t
	}
	switch t {
	case qval.KBool:
		return 1
	case qval.KByte:
		return 2
	case qval.KShort:
		return 3
	case qval.KInt:
		return 4
	case qval.KLong:
		return 5
	case qval.KReal:
		return 6
	case qval.KFloat, qval.KDatetime:
		return 7
	default:
		return 0
	}
}

func isIntegral(t qval.Type) bool {
	r := numRank(t)
	return r >= 1 && r <= 5
}

// scalarNum extracts a float magnitude and a nullness flag.
func scalarNum(v qval.Value) (float64, bool, bool) {
	if qval.IsNull(v) {
		return 0, true, true
	}
	f, ok := qval.AsFloat(v)
	return f, false, ok
}

// arithOp is a scalar arithmetic kernel operating on float magnitudes; nulls
// propagate before the kernel is consulted.
type arithOp func(a, b float64) float64

var arithKernels = map[string]arithOp{
	"+": func(a, b float64) float64 { return a + b },
	"-": func(a, b float64) float64 { return a - b },
	"*": func(a, b float64) float64 { return a * b },
	"%": func(a, b float64) float64 { return a / b }, // Q's % is divide
	"&": math.Min,
	"|": math.Max,
	"mod": func(a, b float64) float64 {
		if b == 0 {
			return math.NaN()
		}
		m := math.Mod(a, b)
		if m != 0 && (m < 0) != (b < 0) {
			m += b
		}
		return m
	},
	"div": func(a, b float64) float64 { return math.Floor(a / b) },
	"xbar": func(bucket, x float64) float64 {
		if bucket == 0 {
			return x
		}
		return bucket * math.Floor(x/bucket)
	},
}

// resultType determines the type of an arithmetic result given operand
// types. Q rules approximated: % always yields float; integral ops keep the
// wider integral type; any float operand yields float; temporal types
// combine with numerics to stay temporal.
func resultType(op string, ta, tb qval.Type) qval.Type {
	if ta < 0 {
		ta = -ta
	}
	if tb < 0 {
		tb = -tb
	}
	if op == "%" {
		return qval.KFloat
	}
	if qval.IsTemporal(ta) && !qval.IsTemporal(tb) {
		return ta
	}
	if qval.IsTemporal(tb) && !qval.IsTemporal(ta) {
		return tb
	}
	if qval.IsTemporal(ta) && qval.IsTemporal(tb) {
		if op == "-" {
			return qval.KTimespan // difference of instants is a span
		}
		return ta
	}
	ra, rb := numRank(ta), numRank(tb)
	r := ra
	if rb > r {
		r = rb
	}
	switch r {
	case 1, 2, 3, 4, 5:
		if op == "mod" || op == "div" || op == "+" || op == "-" || op == "*" || op == "&" || op == "|" || op == "xbar" {
			return qval.KLong
		}
		return qval.KLong
	case 6:
		return qval.KReal
	default:
		return qval.KFloat
	}
}

// packNum converts a float magnitude into an atom of type t, mapping the
// null flag to the type's null.
func packNum(t qval.Type, f float64, isNull bool) qval.Value {
	if t < 0 {
		t = -t
	}
	if isNull {
		return qval.Null(t)
	}
	switch t {
	case qval.KBool:
		return qval.Bool(f != 0)
	case qval.KByte:
		return qval.Byte(byte(int64(f)))
	case qval.KShort:
		return qval.Short(int16(f))
	case qval.KInt:
		return qval.Int(int32(f))
	case qval.KLong:
		return qval.Long(int64(f))
	case qval.KReal:
		if math.IsNaN(f) {
			return qval.Null(qval.KReal)
		}
		return qval.Real(float32(f))
	case qval.KFloat:
		return qval.Float(f)
	case qval.KDatetime:
		return qval.Datetime(f)
	case qval.KTimestamp, qval.KMonth, qval.KDate, qval.KTimespan, qval.KMinute, qval.KSecond, qval.KTime:
		if math.IsNaN(f) {
			return qval.Temporal{T: t, V: qval.NullLong}
		}
		return qval.Temporal{T: t, V: int64(f)}
	default:
		return qval.Float(f)
	}
}

// arith applies a dyadic arithmetic operator elementwise with Q's
// atom-extension rules: atom op atom, atom op vector, vector op atom, and
// vector op vector (equal lengths; mismatch raises 'length).
func arith(op string, a, b qval.Value) (qval.Value, error) {
	kern, ok := arithKernels[op]
	if !ok {
		return nil, qval.Errorf("nyi op " + op)
	}
	la, lb := a.Len(), b.Len()
	// table/dict operands apply columnwise / valuewise
	if ta, ok := a.(*qval.Table); ok {
		return nil, qval.Errorf("type: cannot " + op + " a table (" + ta.String() + ")")
	}
	rt := resultType(op, a.Type(), b.Type())
	if la < 0 && lb < 0 {
		af, an, aok := scalarNum(a)
		bf, bn, bok := scalarNum(b)
		if !aok || !bok {
			return nil, qval.Errorf("type")
		}
		return packNum(rt, apply2(kern, af, bf, an || bn), an || bn), nil
	}
	n := la
	if la < 0 {
		n = lb
	}
	if la >= 0 && lb >= 0 && la != lb {
		return nil, qval.Errorf("length")
	}
	// fast path: long vectors with long/atom operand and integral result
	if out, ok := fastLongArith(op, a, b, n); ok {
		return out, nil
	}
	atoms := make([]qval.Value, n)
	for i := 0; i < n; i++ {
		av := qval.Index(a, i)
		bv := qval.Index(b, i)
		af, an, aok := scalarNum(av)
		bf, bn, bok := scalarNum(bv)
		if !aok || !bok {
			return nil, qval.Errorf("type")
		}
		isN := an || bn
		atoms[i] = packNum(rt, apply2(kern, af, bf, isN), isN)
	}
	return qval.FromAtoms(atoms), nil
}

func apply2(k arithOp, a, b float64, isNull bool) float64 {
	if isNull {
		return math.NaN()
	}
	return k(a, b)
}

// fastLongArith handles the hot long-vector cases without boxing.
func fastLongArith(op string, a, b qval.Value, n int) (qval.Value, bool) {
	av, aIsVec := a.(qval.LongVec)
	bv, bIsVec := b.(qval.LongVec)
	aa, aIsAtom := a.(qval.Long)
	ba, bIsAtom := b.(qval.Long)
	if op != "+" && op != "-" && op != "*" {
		return nil, false
	}
	var f func(x, y int64) int64
	switch op {
	case "+":
		f = func(x, y int64) int64 { return x + y }
	case "-":
		f = func(x, y int64) int64 { return x - y }
	case "*":
		f = func(x, y int64) int64 { return x * y }
	}
	out := make(qval.LongVec, n)
	switch {
	case aIsVec && bIsVec:
		for i := range out {
			if av[i] == qval.NullLong || bv[i] == qval.NullLong {
				out[i] = qval.NullLong
			} else {
				out[i] = f(av[i], bv[i])
			}
		}
	case aIsVec && bIsAtom:
		if int64(ba) == qval.NullLong {
			for i := range out {
				out[i] = qval.NullLong
			}
			return out, true
		}
		for i := range out {
			if av[i] == qval.NullLong {
				out[i] = qval.NullLong
			} else {
				out[i] = f(av[i], int64(ba))
			}
		}
	case aIsAtom && bIsVec:
		if int64(aa) == qval.NullLong {
			for i := range out {
				out[i] = qval.NullLong
			}
			return out, true
		}
		for i := range out {
			if bv[i] == qval.NullLong {
				out[i] = qval.NullLong
			} else {
				out[i] = f(int64(aa), bv[i])
			}
		}
	default:
		return nil, false
	}
	return out, true
}

// compareValues applies a comparison operator elementwise with Q's
// two-valued logic: = on two nulls is true (paper §2.2).
func compareValues(op string, a, b qval.Value) (qval.Value, error) {
	la, lb := a.Len(), b.Len()
	cmp := func(x, y qval.Value) bool {
		switch op {
		case "=":
			return qval.EqualValues(x, y)
		case "<>":
			return !qval.EqualValues(x, y)
		case "<":
			return qval.Compare(x, y) < 0
		case ">":
			return qval.Compare(x, y) > 0
		case "<=":
			return qval.Compare(x, y) <= 0
		case ">=":
			return qval.Compare(x, y) >= 0
		default:
			return false
		}
	}
	if la < 0 && lb < 0 {
		return qval.Bool(cmp(a, b)), nil
	}
	n := la
	if la < 0 {
		n = lb
	}
	if la >= 0 && lb >= 0 && la != lb {
		return nil, qval.Errorf("length")
	}
	out := make(qval.BoolVec, n)
	for i := 0; i < n; i++ {
		out[i] = cmp(qval.Index(a, i), qval.Index(b, i))
	}
	return out, nil
}

// boolOp applies and/or (also & | on booleans) elementwise.
func boolMask(v qval.Value) ([]bool, bool) {
	switch x := v.(type) {
	case qval.Bool:
		return []bool{bool(x)}, true
	case qval.BoolVec:
		return x, true
	default:
		return nil, false
	}
}
