package interp

import (
	"testing"

	"hyperq/internal/qlang/qval"
)

func ev(t *testing.T, in *Interp, src string) qval.Value {
	t.Helper()
	v, err := in.Eval(src)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func evErr(t *testing.T, in *Interp, src string) error {
	t.Helper()
	_, err := in.Eval(src)
	if err == nil {
		t.Fatalf("Eval(%q) should fail", src)
	}
	return err
}

func wantEq(t *testing.T, got, want qval.Value) {
	t.Helper()
	if !qval.EqualValues(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestArithmeticRightToLeft(t *testing.T) {
	in := New()
	// 2*3+4 = 14 in Q (no precedence, right-to-left)
	wantEq(t, ev(t, in, "2*3+4"), qval.Long(14))
	wantEq(t, ev(t, in, "10-2-3"), qval.Long(11)) // 10-(2-3)
	wantEq(t, ev(t, in, "6%3"), qval.Float(2))    // % is divide
}

func TestVectorArithmetic(t *testing.T) {
	in := New()
	wantEq(t, ev(t, in, "1 2 3+10"), qval.LongVec{11, 12, 13})
	wantEq(t, ev(t, in, "10+1 2 3"), qval.LongVec{11, 12, 13})
	wantEq(t, ev(t, in, "1 2 3*1 2 3"), qval.LongVec{1, 4, 9})
	if err := evErr(t, in, "1 2+1 2 3"); err.Error() != "'length" {
		t.Errorf("length error, got %v", err)
	}
}

func TestNullPropagationInArithmetic(t *testing.T) {
	in := New()
	got := ev(t, in, "1 0N 3+1")
	lv := got.(qval.LongVec)
	if lv[0] != 2 || lv[1] != qval.NullLong || lv[2] != 4 {
		t.Fatalf("null propagation = %v", lv)
	}
}

func TestTwoValuedLogicEquality(t *testing.T) {
	in := New()
	// paper §2.2: two nulls compare equal in Q
	wantEq(t, ev(t, in, "0N=0N"), qval.Bool(true))
	wantEq(t, ev(t, in, "0n=0n"), qval.Bool(true))
	wantEq(t, ev(t, in, "1=0N"), qval.Bool(false))
}

func TestAssignmentAndGlobals(t *testing.T) {
	in := New()
	ev(t, in, "x:5")
	wantEq(t, ev(t, in, "x+1"), qval.Long(6))
	// globals persist across Eval calls (kdb+ server variables)
	v, ok := in.Global("x")
	if !ok {
		t.Fatal("x should be global")
	}
	wantEq(t, v, qval.Long(5))
}

func TestDynamicRetyping(t *testing.T) {
	// paper §3.2.1: x may be rebound to a scalar, a list, a table
	in := New()
	wantEq(t, ev(t, in, "x:1; x"), qval.Long(1))
	wantEq(t, ev(t, in, "x:1 2 3; x"), qval.LongVec{1, 2, 3})
	ev(t, in, "trades:([] Sym:`a`b; Price:1 2f); x:select from trades")
	if v, _ := in.Global("x"); v.Type() != qval.KTable {
		t.Fatalf("x should now be a table, got type %d", v.Type())
	}
}

func TestMonadicBuiltins(t *testing.T) {
	in := New()
	wantEq(t, ev(t, in, "count 1 2 3"), qval.Long(3))
	wantEq(t, ev(t, in, "sum 1 2 3"), qval.Long(6))
	wantEq(t, ev(t, in, "avg 1 2 3"), qval.Float(2))
	wantEq(t, ev(t, in, "max 3 1 2"), qval.Long(3))
	wantEq(t, ev(t, in, "min 3 1 2"), qval.Long(1))
	wantEq(t, ev(t, in, "first 7 8 9"), qval.Long(7))
	wantEq(t, ev(t, in, "last 7 8 9"), qval.Long(9))
	wantEq(t, ev(t, in, "til 4"), qval.LongVec{0, 1, 2, 3})
	wantEq(t, ev(t, in, "reverse 1 2 3"), qval.LongVec{3, 2, 1})
	wantEq(t, ev(t, in, "distinct 1 2 1 3 2"), qval.LongVec{1, 2, 3})
	wantEq(t, ev(t, in, "where 101b"), qval.LongVec{0, 2})
	wantEq(t, ev(t, in, "abs -3"), qval.Long(3))
	wantEq(t, ev(t, in, "neg 3"), qval.Long(-3))
	wantEq(t, ev(t, in, "not 0"), qval.Bool(true))
	wantEq(t, ev(t, in, "med 1 2 3 4"), qval.Float(2.5))
	wantEq(t, ev(t, in, "asc 3 1 2"), qval.LongVec{1, 2, 3})
	wantEq(t, ev(t, in, "desc 3 1 2"), qval.LongVec{3, 2, 1})
	wantEq(t, ev(t, in, "iasc 30 10 20"), qval.LongVec{1, 2, 0})
	wantEq(t, ev(t, in, "sums 1 2 3"), qval.LongVec{1, 3, 6})
	wantEq(t, ev(t, in, "deltas 1 3 6"), qval.LongVec{1, 2, 3})
	wantEq(t, ev(t, in, "enlist 5"), qval.LongVec{5})
}

func TestAggregatesSkipNulls(t *testing.T) {
	in := New()
	wantEq(t, ev(t, in, "sum 1 0N 3"), qval.Long(4))
	wantEq(t, ev(t, in, "avg 1 0N 3"), qval.Float(2))
	wantEq(t, ev(t, in, "max 1 0N 3"), qval.Long(3))
	wantEq(t, ev(t, in, "count 1 0N 3"), qval.Long(3)) // count does not skip
}

func TestDyadicBuiltins(t *testing.T) {
	in := New()
	wantEq(t, ev(t, in, "2#1 2 3"), qval.LongVec{1, 2})
	wantEq(t, ev(t, in, "-2#1 2 3"), qval.LongVec{2, 3})
	wantEq(t, ev(t, in, "5#1 2"), qval.LongVec{1, 2, 1, 2, 1}) // cycling take
	wantEq(t, ev(t, in, "1_1 2 3"), qval.LongVec{2, 3})
	wantEq(t, ev(t, in, "-1_1 2 3"), qval.LongVec{1, 2})
	wantEq(t, ev(t, in, "1 2 3?2"), qval.Long(1))
	wantEq(t, ev(t, in, "1 2 3?9"), qval.Long(3)) // missing -> len
	wantEq(t, ev(t, in, "2 in 1 2 3"), qval.Bool(true))
	wantEq(t, ev(t, in, "1 5 in 1 2 3"), qval.BoolVec{true, false})
	wantEq(t, ev(t, in, "3 within 1 5"), qval.Bool(true))
	wantEq(t, ev(t, in, "7 mod 3"), qval.Long(1))
	wantEq(t, ev(t, in, "7 div 3"), qval.Long(2))
	wantEq(t, ev(t, in, "5 xbar 12"), qval.Long(10))
	wantEq(t, ev(t, in, "0^1 0N 3"), qval.LongVec{1, 0, 3}) // fill
	wantEq(t, ev(t, in, "1 2,3 4"), qval.LongVec{1, 2, 3, 4})
	wantEq(t, ev(t, in, "`sym in `a`sym`b"), qval.Bool(true))
}

func TestMatchOperator(t *testing.T) {
	in := New()
	wantEq(t, ev(t, in, "1 2 3~1 2 3"), qval.Bool(true))
	wantEq(t, ev(t, in, "1 2~1 2 3"), qval.Bool(false))
	wantEq(t, ev(t, in, "1~1f"), qval.Bool(false)) // match is type-strict
}

func TestLikeGlobbing(t *testing.T) {
	in := New()
	wantEq(t, ev(t, in, "`GOOG like \"GO*\""), qval.Bool(true))
	wantEq(t, ev(t, in, "`IBM like \"GO*\""), qval.Bool(false))
	wantEq(t, ev(t, in, "`GOOG`IBM like \"?O*\""), qval.BoolVec{true, false})
}

func TestCast(t *testing.T) {
	in := New()
	wantEq(t, ev(t, in, "`float$1 2 3"), qval.FloatVec{1, 2, 3})
	wantEq(t, ev(t, in, "`long$2.9"), qval.Long(2))
	wantEq(t, ev(t, in, "`symbol$\"abc\""), qval.Symbol("abc"))
}

func TestDictOperations(t *testing.T) {
	in := New()
	wantEq(t, ev(t, in, "(`a`b!1 2)[`b]"), qval.Long(2))
	wantEq(t, ev(t, in, "key `a`b!1 2"), qval.SymbolVec{"a", "b"})
	wantEq(t, ev(t, in, "value `a`b!1 2"), qval.LongVec{1, 2})
	d := ev(t, in, "d:`a`b!1 2; d`a")
	wantEq(t, d, qval.Long(1))
}

func TestTableConstructionViaFlip(t *testing.T) {
	in := New()
	v := ev(t, in, "flip `s`p!(`a`b;1 2f)")
	tab, ok := v.(*qval.Table)
	if !ok {
		t.Fatalf("flip = %T", v)
	}
	if tab.Len() != 2 || tab.NumCols() != 2 {
		t.Fatalf("table shape %dx%d", tab.Len(), tab.NumCols())
	}
	wantEq(t, ev(t, in, "cols flip `s`p!(`a`b;1 2f)"), qval.SymbolVec{"s", "p"})
}

func setupTrades(t *testing.T, in *Interp) {
	t.Helper()
	trades := qval.NewTable(
		[]string{"Symbol", "Time", "Price", "Size"},
		[]qval.Value{
			qval.SymbolVec{"GOOG", "IBM", "GOOG", "IBM", "GOOG"},
			qval.TemporalVec{T: qval.KTime, V: []int64{34200000, 34201000, 34202000, 34203000, 34204000}},
			qval.FloatVec{100, 150, 101, 151, 102},
			qval.LongVec{10, 20, 30, 40, 50},
		})
	in.SetGlobal("trades", trades)
}

func TestSelectBasic(t *testing.T) {
	in := New()
	setupTrades(t, in)
	v := ev(t, in, "select from trades")
	tab := v.(*qval.Table)
	if tab.Len() != 5 || tab.NumCols() != 4 {
		t.Fatalf("shape %dx%d", tab.Len(), tab.NumCols())
	}
}

func TestSelectColumnsAndWhere(t *testing.T) {
	in := New()
	setupTrades(t, in)
	v := ev(t, in, "select Price from trades where Symbol=`GOOG")
	tab := v.(*qval.Table)
	if tab.Len() != 3 || tab.NumCols() != 1 {
		t.Fatalf("shape %dx%d", tab.Len(), tab.NumCols())
	}
	p, _ := tab.Column("Price")
	wantEq(t, p, qval.FloatVec{100, 101, 102})
}

func TestSelectSequentialWhereConditions(t *testing.T) {
	in := New()
	setupTrades(t, in)
	// conditions apply in sequence: second runs on survivors of first
	v := ev(t, in, "select from trades where Symbol=`GOOG, Price>100.5")
	tab := v.(*qval.Table)
	if tab.Len() != 2 {
		t.Fatalf("rows = %d", tab.Len())
	}
}

func TestSelectAggregate(t *testing.T) {
	in := New()
	setupTrades(t, in)
	v := ev(t, in, "select max Price from trades")
	tab := v.(*qval.Table)
	if tab.Len() != 1 {
		t.Fatalf("aggregate select rows = %d", tab.Len())
	}
	p, _ := tab.Column("Price")
	wantEq(t, qval.Index(p, 0), qval.Float(151))
}

func TestSelectByGrouping(t *testing.T) {
	in := New()
	setupTrades(t, in)
	v := ev(t, in, "select mx:max Price, tot:sum Size by Symbol from trades")
	kd, ok := v.(*qval.Dict)
	if !ok || !kd.IsKeyedTable() {
		t.Fatalf("grouped select = %T", v)
	}
	keys := kd.Keys.(*qval.Table)
	vals := kd.Vals.(*qval.Table)
	if keys.Len() != 2 {
		t.Fatalf("groups = %d", keys.Len())
	}
	sym, _ := keys.Column("Symbol")
	mx, _ := vals.Column("mx")
	tot, _ := vals.Column("tot")
	// first-appearance order: GOOG then IBM
	wantEq(t, sym, qval.SymbolVec{"GOOG", "IBM"})
	wantEq(t, mx, qval.FloatVec{102, 151})
	wantEq(t, tot, qval.LongVec{90, 60})
}

func TestExecReturnsVector(t *testing.T) {
	in := New()
	setupTrades(t, in)
	v := ev(t, in, "exec Price from trades where Symbol=`IBM")
	wantEq(t, v, qval.FloatVec{150, 151})
}

func TestUpdateDoesNotPersist(t *testing.T) {
	in := New()
	setupTrades(t, in)
	// paper §2.2: UPDATE replaces columns in the query output only
	v := ev(t, in, "update Price:2*Price from trades where Symbol=`IBM")
	tab := v.(*qval.Table)
	p, _ := tab.Column("Price")
	wantEq(t, p, qval.FloatVec{100, 300, 101, 302, 102})
	// original table unchanged
	orig, _ := in.Global("trades")
	op, _ := orig.(*qval.Table).Column("Price")
	wantEq(t, op, qval.FloatVec{100, 150, 101, 151, 102})
}

func TestUpdateAddsNewColumn(t *testing.T) {
	in := New()
	setupTrades(t, in)
	v := ev(t, in, "update Notional:Price*Size from trades")
	tab := v.(*qval.Table)
	n, ok := tab.Column("Notional")
	if !ok {
		t.Fatal("Notional column missing")
	}
	wantEq(t, qval.Index(n, 0), qval.Float(1000))
}

func TestDeleteRowsAndColumns(t *testing.T) {
	in := New()
	setupTrades(t, in)
	v := ev(t, in, "delete from trades where Symbol=`IBM")
	if v.(*qval.Table).Len() != 3 {
		t.Fatalf("delete rows left %d", v.(*qval.Table).Len())
	}
	v = ev(t, in, "delete Size from trades")
	if v.(*qval.Table).NumCols() != 3 {
		t.Fatalf("delete col left %d cols", v.(*qval.Table).NumCols())
	}
}

func TestVirtualRowIndexColumn(t *testing.T) {
	in := New()
	setupTrades(t, in)
	v := ev(t, in, "select i from trades where Symbol=`IBM")
	tab := v.(*qval.Table)
	iv, _ := tab.Column("i")
	wantEq(t, iv, qval.LongVec{1, 3})
}

func TestLambdaExample3Semantics(t *testing.T) {
	// Paper Example 3 end-to-end on the interpreter.
	in := New()
	setupTrades(t, in)
	src := "f:{[Sym] dt: select Price from trades where Symbol=Sym; :select max Price from dt;}; f[`GOOG]"
	v := ev(t, in, src)
	tab := v.(*qval.Table)
	p, _ := tab.Column("Price")
	wantEq(t, qval.Index(p, 0), qval.Float(102))
}

func TestLocalVariablesStayLocal(t *testing.T) {
	// paper §3.2.3: local upserts never get promoted
	in := New()
	ev(t, in, "g:{loc:42; loc}; g[]")
	if _, ok := in.Global("loc"); ok {
		t.Fatal("local variable leaked to global scope")
	}
}

func TestLocalShadowsGlobal(t *testing.T) {
	in := New()
	ev(t, in, "x:1")
	v := ev(t, in, "h:{x:99; x}; h[]")
	wantEq(t, v, qval.Long(99))
	g, _ := in.Global("x")
	wantEq(t, g, qval.Long(1))
}

func TestGlobalAmendFromFunction(t *testing.T) {
	in := New()
	ev(t, in, "x:1")
	ev(t, in, "h:{x::77; 0}; h[]")
	g, _ := in.Global("x")
	wantEq(t, g, qval.Long(77))
}

func TestGlobalFunctionRedefinition(t *testing.T) {
	// paper §3.2.3: a global function may be overwritten between calls
	in := New()
	ev(t, in, "f:{x+1}")
	wantEq(t, ev(t, in, "f[1]"), qval.Long(2))
	ev(t, in, "f:{x+100}")
	wantEq(t, ev(t, in, "f[1]"), qval.Long(101))
}

func TestAdverbs(t *testing.T) {
	in := New()
	wantEq(t, ev(t, in, "(+/)1 2 3"), qval.Long(6))
	wantEq(t, ev(t, in, "0+/1 2 3"), qval.Long(6))
	wantEq(t, ev(t, in, "count each (1 2;3 4 5)"), qval.LongVec{2, 3})
	wantEq(t, ev(t, in, "1 2+'10 20"), qval.LongVec{11, 22})
	wantEq(t, ev(t, in, "{x*x} each 1 2 3"), qval.LongVec{1, 4, 9})
}

func TestCondLazyEvaluation(t *testing.T) {
	in := New()
	wantEq(t, ev(t, in, "$[1;`yes;`no]"), qval.Symbol("yes"))
	wantEq(t, ev(t, in, "$[0;`yes;`no]"), qval.Symbol("no"))
	// the untaken branch must not evaluate: referencing an unknown name
	wantEq(t, ev(t, in, "$[1;`ok;undefined_name_xyz]"), qval.Symbol("ok"))
}

func TestErrorsAreKdbStyle(t *testing.T) {
	in := New()
	err := evErr(t, in, "undefined_name_xyz")
	if err.Error() != "'undefined_name_xyz" {
		t.Errorf("unknown name error = %q", err.Error())
	}
	err = evErr(t, in, "1 2+1 2 3")
	if err.Error() != "'length" {
		t.Errorf("length error = %q", err.Error())
	}
}

func TestInsertUpsert(t *testing.T) {
	in := New()
	setupTrades(t, in)
	v := ev(t, in, "`trades insert (enlist `MSFT; enlist 09:30:05.000; enlist 88.5; enlist 60)")
	wantEq(t, v, qval.LongVec{5})
	g, _ := in.Global("trades")
	if g.(*qval.Table).Len() != 6 {
		t.Fatalf("after insert len = %d", g.(*qval.Table).Len())
	}
}

func TestXascXdescSortTable(t *testing.T) {
	in := New()
	setupTrades(t, in)
	v := ev(t, in, "`Price xasc trades")
	p, _ := v.(*qval.Table).Column("Price")
	wantEq(t, p, qval.FloatVec{100, 101, 102, 150, 151})
	v = ev(t, in, "`Price xdesc trades")
	p, _ = v.(*qval.Table).Column("Price")
	wantEq(t, p, qval.FloatVec{151, 150, 102, 101, 100})
}

func TestMetaAndCols(t *testing.T) {
	in := New()
	setupTrades(t, in)
	wantEq(t, ev(t, in, "cols trades"), qval.SymbolVec{"Symbol", "Time", "Price", "Size"})
	m := ev(t, in, "meta trades").(*qval.Table)
	tc, _ := m.Column("t")
	wantEq(t, tc, qval.CharVec{'s', 't', 'f', 'j'})
}

func TestSerializedExecution(t *testing.T) {
	// concurrent Evals must serialize like the kdb+ main loop
	in := New()
	ev(t, in, "c:0")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 50; j++ {
				if _, err := in.Eval("c:c+1"); err != nil {
					t.Errorf("increment: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	v, _ := in.Global("c")
	wantEq(t, v, qval.Long(400))
}
