package interp

import (
	"hyperq/internal/qlang/ast"
	"hyperq/internal/qlang/qval"
)

// evalAj implements the as-of join aj[`c1`c2...`time; t1; t2] — the paper's
// Example 1 and 2, and q's signature time-series primitive. For each row of
// t1, it finds the most recent row of t2 whose leading columns match exactly
// and whose final (time) column is <= t1's; unmatched rows yield nulls.
func (in *Interp) evalAj(args []ast.Node, e *env) (qval.Value, error) {
	if len(args) != 3 {
		return nil, qval.Errorf("rank: aj expects 3 arguments")
	}
	colsV, err := in.eval(args[0], e)
	if err != nil {
		return nil, err
	}
	leftV, err := in.eval(args[1], e)
	if err != nil {
		return nil, err
	}
	rightV, err := in.eval(args[2], e)
	if err != nil {
		return nil, err
	}
	var joinCols []string
	switch c := colsV.(type) {
	case qval.SymbolVec:
		joinCols = c
	case qval.Symbol:
		joinCols = []string{string(c)}
	default:
		return nil, qval.Errorf("type: aj join columns must be symbols")
	}
	if len(joinCols) == 0 {
		return nil, qval.Errorf("length: aj needs at least one join column")
	}
	left, ok := qval.Unkey(leftV)
	if !ok {
		return nil, qval.Errorf("type: aj left input must be a table")
	}
	right, ok := qval.Unkey(rightV)
	if !ok {
		return nil, qval.Errorf("type: aj right input must be a table")
	}
	return AsOfJoin(joinCols, left, right)
}

// AsOfJoin is the exported as-of join used by the side-by-side tests and
// benchmarks. The last join column is the "as of" (time) column; the
// preceding columns match exactly.
func AsOfJoin(joinCols []string, left, right *qval.Table) (*qval.Table, error) {
	for _, c := range joinCols {
		if _, ok := left.Column(c); !ok {
			return nil, qval.Errorf(c)
		}
		if _, ok := right.Column(c); !ok {
			return nil, qval.Errorf(c)
		}
	}
	eqCols := joinCols[:len(joinCols)-1]
	timeCol := joinCols[len(joinCols)-1]

	// bucket right rows by exact-match key, preserving order (kdb+ requires
	// the right table sorted by time within key; we sort defensively)
	rightBuckets := map[string][]int{}
	rn := right.Len()
	rightEq := make([]qval.Value, len(eqCols))
	for i, c := range eqCols {
		rightEq[i], _ = right.Column(c)
	}
	rightTime, _ := right.Column(timeCol)
	for i := 0; i < rn; i++ {
		key := ""
		for _, c := range rightEq {
			key += qval.Index(c, i).String() + "|"
		}
		rightBuckets[key] = append(rightBuckets[key], i)
	}
	for _, rows := range rightBuckets {
		stableSortFunc(rows, func(a, b int) bool {
			return qval.Compare(qval.Index(rightTime, a), qval.Index(rightTime, b)) < 0
		})
	}

	ln := left.Len()
	leftEq := make([]qval.Value, len(eqCols))
	for i, c := range eqCols {
		leftEq[i], _ = left.Column(c)
	}
	leftTime, _ := left.Column(timeCol)

	match := make([]int, ln) // right row per left row; -1 = none
	for i := 0; i < ln; i++ {
		key := ""
		for _, c := range leftEq {
			key += qval.Index(c, i).String() + "|"
		}
		bucket := rightBuckets[key]
		t := qval.Index(leftTime, i)
		// binary search: rightmost bucket row with time <= t
		lo, hi := 0, len(bucket)
		for lo < hi {
			mid := (lo + hi) / 2
			if qval.Compare(qval.Index(rightTime, bucket[mid]), t) <= 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == 0 {
			match[i] = -1
		} else {
			match[i] = bucket[lo-1]
		}
	}

	// output: all left columns, then right columns not already present
	cols := append([]string(nil), left.Cols...)
	data := append([]qval.Value(nil), left.Data...)
	for j, c := range right.Cols {
		if left.ColumnIndex(c) >= 0 {
			continue
		}
		data = append(data, qval.TakeIndexes(right.Data[j], match))
		cols = append(cols, c)
	}
	return qval.NewTable(cols, data), nil
}

// evalJoinCall dispatches lj/ij/uj/ej/pj when written call-style:
// lj[t1;t2] or ej[cols;t1;t2].
func (in *Interp) evalJoinCall(name string, args []ast.Node, e *env) (qval.Value, error) {
	vals := make([]qval.Value, len(args))
	for i, a := range args {
		v, err := in.eval(a, e)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	switch name {
	case "lj", "ij", "uj", "pj":
		if len(vals) != 2 {
			return nil, qval.Errorf("rank")
		}
		return applyNamedJoin(name, vals[0], vals[1])
	case "ej":
		if len(vals) != 3 {
			return nil, qval.Errorf("rank")
		}
		return equiJoin(vals[0], vals[1], vals[2])
	}
	return nil, qval.Errorf("nyi join " + name)
}

// applyNamedJoin implements the infix table joins. The right operand of
// lj/ij must be a keyed table; uj unions rows and columns.
func applyNamedJoin(name string, l, r qval.Value) (qval.Value, error) {
	left, ok := qval.Unkey(l)
	if !ok {
		return nil, qval.Errorf("type")
	}
	switch name {
	case "uj":
		right, ok := qval.Unkey(r)
		if !ok {
			return nil, qval.Errorf("type")
		}
		return unionJoin(left, right)
	case "lj", "ij", "pj":
		kd, ok := r.(*qval.Dict)
		if !ok || !kd.IsKeyedTable() {
			// convenience extension matching Hyper-Q's binder: a plain
			// right table is keyed implicitly on the columns it shares
			// with the left operand
			rt, isTable := r.(*qval.Table)
			if !isTable {
				return nil, qval.Errorf("type: right operand of " + name + " must be a keyed table")
			}
			var shared []string
			for _, c := range left.Cols {
				if rt.ColumnIndex(c) >= 0 {
					shared = append(shared, c)
				}
			}
			if len(shared) == 0 {
				return nil, qval.Errorf("type: " + name + " requires shared key columns")
			}
			keyed, err := qval.KeyTable(shared, rt)
			if err != nil {
				return nil, err
			}
			kd = keyed
		}
		keyT := kd.Keys.(*qval.Table)
		valT := kd.Vals.(*qval.Table)
		return keyedJoin(name, left, keyT, valT)
	}
	return nil, qval.Errorf("nyi join " + name)
}

// keyedJoin matches left rows against the key table; lj keeps unmatched
// left rows with nulls, ij drops them, pj adds matched numeric values.
func keyedJoin(name string, left, keyT, valT *qval.Table) (qval.Value, error) {
	// index right keys
	idx := map[string]int{}
	kn := keyT.Len()
	for i := 0; i < kn; i++ {
		key := ""
		for _, c := range keyT.Data {
			key += qval.Index(c, i).String() + "|"
		}
		if _, dup := idx[key]; !dup {
			idx[key] = i
		}
	}
	leftKeyCols := make([]qval.Value, len(keyT.Cols))
	for i, c := range keyT.Cols {
		col, ok := left.Column(c)
		if !ok {
			return nil, qval.Errorf(c)
		}
		leftKeyCols[i] = col
	}
	ln := left.Len()
	match := make([]int, ln)
	var keepRows []int
	for i := 0; i < ln; i++ {
		key := ""
		for _, c := range leftKeyCols {
			key += qval.Index(c, i).String() + "|"
		}
		if j, ok := idx[key]; ok {
			match[i] = j
			keepRows = append(keepRows, i)
		} else {
			match[i] = -1
		}
	}
	switch name {
	case "ij":
		base := left.Take(keepRows)
		m := make([]int, len(keepRows))
		for k, r := range keepRows {
			m[k] = match[r]
		}
		return attachValCols(base, valT, m, left)
	case "lj":
		return attachValCols(left, valT, match, left)
	case "pj":
		out := qval.NewTable(append([]string(nil), left.Cols...), append([]qval.Value(nil), left.Data...))
		for j, c := range valT.Cols {
			li := out.ColumnIndex(c)
			add := qval.TakeIndexes(valT.Data[j], match)
			if li < 0 {
				out.Cols = append(out.Cols, c)
				out.Data = append(out.Data, add)
				continue
			}
			// plus-join: add values, treating unmatched as 0
			atoms := make([]qval.Value, out.Len())
			for i := 0; i < out.Len(); i++ {
				b := qval.Index(add, i)
				if qval.IsNull(b) {
					atoms[i] = qval.Index(out.Data[li], i)
					continue
				}
				s, err := arith("+", qval.Index(out.Data[li], i), b)
				if err != nil {
					return nil, err
				}
				atoms[i] = s
			}
			out.Data[li] = qval.FromAtoms(atoms)
		}
		return out, nil
	}
	return nil, qval.Errorf("nyi")
}

// attachValCols appends valT's columns gathered by match to base;
// match values of -1 produce nulls. Columns already present in base are
// overwritten where matched (q lj semantics).
func attachValCols(base, valT *qval.Table, match []int, left *qval.Table) (qval.Value, error) {
	out := qval.NewTable(append([]string(nil), base.Cols...), append([]qval.Value(nil), base.Data...))
	for j, c := range valT.Cols {
		gathered := qval.TakeIndexes(valT.Data[j], match)
		li := out.ColumnIndex(c)
		if li < 0 {
			out.Cols = append(out.Cols, c)
			out.Data = append(out.Data, gathered)
			continue
		}
		// overwrite where matched
		atoms := make([]qval.Value, out.Len())
		for i := 0; i < out.Len(); i++ {
			if match[i] >= 0 {
				atoms[i] = qval.Index(gathered, i)
			} else {
				atoms[i] = qval.Index(out.Data[li], i)
			}
		}
		out.Data[li] = qval.FromAtoms(atoms)
	}
	return out, nil
}

// unionJoin implements uj: rows of both tables over the union of columns.
func unionJoin(a, b *qval.Table) (qval.Value, error) {
	cols := append([]string(nil), a.Cols...)
	for _, c := range b.Cols {
		if a.ColumnIndex(c) < 0 {
			cols = append(cols, c)
		}
	}
	an, bn := a.Len(), b.Len()
	data := make([]qval.Value, len(cols))
	for j, c := range cols {
		atoms := make([]qval.Value, 0, an+bn)
		if col, ok := a.Column(c); ok {
			for i := 0; i < an; i++ {
				atoms = append(atoms, qval.Index(col, i))
			}
		} else if bcol, ok := b.Column(c); ok {
			nullAtom := qval.Null(bcol.Type())
			for i := 0; i < an; i++ {
				atoms = append(atoms, nullAtom)
			}
		}
		if col, ok := b.Column(c); ok {
			for i := 0; i < bn; i++ {
				atoms = append(atoms, qval.Index(col, i))
			}
		} else if acol, ok := a.Column(c); ok {
			nullAtom := qval.Null(acol.Type())
			for i := 0; i < bn; i++ {
				atoms = append(atoms, nullAtom)
			}
		}
		data[j] = qval.FromAtoms(atoms)
	}
	return qval.NewTable(cols, data), nil
}

// equiJoin implements ej[cols; t1; t2]: inner join on the named columns.
func equiJoin(colsV qval.Value, lV, rV qval.Value) (qval.Value, error) {
	var joinCols []string
	switch c := colsV.(type) {
	case qval.SymbolVec:
		joinCols = c
	case qval.Symbol:
		joinCols = []string{string(c)}
	default:
		return nil, qval.Errorf("type")
	}
	left, ok := qval.Unkey(lV)
	if !ok {
		return nil, qval.Errorf("type")
	}
	right, ok := qval.Unkey(rV)
	if !ok {
		return nil, qval.Errorf("type")
	}
	// hash right side
	buckets := map[string][]int{}
	rightKey := make([]qval.Value, len(joinCols))
	for i, c := range joinCols {
		col, ok := right.Column(c)
		if !ok {
			return nil, qval.Errorf(c)
		}
		rightKey[i] = col
	}
	for i := 0; i < right.Len(); i++ {
		key := ""
		for _, c := range rightKey {
			key += qval.Index(c, i).String() + "|"
		}
		buckets[key] = append(buckets[key], i)
	}
	leftKey := make([]qval.Value, len(joinCols))
	for i, c := range joinCols {
		col, ok := left.Column(c)
		if !ok {
			return nil, qval.Errorf(c)
		}
		leftKey[i] = col
	}
	var lIdx, rIdx []int
	for i := 0; i < left.Len(); i++ {
		key := ""
		for _, c := range leftKey {
			key += qval.Index(c, i).String() + "|"
		}
		for _, r := range buckets[key] {
			lIdx = append(lIdx, i)
			rIdx = append(rIdx, r)
		}
	}
	out := left.Take(lIdx)
	for j, c := range right.Cols {
		if out.ColumnIndex(c) >= 0 {
			continue
		}
		out.Cols = append(out.Cols, c)
		out.Data = append(out.Data, qval.TakeIndexes(right.Data[j], rIdx))
	}
	return out, nil
}
