// Package lex tokenizes Q source text. The lexer is deliberately
// lightweight (paper §3.2.1): it classifies literals — including Q's typed
// numeric suffixes and temporal literal syntax — identifiers, operators and
// punctuation, and leaves all type decisions to the binder. Literal tokens
// carry their decoded qval atom.
package lex

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"hyperq/internal/qlang/qval"
)

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF         Kind = iota
	Ident            // names, possibly namespaced: trades, .u.upd
	Keyword          // q-sql template words: select exec update delete by from where
	Number           // any numeric or temporal literal; Val holds the atom
	Str              // "char vector"
	Sym              // `symbol (one backtick-prefixed name)
	Op               // operators: + - * % & | < > = <> <= >= ~ ! # _ ? @ . $ , ^
	Assign           // :
	DoubleColon      // :: (global amend / identity)
	Semi             // ;
	LParen           // (
	RParen           // )
	LBracket         // [
	RBracket         // ]
	LBrace           // {
	RBrace           // }
	Adverb           // ' /: \: ': or the words each/over/scan
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "Ident"
	case Keyword:
		return "Keyword"
	case Number:
		return "Number"
	case Str:
		return "Str"
	case Sym:
		return "Sym"
	case Op:
		return "Op"
	case Assign:
		return "Assign"
	case DoubleColon:
		return "DoubleColon"
	case Semi:
		return "Semi"
	case LParen:
		return "LParen"
	case RParen:
		return "RParen"
	case LBracket:
		return "LBracket"
	case RBracket:
		return "RBracket"
	case LBrace:
		return "LBrace"
	case RBrace:
		return "RBrace"
	case Adverb:
		return "Adverb"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Token is one lexical unit with its source position (byte offset and
// 1-based line/column) and, for literals, the decoded value.
type Token struct {
	Kind Kind
	Text string
	Val  qval.Value // set for Number, Str and Sym tokens
	Pos  int
	Line int
	Col  int
}

func (t Token) String() string { return fmt.Sprintf("%s(%q)", t.Kind, t.Text) }

// Error is a lexical error with position information.
type Error struct {
	Msg  string
	Line int
	Col  int
}

func (e *Error) Error() string { return fmt.Sprintf("lex error at %d:%d: %s", e.Line, e.Col, e.Msg) }

var keywords = map[string]bool{
	"select": true, "exec": true, "update": true, "delete": true,
	"by": true, "from": true, "where": true,
}

var wordAdverbs = map[string]bool{"each": true, "over": true, "scan": true, "prior": true}

// Lexer scans Q source text into tokens.
type Lexer struct {
	src       string
	pos       int
	line, col int
	prev      Kind // kind of the previous significant token, for / and ' disambiguation
}

// New returns a lexer over src.
func New(src string) *Lexer { return &Lexer{src: src, line: 1, col: 1, prev: EOF} }

// Tokenize scans the entire input and returns the token stream terminated by
// an EOF token.
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

func (l *Lexer) errf(format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...), Line: l.line, Col: l.col}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(k int) byte {
	if l.pos+k >= len(l.src) {
		return 0
	}
	return l.src[l.pos+k]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skipSpaceAndComments consumes whitespace and comments. A '/' starts a
// comment when it appears at the start of a line or after whitespace; a
// standalone '\' at the start of a line terminates a block comment opened by
// a line containing only '/'.
func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peek()
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			wasNL := c == '\n'
			l.advance()
			if wasNL {
				l.prev = EOF // newline resets juxtaposition context
			}
			continue
		}
		if c == '/' && (l.col == 1 || l.prevIsSpace()) {
			// line comment
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		return
	}
}

func (l *Lexer) prevIsSpace() bool {
	if l.pos == 0 {
		return true
	}
	c := l.src[l.pos-1]
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	start, line, col := l.pos, l.line, l.col
	mk := func(k Kind, v qval.Value) Token {
		l.prev = k
		return Token{Kind: k, Text: l.src[start:l.pos], Val: v, Pos: start, Line: line, Col: col}
	}
	if l.pos >= len(l.src) {
		return mk(EOF, nil), nil
	}
	c := l.peek()
	switch {
	case c == '"':
		s, err := l.lexString()
		if err != nil {
			return Token{}, err
		}
		return mk(Str, qval.CharVec(s)), nil
	case c == '`':
		l.advance()
		name := l.lexName(true)
		return mk(Sym, qval.Symbol(name)), nil
	case isDigit(c) || (c == '.' && isDigit(l.peekAt(1))):
		v, err := l.lexNumber()
		if err != nil {
			return Token{}, err
		}
		return mk(Number, v), nil
	case isAlpha(c) || c == '.':
		name := l.lexName(false)
		if keywords[name] {
			return mk(Keyword, nil), nil
		}
		if wordAdverbs[name] {
			return mk(Adverb, nil), nil
		}
		return mk(Ident, nil), nil
	}
	// punctuation and operators
	switch c {
	case ';':
		l.advance()
		return mk(Semi, nil), nil
	case '(':
		l.advance()
		return mk(LParen, nil), nil
	case ')':
		l.advance()
		return mk(RParen, nil), nil
	case '[':
		l.advance()
		return mk(LBracket, nil), nil
	case ']':
		l.advance()
		return mk(RBracket, nil), nil
	case '{':
		l.advance()
		return mk(LBrace, nil), nil
	case '}':
		l.advance()
		return mk(RBrace, nil), nil
	case ':':
		l.advance()
		if l.peek() == ':' {
			l.advance()
			return mk(DoubleColon, nil), nil
		}
		return mk(Assign, nil), nil
	case '\'':
		l.advance()
		if l.peek() == ':' {
			l.advance()
			return mk(Adverb, nil), nil // ': each-prior
		}
		return mk(Adverb, nil), nil // ' each-both
	case '/', '\\':
		// adverbs over/scan when attached to a value or operator context
		l.advance()
		if l.peek() == ':' {
			l.advance()
		}
		return mk(Adverb, nil), nil
	case '<':
		l.advance()
		if l.peek() == '>' || l.peek() == '=' {
			l.advance()
		}
		return mk(Op, nil), nil
	case '>':
		l.advance()
		if l.peek() == '=' {
			l.advance()
		}
		return mk(Op, nil), nil
	case '+', '-', '*', '%', '&', '|', '=', '~', '!', '#', '_', '?', '@', '$', ',', '^', '.':
		l.advance()
		return mk(Op, nil), nil
	}
	return Token{}, l.errf("unexpected character %q", string(rune(c)))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

// isAlnum admits '_' inside names (legal though discouraged in q), while a
// leading '_' lexes as the drop/cut operator.
func isAlnum(c byte) bool { return isAlpha(c) || isDigit(c) || c == '_' }

func (l *Lexer) lexName(sym bool) string {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.peek()
		if isAlnum(c) || c == '.' || (sym && c == ':') {
			l.advance()
			continue
		}
		break
	}
	return l.src[start:l.pos]
}

func (l *Lexer) lexString() (string, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return "", l.errf("unterminated string")
		}
		c := l.advance()
		if c == '"' {
			return b.String(), nil
		}
		if c == '\\' {
			if l.pos >= len(l.src) {
				return "", l.errf("unterminated escape")
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				b.WriteByte(e)
			}
			continue
		}
		b.WriteByte(c)
	}
}

// lexNumber scans numeric and temporal literals. The grammar distinguishes
// by shape: 2024.01.15 is a date, 09:30 a minute, 09:30:00 a second,
// 09:30:00.000 a time, 2024.01.15D09:30:00 a timestamp, 2024.01m a month,
// 1D00:00:00 a timespan, 0x.. bytes, 0b/1b booleans, 0N/0W nulls and
// infinities with optional width suffixes, and plain numbers with the
// h/i/j/e/f suffixes.
func (l *Lexer) lexNumber() (qval.Value, error) {
	start := l.pos
	// hex bytes
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.advance()
		l.advance()
		hs := l.pos
		for isHex(l.peek()) {
			l.advance()
		}
		hex := l.src[hs:l.pos]
		if len(hex) == 0 || len(hex)%2 == 1 {
			hex = "0" + hex
		}
		bs := make([]byte, len(hex)/2)
		for i := 0; i < len(bs); i++ {
			v, err := strconv.ParseUint(hex[2*i:2*i+2], 16, 8)
			if err != nil {
				return nil, l.errf("bad byte literal %q", hex)
			}
			bs[i] = byte(v)
		}
		if len(bs) == 1 {
			return qval.Byte(bs[0]), nil
		}
		return qval.ByteVec(bs), nil
	}
	// null/infinity literals 0N 0W with optional type suffix
	if l.peek() == '0' && (l.peekAt(1) == 'N' || l.peekAt(1) == 'W') {
		isNull := l.peekAt(1) == 'N'
		l.advance()
		l.advance()
		suf := byte(0)
		if isAlpha(l.peek()) {
			suf = l.advance()
		}
		return nullOrInf(isNull, suf)
	}
	// lowercase float null/infinity: 0n, 0w
	if l.peek() == '0' && (l.peekAt(1) == 'n' || l.peekAt(1) == 'w') && !isAlnum(l.peekAt(2)) {
		l.advance()
		c := l.advance()
		if c == 'n' {
			return qval.Null(qval.KFloat), nil
		}
		return qval.Float(math.Inf(1)), nil
	}
	// scan digits, dots, colons, and a possible 'D' separator
	for {
		c := l.peek()
		if isDigit(c) || c == '.' || c == ':' {
			l.advance()
			continue
		}
		if c == 'D' && looksTemporal(l.src[start:l.pos]) {
			l.advance()
			continue
		}
		break
	}
	body := l.src[start:l.pos]
	// temporal shapes
	if v, ok := parseTemporalLiteral(body); ok {
		// month suffix
		if l.peek() == 'm' && strings.Count(body, ".") == 1 && !strings.Contains(body, ":") {
			l.advance()
			return parseMonth(body)
		}
		return v, nil
	}
	if l.peek() == 'm' && strings.Count(body, ".") == 1 && !strings.Contains(body, ":") {
		l.advance()
		return parseMonth(body)
	}
	// plain number with optional suffix
	suf := byte(0)
	switch l.peek() {
	case 'b', 'h', 'i', 'j', 'e', 'f', 'c':
		suf = l.advance()
	}
	return parseNumber(body, suf, l)
}

func isHex(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func looksTemporal(s string) bool {
	// a date prefix 2024.01.15 or a day count before D in a timespan
	return strings.Count(s, ".") == 2 || !strings.ContainsAny(s, ".:")
}

func nullOrInf(isNull bool, suf byte) (qval.Value, error) {
	if isNull {
		switch suf {
		case 0, 'j':
			return qval.Long(qval.NullLong), nil
		case 'h':
			return qval.Short(qval.NullShort), nil
		case 'i':
			return qval.Int(qval.NullInt), nil
		case 'e':
			return qval.Null(qval.KReal), nil
		case 'f', 'n':
			if suf == 'n' {
				return qval.Temporal{T: qval.KTimespan, V: qval.NullLong}, nil
			}
			return qval.Null(qval.KFloat), nil
		case 'p':
			return qval.Temporal{T: qval.KTimestamp, V: qval.NullLong}, nil
		case 'm':
			return qval.Temporal{T: qval.KMonth, V: qval.NullLong}, nil
		case 'd':
			return qval.Temporal{T: qval.KDate, V: qval.NullLong}, nil
		case 'z':
			return qval.Null(qval.KDatetime), nil
		case 'u':
			return qval.Temporal{T: qval.KMinute, V: qval.NullLong}, nil
		case 'v':
			return qval.Temporal{T: qval.KSecond, V: qval.NullLong}, nil
		case 't':
			return qval.Temporal{T: qval.KTime, V: qval.NullLong}, nil
		case 'g':
			return qval.Null(qval.KSymbol), nil
		}
		return qval.Long(qval.NullLong), nil
	}
	switch suf {
	case 0, 'j':
		return qval.Long(qval.InfLong), nil
	case 'h':
		return qval.Short(qval.InfShort), nil
	case 'i':
		return qval.Int(qval.InfInt), nil
	case 'e':
		return qval.Real(float32(math.Inf(1))), nil
	case 'f':
		return qval.Float(math.Inf(1)), nil
	}
	return qval.Long(qval.InfLong), nil
}

func parseNumber(body string, suf byte, l *Lexer) (qval.Value, error) {
	switch suf {
	case 'b':
		// boolean literal(s): 1b, 0b, 101b
		if len(body) == 1 {
			return qval.Bool(body[0] == '1'), nil
		}
		out := make(qval.BoolVec, len(body))
		for i := 0; i < len(body); i++ {
			if body[i] != '0' && body[i] != '1' {
				return nil, l.errf("bad boolean literal %q", body)
			}
			out[i] = body[i] == '1'
		}
		return out, nil
	case 'h':
		n, err := strconv.ParseInt(body, 10, 16)
		if err != nil {
			return nil, l.errf("bad short literal %q", body)
		}
		return qval.Short(int16(n)), nil
	case 'i':
		n, err := strconv.ParseInt(body, 10, 32)
		if err != nil {
			return nil, l.errf("bad int literal %q", body)
		}
		return qval.Int(int32(n)), nil
	case 'j':
		n, err := strconv.ParseInt(body, 10, 64)
		if err != nil {
			return nil, l.errf("bad long literal %q", body)
		}
		return qval.Long(n), nil
	case 'e':
		f, err := strconv.ParseFloat(body, 32)
		if err != nil {
			return nil, l.errf("bad real literal %q", body)
		}
		return qval.Real(float32(f)), nil
	case 'f':
		f, err := strconv.ParseFloat(body, 64)
		if err != nil {
			return nil, l.errf("bad float literal %q", body)
		}
		return qval.Float(f), nil
	case 'c':
		n, err := strconv.ParseInt(body, 10, 16)
		if err != nil {
			return nil, l.errf("bad char literal %q", body)
		}
		return qval.Char(byte(n)), nil
	}
	if strings.Contains(body, ".") || strings.ContainsAny(body, "eE") {
		f, err := strconv.ParseFloat(body, 64)
		if err != nil {
			return nil, l.errf("bad float literal %q", body)
		}
		return qval.Float(f), nil
	}
	n, err := strconv.ParseInt(body, 10, 64)
	if err != nil {
		return nil, l.errf("bad integer literal %q", body)
	}
	return qval.Long(n), nil
}

func parseMonth(body string) (qval.Value, error) {
	parts := strings.SplitN(body, ".", 2)
	y, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return nil, fmt.Errorf("bad month literal %q", body)
	}
	return qval.MkMonth(y, m), nil
}

// parseTemporalLiteral recognizes date, time, minute, second, timestamp and
// timespan shapes; it returns ok=false when the text is a plain number.
func parseTemporalLiteral(s string) (qval.Value, bool) {
	dots := strings.Count(s, ".")
	colons := strings.Count(s, ":")
	hasD := strings.Contains(s, "D")
	switch {
	case hasD:
		parts := strings.SplitN(s, "D", 2)
		if strings.Count(parts[0], ".") == 2 {
			// timestamp: date D time
			d, ok := parseDate(parts[0])
			if !ok {
				return nil, false
			}
			ns, ok := parseTimeNanos(parts[1])
			if !ok {
				return nil, false
			}
			return qval.Temporal{T: qval.KTimestamp, V: d.V*int64(24)*3600*1e9 + ns}, true
		}
		// timespan: days D time
		days, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, false
		}
		ns, ok := parseTimeNanos(parts[1])
		if !ok {
			return nil, false
		}
		return qval.Temporal{T: qval.KTimespan, V: days*int64(24)*3600*1e9 + ns}, true
	case dots == 2 && colons == 0:
		return parseDateOK(s)
	case colons == 1 && dots == 0:
		hh, mm, ok := parse2(s)
		if !ok {
			return nil, false
		}
		return qval.MkMinute(hh, mm), true
	case colons == 2 && dots == 0:
		hh, mm, ss, ok := parse3(s)
		if !ok {
			return nil, false
		}
		return qval.MkSecond(hh, mm, ss), true
	case colons == 2 && dots == 1:
		ms, ok := parseTimeMillis(s)
		if !ok {
			return nil, false
		}
		return qval.Temporal{T: qval.KTime, V: ms}, true
	}
	return nil, false
}

func parseDateOK(s string) (qval.Value, bool) {
	d, ok := parseDate(s)
	if !ok {
		return nil, false
	}
	return d, true
}

func parseDate(s string) (qval.Temporal, bool) {
	parts := strings.Split(s, ".")
	if len(parts) != 3 {
		return qval.Temporal{}, false
	}
	y, e1 := strconv.Atoi(parts[0])
	m, e2 := strconv.Atoi(parts[1])
	d, e3 := strconv.Atoi(parts[2])
	if e1 != nil || e2 != nil || e3 != nil || m < 1 || m > 12 || d < 1 || d > 31 {
		return qval.Temporal{}, false
	}
	return qval.MkDate(y, m, d), true
}

func parse2(s string) (int, int, bool) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, 0, false
	}
	a, e1 := strconv.Atoi(parts[0])
	b, e2 := strconv.Atoi(parts[1])
	return a, b, e1 == nil && e2 == nil
}

func parse3(s string) (int, int, int, bool) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, false
	}
	a, e1 := strconv.Atoi(parts[0])
	b, e2 := strconv.Atoi(parts[1])
	c, e3 := strconv.Atoi(parts[2])
	return a, b, c, e1 == nil && e2 == nil && e3 == nil
}

func parseTimeMillis(s string) (int64, bool) {
	dot := strings.IndexByte(s, '.')
	hh, mm, ss, ok := parse3(s[:dot])
	if !ok {
		return 0, false
	}
	frac := s[dot+1:]
	for len(frac) < 3 {
		frac += "0"
	}
	ms, err := strconv.Atoi(frac[:3])
	if err != nil {
		return 0, false
	}
	return int64(hh)*3600000 + int64(mm)*60000 + int64(ss)*1000 + int64(ms), true
}

func parseTimeNanos(s string) (int64, bool) {
	dot := strings.IndexByte(s, '.')
	base := s
	frac := ""
	if dot >= 0 {
		base, frac = s[:dot], s[dot+1:]
	}
	var hh, mm, ss int
	var ok bool
	switch strings.Count(base, ":") {
	case 2:
		hh, mm, ss, ok = parse3(base)
	case 1:
		hh, mm, ok = parse2(base)
		ss = 0
	default:
		return 0, false
	}
	if !ok {
		return 0, false
	}
	for len(frac) < 9 {
		frac += "0"
	}
	ns, err := strconv.Atoi(frac[:9])
	if err != nil {
		return 0, false
	}
	return int64(hh)*3600*1e9 + int64(mm)*60*1e9 + int64(ss)*1e9 + int64(ns), true
}
