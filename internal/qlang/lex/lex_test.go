package lex

import (
	"testing"
	"testing/quick"

	"hyperq/internal/qlang/qval"
)

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	out := make([]Kind, 0, len(toks)-1)
	for _, tk := range toks {
		if tk.Kind == EOF {
			break
		}
		out = append(out, tk.Kind)
	}
	return out
}

func one(t *testing.T, src string) Token {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	if len(toks) != 2 {
		t.Fatalf("Tokenize(%q) = %v, want single token", src, toks)
	}
	return toks[0]
}

func TestNumericLiterals(t *testing.T) {
	cases := []struct {
		src  string
		want qval.Value
	}{
		{"1", qval.Long(1)},
		{"42j", qval.Long(42)},
		{"7i", qval.Int(7)},
		{"3h", qval.Short(3)},
		{"2.5", qval.Float(2.5)},
		{"2.5f", qval.Float(2.5)},
		{"1.5e", qval.Real(1.5)},
		{"1b", qval.Bool(true)},
		{"0b", qval.Bool(false)},
		{"0x1f", qval.Byte(0x1f)},
		{"0xdeadbeef", qval.ByteVec{0xde, 0xad, 0xbe, 0xef}},
		{"0N", qval.Long(qval.NullLong)},
		{"0Ni", qval.Int(qval.NullInt)},
		{"0W", qval.Long(qval.InfLong)},
	}
	for _, c := range cases {
		tok := one(t, c.src)
		if tok.Kind != Number {
			t.Errorf("%q: kind = %v, want Number", c.src, tok.Kind)
			continue
		}
		if !qval.EqualValues(tok.Val, c.want) {
			t.Errorf("%q: val = %v (%T), want %v", c.src, tok.Val, tok.Val, c.want)
		}
	}
}

func TestBooleanVectorLiteral(t *testing.T) {
	tok := one(t, "101b")
	want := qval.BoolVec{true, false, true}
	if !qval.EqualValues(tok.Val, want) {
		t.Errorf("101b = %v, want %v", tok.Val, want)
	}
}

func TestTemporalLiterals(t *testing.T) {
	cases := []struct {
		src  string
		want qval.Value
	}{
		{"2024.01.15", qval.MkDate(2024, 1, 15)},
		{"2016.06m", qval.MkMonth(2016, 6)},
		{"09:30", qval.MkMinute(9, 30)},
		{"09:30:15", qval.MkSecond(9, 30, 15)},
		{"09:30:00.250", qval.MkTime(9, 30, 0, 250)},
		{"2024.01.15D09:30:00.000000000", qval.MkTimestamp(2024, 1, 15, 9, 30, 0, 0)},
		{"1D00:00:01", qval.Temporal{T: qval.KTimespan, V: 24*3600*1e9 + 1e9}},
		{"0Nd", qval.Temporal{T: qval.KDate, V: qval.NullLong}},
		{"0Nt", qval.Temporal{T: qval.KTime, V: qval.NullLong}},
		{"0Np", qval.Temporal{T: qval.KTimestamp, V: qval.NullLong}},
	}
	for _, c := range cases {
		tok := one(t, c.src)
		if !qval.EqualValues(tok.Val, c.want) {
			t.Errorf("%q: val = %v, want %v", c.src, tok.Val, c.want)
		}
	}
}

func TestSymbols(t *testing.T) {
	tok := one(t, "`GOOG")
	if tok.Kind != Sym || tok.Val.(qval.Symbol) != "GOOG" {
		t.Errorf("`GOOG = %v %v", tok.Kind, tok.Val)
	}
	// consecutive symbols lex as separate Sym tokens
	ks := kinds(t, "`Symbol`Time")
	if len(ks) != 2 || ks[0] != Sym || ks[1] != Sym {
		t.Errorf("`Symbol`Time kinds = %v", ks)
	}
	// empty symbol
	tok = one(t, "`")
	if tok.Val.(qval.Symbol) != "" {
		t.Errorf("` = %v", tok.Val)
	}
}

func TestStrings(t *testing.T) {
	tok := one(t, `"hello"`)
	if tok.Kind != Str || string(tok.Val.(qval.CharVec)) != "hello" {
		t.Errorf("string = %v %v", tok.Kind, tok.Val)
	}
	tok = one(t, `"a\"b\n"`)
	if string(tok.Val.(qval.CharVec)) != "a\"b\n" {
		t.Errorf("escaped = %q", tok.Val)
	}
	if _, err := Tokenize(`"unterminated`); err == nil {
		t.Error("unterminated string should error")
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	ks := kinds(t, "select Price from trades where Sym=`GOOG")
	want := []Kind{Keyword, Ident, Keyword, Ident, Keyword, Ident, Op, Sym}
	if len(ks) != len(want) {
		t.Fatalf("kinds = %v, want %v", ks, want)
	}
	for i := range ks {
		if ks[i] != want[i] {
			t.Errorf("token %d: %v, want %v", i, ks[i], want[i])
		}
	}
}

func TestNamespacedIdent(t *testing.T) {
	tok := one(t, ".u.upd")
	if tok.Kind != Ident || tok.Text != ".u.upd" {
		t.Errorf(".u.upd = %v %q", tok.Kind, tok.Text)
	}
}

func TestOperatorsAndPunct(t *testing.T) {
	ks := kinds(t, "x:1;y[2]")
	want := []Kind{Ident, Assign, Number, Semi, Ident, LBracket, Number, RBracket}
	for i := range want {
		if i >= len(ks) || ks[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", ks, want)
		}
	}
	if tok := one(t, "::"); tok.Kind != DoubleColon {
		t.Errorf(":: = %v", tok.Kind)
	}
	for _, op := range []string{"<>", "<=", ">=", "~", "+", "-", "*", "%", "&", "|", "#", "_", "?", "@", "$", ",", "^", "!", "="} {
		if tok := one(t, op); tok.Kind != Op || tok.Text != op {
			t.Errorf("%q = %v %q", op, tok.Kind, tok.Text)
		}
	}
}

func TestAdverbs(t *testing.T) {
	toks, err := Tokenize("f each x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != Adverb {
		t.Errorf("each = %v", toks[1].Kind)
	}
	toks, err = Tokenize("x+'y")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != Adverb {
		t.Errorf("' = %v", toks[2].Kind)
	}
}

func TestComments(t *testing.T) {
	ks := kinds(t, "x:1 / trailing comment\ny:2")
	want := []Kind{Ident, Assign, Number, Ident, Assign, Number}
	if len(ks) != len(want) {
		t.Fatalf("kinds with comment = %v", ks)
	}
	ks = kinds(t, "/ whole line comment\nz")
	if len(ks) != 1 || ks[0] != Ident {
		t.Errorf("comment-only line kinds = %v", ks)
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("x:1\ny:2")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("first token at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[3].Line != 2 || toks[3].Col != 1 {
		t.Errorf("y at %d:%d, want 2:1", toks[3].Line, toks[3].Col)
	}
}

func TestAsOfJoinQueryLexes(t *testing.T) {
	// Example 1 from the paper.
	src := "aj[`Symbol`Time; select Price from trades where Date=SOMEDATE, Symbol in SYMLIST; select Symbol, Time, Bid, Ask from quotes where Date=SOMEDATE]"
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("paper Example 1 should lex: %v", err)
	}
	if toks[0].Kind != Ident || toks[0].Text != "aj" {
		t.Errorf("first token = %v", toks[0])
	}
}

func TestLambdaLexes(t *testing.T) {
	src := "f:{[Sym] dt: select Price from trades where Symbol=Sym; :select max Price from dt;}"
	ks := kinds(t, src)
	if ks[0] != Ident || ks[1] != Assign || ks[2] != LBrace {
		t.Errorf("lambda prefix kinds = %v", ks[:3])
	}
	last := ks[len(ks)-1]
	if last != RBrace {
		t.Errorf("lambda should end with RBrace, got %v", last)
	}
}

func TestErrorPositionsReported(t *testing.T) {
	_, err := Tokenize("x:1\n\x01")
	if err == nil {
		t.Fatal("control char should error")
	}
	le, ok := err.(*Error)
	if !ok || le.Line != 2 {
		t.Errorf("error = %v, want line 2", err)
	}
}

// Property: any list of simple long literals joined by ';' round-trips into
// Number/Semi alternation.
func TestPropLongListLexes(t *testing.T) {
	f := func(xs []uint16) bool {
		src := ""
		for i, x := range xs {
			if i > 0 {
				src += ";"
			}
			src += qval.Long(int64(x)).String()
		}
		toks, err := Tokenize(src)
		if err != nil {
			return false
		}
		count := 0
		for _, tk := range toks {
			if tk.Kind == Number {
				count++
			}
		}
		return count == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
