// Package parse implements the Q parser. Following the paper's design
// (§3.2.1), the parser is lightweight: it builds an untyped AST and makes no
// attempt to decide whether a name denotes a table, list or scalar — that is
// the binder's job. Expressions are parsed with Q's strict right-to-left
// evaluation order and no operator precedence (§2.2), and the q-sql
// templates (select/exec/update/delete ... by ... from ... where) are
// recognized structurally.
package parse

import (
	"fmt"
	"strings"

	"hyperq/internal/qlang/ast"
	"hyperq/internal/qlang/lex"
	"hyperq/internal/qlang/qval"
)

// Error is a parse error with source position.
type Error struct {
	Msg  string
	Line int
	Col  int
}

func (e *Error) Error() string {
	return fmt.Sprintf("parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// infixWords are named verbs that apply infix between two nouns, like
// `x in y` or `t1 lj t2`.
var infixWords = map[string]bool{
	"in": true, "within": true, "like": true, "and": true, "or": true,
	"xasc": true, "xdesc": true, "xkey": true, "xcol": true, "xcols": true,
	"mod": true, "div": true, "union": true, "inter": true, "except": true,
	"cross": true, "vs": true, "sv": true, "asof": true, "bin": true,
	"insert": true, "upsert": true, "lj": true, "ij": true, "uj": true,
	"pj": true, "ej": true, "cor": true, "cov": true, "wavg": true,
	"wsum": true, "mavg": true, "msum": true, "mmax": true, "mmin": true,
	"xbar": true, "take": true, "set": true, "ss": true, "sublist": true,
}

// Parse parses a complete Q program: one or more statements separated by
// semicolons.
func Parse(src string) (*ast.Program, error) {
	toks, err := lex.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	prog := &ast.Program{}
	for !p.at(lex.EOF) {
		if p.at(lex.Semi) {
			p.next()
			continue
		}
		stmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, stmt)
		if !p.at(lex.Semi) && !p.at(lex.EOF) {
			return nil, p.errf("expected ';' or end of input, got %s", p.tok())
		}
	}
	if len(prog.Stmts) == 0 {
		return nil, p.errf("empty program")
	}
	return prog, nil
}

// ParseExpr parses a single expression and requires the whole input to be
// consumed.
func ParseExpr(src string) (ast.Node, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Stmts) != 1 {
		return nil, fmt.Errorf("expected a single expression, got %d statements", len(prog.Stmts))
	}
	return prog.Stmts[0], nil
}

type parser struct {
	toks []lex.Token
	pos  int
	src  string
}

func (p *parser) tok() lex.Token { return p.toks[p.pos] }
func (p *parser) at(k lex.Kind) bool {
	return p.toks[p.pos].Kind == k
}
func (p *parser) peekKind(d int) lex.Kind {
	if p.pos+d >= len(p.toks) {
		return lex.EOF
	}
	return p.toks[p.pos+d].Kind
}
func (p *parser) next() lex.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.tok()
	return &Error{Msg: fmt.Sprintf(format, args...), Line: t.Line, Col: t.Col}
}

// parseStmt parses one statement: an expression, an assignment, or an
// explicit return (":expr").
func (p *parser) parseStmt() (ast.Node, error) {
	if p.at(lex.Assign) { // leading ':' is an explicit return
		p.next()
		e, err := p.parseExpr(false)
		if err != nil {
			return nil, err
		}
		return &ast.Return{Expr: e}, nil
	}
	return p.parseExpr(false)
}

// parseExpr parses an expression with right-to-left semantics. When noComma
// is set, a top-level ',' terminates the expression (used inside q-sql
// column and where lists, where the comma is a separator, not the join
// operator).
func (p *parser) parseExpr(noComma bool) (ast.Node, error) {
	// prefix operator position: e.g. "-x" (with a space) or "#[2;x]".
	if p.at(lex.Op) {
		op := p.tok()
		// negative literal: '-' immediately adjacent to a number
		if op.Text == "-" && p.peekKind(1) == lex.Number && p.toks[p.pos+1].Pos == op.Pos+1 {
			p.next()
			numTok := p.next()
			neg, err := negateLiteral(numTok.Val)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			return p.parsePostfix(&ast.Lit{Val: neg}, noComma)
		}
		p.next()
		if p.at(lex.LBracket) { // projected/bracketed operator call: $[c;t;f]
			args, err := p.parseBracketArgs()
			if err != nil {
				return nil, err
			}
			return p.parsePostfix(&ast.Apply{Fn: &ast.Var{Name: op.Text}, Args: args}, noComma)
		}
		if p.at(lex.Adverb) { // adverb-modified operator as a value: (+/) or +/[..]
			adv := p.next()
			return p.parsePostfix(&ast.AdverbExpr{Adverb: adv.Text, Verb: &ast.Var{Name: op.Text}}, noComma)
		}
		x, err := p.parseExpr(noComma)
		if err != nil {
			return nil, err
		}
		return &ast.Monad{Op: op.Text, X: x}, nil
	}
	noun, err := p.parseNoun(noComma)
	if err != nil {
		return nil, err
	}
	return p.parsePostfix(noun, noComma)
}

// parsePostfix handles everything that may follow a noun: bracket
// application, adverbs, dyadic operators, infix words, assignment and
// monadic juxtaposition.
func (p *parser) parsePostfix(noun ast.Node, noComma bool) (ast.Node, error) {
	for {
		switch {
		case p.at(lex.LBracket):
			args, err := p.parseBracketArgs()
			if err != nil {
				return nil, err
			}
			noun = &ast.Apply{Fn: noun, Args: args}
			continue
		case p.at(lex.Adverb):
			adv := p.next()
			noun = &ast.AdverbExpr{Adverb: adv.Text, Verb: noun}
			continue
		}
		break
	}
	switch {
	case p.at(lex.Op):
		op := p.tok()
		if noComma && op.Text == "," {
			return noun, nil
		}
		// "abs -3": a minus touching a number, preceded by a space, after a
		// function-ish noun reads as application to a negative literal.
		if op.Text == "-" && p.peekKind(1) == lex.Number &&
			p.toks[p.pos+1].Pos == op.Pos+1 && p.spaceBefore(p.pos) && functionish(noun) {
			p.next()
			numTok := p.next()
			neg, err := negateLiteral(numTok.Val)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			arg, err := p.parsePostfix(&ast.Lit{Val: neg}, noComma)
			if err != nil {
				return nil, err
			}
			return &ast.Apply{Fn: noun, Args: []ast.Node{arg}}, nil
		}
		p.next()
		// an adverb directly after a dyadic op modifies the op: x +/ y
		if p.at(lex.Adverb) {
			adv := p.next()
			verb := &ast.AdverbExpr{Adverb: adv.Text, Verb: &ast.Var{Name: op.Text}}
			r, err := p.parseExpr(noComma)
			if err != nil {
				return nil, err
			}
			return &ast.Apply{Fn: verb, Args: []ast.Node{noun, r}}, nil
		}
		r, err := p.parseExpr(noComma)
		if err != nil {
			return nil, err
		}
		return &ast.Dyad{Op: op.Text, L: noun, R: r}, nil
	case p.at(lex.Ident) && infixWords[p.tok().Text]:
		op := p.next()
		r, err := p.parseExpr(noComma)
		if err != nil {
			return nil, err
		}
		return &ast.Dyad{Op: op.Text, L: noun, R: r}, nil
	case p.at(lex.Assign):
		v, ok := noun.(*ast.Var)
		if !ok {
			return nil, p.errf("left side of ':' must be a name, got %s", noun.QString())
		}
		p.next()
		e, err := p.parseExpr(noComma)
		if err != nil {
			return nil, err
		}
		return &ast.Assign{Name: v.Name, Expr: e}, nil
	case p.at(lex.DoubleColon):
		v, ok := noun.(*ast.Var)
		if !ok {
			return nil, p.errf("left side of '::' must be a name, got %s", noun.QString())
		}
		p.next()
		e, err := p.parseExpr(noComma)
		if err != nil {
			return nil, err
		}
		return &ast.Assign{Name: v.Name, Global: true, Expr: e}, nil
	}
	// monadic juxtaposition: "count x", "til 10", "select ... from f[...]"
	if p.startsNoun() {
		arg, err := p.parseExpr(noComma)
		if err != nil {
			return nil, err
		}
		return &ast.Apply{Fn: noun, Args: []ast.Node{arg}}, nil
	}
	return noun, nil
}

func (p *parser) startsNoun() bool {
	switch p.tok().Kind {
	case lex.Ident, lex.Number, lex.Str, lex.Sym, lex.LParen, lex.LBrace, lex.Keyword:
		if p.tok().Kind == lex.Keyword {
			// template-opening keywords and the verb reading of "where"
			// begin a noun; from/by do not. A "where" that separates
			// template clauses is consumed by the template parser before
			// juxtaposition is ever considered.
			switch p.tok().Text {
			case "select", "exec", "update", "delete", "where":
				return true
			}
			return false
		}
		if p.tok().Kind == lex.Ident && infixWords[p.tok().Text] {
			return false
		}
		return true
	default:
		return false
	}
}

// parseNoun parses a primary expression.
func (p *parser) parseNoun(noComma bool) (ast.Node, error) {
	t := p.tok()
	switch t.Kind {
	case lex.Number:
		return p.parseNumberVector(), nil
	case lex.Str:
		p.next()
		return &ast.Lit{Val: t.Val}, nil
	case lex.Sym:
		return p.parseSymbolVector(), nil
	case lex.Ident:
		p.next()
		return &ast.Var{Name: t.Text}, nil
	case lex.LParen:
		return p.parseParen()
	case lex.LBrace:
		return p.parseLambda()
	case lex.Keyword:
		switch t.Text {
		case "select", "exec", "update", "delete":
			return p.parseTemplate()
		case "where":
			// "where" doubles as the monadic verb on boolean masks
			p.next()
			return &ast.Var{Name: "where"}, nil
		}
		return nil, p.errf("unexpected keyword %q", t.Text)
	case lex.DoubleColon:
		p.next()
		return &ast.Lit{Val: qval.Identity}, nil
	default:
		return nil, p.errf("unexpected token %s", t)
	}
}

// parseNumberVector merges juxtaposed numeric literals of one family into a
// vector literal: 1 2 3 or 09:30 09:31.
func (p *parser) parseNumberVector() ast.Node {
	first := p.next()
	vals := []qval.Value{first.Val}
	for {
		if p.at(lex.Number) {
			vals = append(vals, p.next().Val)
			continue
		}
		// adjacent negative numbers inside a vector literal: in "1 -2 3"
		// the '-' touches the digit and is preceded by a space, so Q reads
		// a literal, not a subtraction.
		if p.at(lex.Op) && p.tok().Text == "-" && p.peekKind(1) == lex.Number &&
			p.toks[p.pos+1].Pos == p.tok().Pos+1 && p.spaceBefore(p.pos) {
			p.next()
			num := p.next()
			nv, err := negateLiteral(num.Val)
			if err != nil {
				break
			}
			vals = append(vals, nv)
			continue
		}
		break
	}
	if len(vals) == 1 {
		return &ast.Lit{Val: vals[0]}
	}
	return &ast.Lit{Val: packNumericVector(vals)}
}

// packNumericVector packs juxtaposed numeric literals, promoting mixed
// widths to the widest type so that "1 2f" denotes a float vector as in q.
func packNumericVector(vals []qval.Value) qval.Value {
	uniform := true
	for _, v := range vals[1:] {
		if v.Type() != vals[0].Type() {
			uniform = false
			break
		}
	}
	if uniform {
		return qval.FromAtoms(vals)
	}
	rank := func(t qval.Type) int {
		if t < 0 {
			t = -t
		}
		switch t {
		case qval.KBool:
			return 1
		case qval.KByte:
			return 2
		case qval.KShort:
			return 3
		case qval.KInt:
			return 4
		case qval.KLong:
			return 5
		case qval.KReal:
			return 6
		case qval.KFloat:
			return 7
		default:
			return 0
		}
	}
	widest := qval.Type(0)
	best := 0
	for _, v := range vals {
		if r := rank(v.Type()); r > best {
			best = r
			widest = -v.Type()
		}
	}
	if best == 0 {
		return qval.FromAtoms(vals) // non-numeric mix: general list
	}
	atoms := make([]qval.Value, len(vals))
	for i, v := range vals {
		f, ok := qval.AsFloat(v)
		if !ok {
			return qval.FromAtoms(vals)
		}
		switch widest {
		case qval.KFloat:
			atoms[i] = qval.Float(f)
		case qval.KReal:
			atoms[i] = qval.Real(float32(f))
		case qval.KLong:
			atoms[i] = qval.Long(int64(f))
		case qval.KInt:
			atoms[i] = qval.Int(int32(f))
		case qval.KShort:
			atoms[i] = qval.Short(int16(f))
		default:
			atoms[i] = qval.Long(int64(f))
		}
		if qval.IsNull(v) {
			atoms[i] = qval.Null(widest)
		}
	}
	return qval.FromAtoms(atoms)
}

func (p *parser) spaceBefore(i int) bool {
	t := p.toks[i]
	return t.Pos > 0 && t.Pos <= len(p.src) && (p.src[t.Pos-1] == ' ' || p.src[t.Pos-1] == '\t')
}

// parseSymbolVector merges juxtaposed symbol literals: `Symbol`Time.
func (p *parser) parseSymbolVector() ast.Node {
	first := p.next()
	syms := []string{string(first.Val.(qval.Symbol))}
	for p.at(lex.Sym) && p.toks[p.pos].Pos == p.toks[p.pos-1].Pos+len(p.toks[p.pos-1].Text) {
		syms = append(syms, string(p.next().Val.(qval.Symbol)))
	}
	if len(syms) == 1 {
		return &ast.Lit{Val: qval.Symbol(syms[0])}
	}
	return &ast.Lit{Val: qval.SymbolVec(syms)}
}

// parseParen parses (expr) grouping, (a;b;c) general list literals, and
// ([] c1:e1; c2:e2) table literals (desugared to flip of a column dict).
func (p *parser) parseParen() (ast.Node, error) {
	p.next() // (
	if p.at(lex.LBracket) {
		return p.parseTableLit()
	}
	if p.at(lex.RParen) {
		p.next()
		return &ast.Lit{Val: qval.List{}}, nil
	}
	var items []ast.Node
	for {
		e, err := p.parseExpr(false)
		if err != nil {
			return nil, err
		}
		items = append(items, e)
		if p.at(lex.Semi) {
			p.next()
			continue
		}
		break
	}
	if !p.at(lex.RParen) {
		return nil, p.errf("expected ')', got %s", p.tok())
	}
	p.next()
	if len(items) == 1 {
		return items[0], nil // grouping
	}
	return &ast.ListExpr{Items: items}, nil
}

// parseBracketArgs parses [a;b;c]; empty slots become nil (projections).
func (p *parser) parseBracketArgs() ([]ast.Node, error) {
	p.next() // [
	var args []ast.Node
	if p.at(lex.RBracket) {
		p.next()
		return args, nil
	}
	for {
		if p.at(lex.Semi) {
			args = append(args, nil)
			p.next()
			continue
		}
		e, err := p.parseExpr(false)
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if p.at(lex.Semi) {
			p.next()
			continue
		}
		break
	}
	if !p.at(lex.RBracket) {
		return nil, p.errf("expected ']', got %s", p.tok())
	}
	p.next()
	return args, nil
}

// parseLambda parses {[a;b] stmt; stmt} or {x+y} (implicit x y z params).
func (p *parser) parseLambda() (ast.Node, error) {
	start := p.tok().Pos
	p.next() // {
	var params []string
	if p.at(lex.LBracket) {
		p.next()
		for !p.at(lex.RBracket) {
			if !p.at(lex.Ident) {
				return nil, p.errf("expected parameter name, got %s", p.tok())
			}
			params = append(params, p.next().Text)
			if p.at(lex.Semi) {
				p.next()
			}
		}
		p.next() // ]
	}
	var body []ast.Node
	for !p.at(lex.RBrace) {
		if p.at(lex.Semi) {
			p.next()
			continue
		}
		if p.at(lex.EOF) {
			return nil, p.errf("unterminated function body")
		}
		stmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, stmt)
		if !p.at(lex.Semi) && !p.at(lex.RBrace) {
			return nil, p.errf("expected ';' or '}' in function body, got %s", p.tok())
		}
	}
	endTok := p.next() // }
	end := endTok.Pos + 1
	if len(params) == 0 {
		params = implicitParams(body)
	}
	return &ast.Lambda{Params: params, Body: body, Source: p.src[start:end]}, nil
}

// implicitParams detects use of the implicit parameters x, y, z.
func implicitParams(body []ast.Node) []string {
	used := map[string]bool{}
	for _, s := range body {
		ast.Walk(s, func(n ast.Node) bool {
			if v, ok := n.(*ast.Var); ok {
				if v.Name == "x" || v.Name == "y" || v.Name == "z" {
					used[v.Name] = true
				}
			}
			return true
		})
	}
	var out []string
	for _, p := range []string{"x", "y", "z"} {
		if used[p] {
			out = append(out, p)
		} else {
			break
		}
	}
	return out
}

// parseTemplate parses the q-sql templates. Grammar:
//
//	select [colspecs] [by colspecs] from expr [where conds]
//	exec   [colspecs] [by colspecs] from expr [where conds]
//	update colspecs [by colspecs] from expr [where conds]
//	delete [names] from expr [where conds]
func (p *parser) parseTemplate() (ast.Node, error) {
	kw := p.next()
	var kind ast.TemplateKind
	switch kw.Text {
	case "select":
		kind = ast.Select
	case "exec":
		kind = ast.Exec
	case "update":
		kind = ast.Update
	case "delete":
		kind = ast.Delete
	}
	tpl := &ast.SQLTemplate{Kind: kind}
	// column list until 'by' or 'from'
	for !p.atKeyword("from") && !p.atKeyword("by") {
		if p.at(lex.EOF) {
			return nil, p.errf("expected 'from' in %s template", kw.Text)
		}
		spec, err := p.parseColSpec()
		if err != nil {
			return nil, err
		}
		tpl.Cols = append(tpl.Cols, spec)
		if p.at(lex.Op) && p.tok().Text == "," {
			p.next()
			continue
		}
		break
	}
	if p.atKeyword("by") {
		p.next()
		for !p.atKeyword("from") {
			if p.at(lex.EOF) {
				return nil, p.errf("expected 'from' after 'by'")
			}
			spec, err := p.parseColSpec()
			if err != nil {
				return nil, err
			}
			tpl.By = append(tpl.By, spec)
			if p.at(lex.Op) && p.tok().Text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if !p.atKeyword("from") {
		return nil, p.errf("expected 'from' in %s template, got %s", kw.Text, p.tok())
	}
	p.next()
	from, err := p.parseFromExpr()
	if err != nil {
		return nil, err
	}
	tpl.From = from
	if p.atKeyword("where") {
		p.next()
		for {
			cond, err := p.parseExpr(true)
			if err != nil {
				return nil, err
			}
			tpl.Where = append(tpl.Where, cond)
			if p.at(lex.Op) && p.tok().Text == "," {
				p.next()
				continue
			}
			break
		}
	}
	return tpl, nil
}

func (p *parser) atKeyword(w string) bool {
	return p.at(lex.Keyword) && p.tok().Text == w
}

// parseColSpec parses one column entry: name:expr or a bare expression whose
// result name is inferred later.
func (p *parser) parseColSpec() (ast.ColSpec, error) {
	if p.at(lex.Ident) && p.peekKind(1) == lex.Assign && !infixWords[p.tok().Text] {
		name := p.next().Text
		p.next() // :
		e, err := p.parseExpr(true)
		if err != nil {
			return ast.ColSpec{}, err
		}
		return ast.ColSpec{Name: name, Expr: e}, nil
	}
	e, err := p.parseExpr(true)
	if err != nil {
		return ast.ColSpec{}, err
	}
	return ast.ColSpec{Expr: e}, nil
}

// parseFromExpr parses the table expression of a template. It stops before
// a 'where' keyword; a nested template or join call is fine because those
// parse as complete nouns.
func (p *parser) parseFromExpr() (ast.Node, error) {
	noun, err := p.parseNoun(true)
	if err != nil {
		return nil, err
	}
	// allow postfix brackets and infix joins but not juxtaposition into
	// the where clause
	for {
		if p.at(lex.LBracket) {
			args, err := p.parseBracketArgs()
			if err != nil {
				return nil, err
			}
			noun = &ast.Apply{Fn: noun, Args: args}
			continue
		}
		if p.at(lex.Ident) && infixWords[p.tok().Text] {
			op := p.next().Text
			r, err := p.parseFromExpr()
			if err != nil {
				return nil, err
			}
			noun = &ast.Dyad{Op: op, L: noun, R: r}
			continue
		}
		break
	}
	return noun, nil
}

// InferColName derives the q result column name for an unnamed column
// expression: the last variable referenced, or "x" when none exists.
func InferColName(e ast.Node) string {
	name := ""
	ast.Walk(e, func(n ast.Node) bool {
		if v, ok := n.(*ast.Var); ok && !infixWords[v.Name] {
			name = v.Name
		}
		return true
	})
	if name == "" {
		return "x"
	}
	return name
}

// IsTemplateKeyword reports whether a word opens a q-sql template.
func IsTemplateKeyword(w string) bool {
	switch strings.TrimSpace(w) {
	case "select", "exec", "update", "delete":
		return true
	}
	return false
}

// negateLiteral negates a numeric or temporal literal value for the
// adjacent-minus rule (-5 lexes as two tokens but denotes one literal).
func negateLiteral(v qval.Value) (qval.Value, error) {
	switch x := v.(type) {
	case qval.Long:
		return qval.Long(-x), nil
	case qval.Int:
		return qval.Int(-x), nil
	case qval.Short:
		return qval.Short(-x), nil
	case qval.Float:
		return qval.Float(-x), nil
	case qval.Real:
		return qval.Real(-x), nil
	case qval.Temporal:
		return qval.Temporal{T: x.T, V: -x.V}, nil
	case qval.Datetime:
		return qval.Datetime(-x), nil
	default:
		return nil, fmt.Errorf("cannot negate %s literal", qval.TypeName(v.Type()))
	}
}

// parseTableLit parses ([keycols] c1:e1; c2:e2), producing the desugared
// expression flip `c1`c2!(e1;e2), wrapped in an xkey call when key columns
// are present. This mirrors how q itself defines the table literal.
func (p *parser) parseTableLit() (ast.Node, error) {
	p.next() // [
	var keySpecs []ast.ColSpec
	for !p.at(lex.RBracket) {
		if p.at(lex.EOF) {
			return nil, p.errf("unterminated table literal key section")
		}
		spec, err := p.parseColSpec()
		if err != nil {
			return nil, err
		}
		keySpecs = append(keySpecs, spec)
		if p.at(lex.Semi) {
			p.next()
		}
	}
	p.next() // ]
	var colSpecs []ast.ColSpec
	for !p.at(lex.RParen) {
		if p.at(lex.EOF) {
			return nil, p.errf("unterminated table literal")
		}
		if p.at(lex.Semi) {
			p.next()
			continue
		}
		spec, err := p.parseColSpec()
		if err != nil {
			return nil, err
		}
		colSpecs = append(colSpecs, spec)
		if !p.at(lex.Semi) && !p.at(lex.RParen) {
			return nil, p.errf("expected ';' or ')' in table literal, got %s", p.tok())
		}
	}
	p.next() // )
	all := append(append([]ast.ColSpec{}, keySpecs...), colSpecs...)
	if len(all) == 0 {
		return nil, p.errf("empty table literal")
	}
	names := make(qval.SymbolVec, len(all))
	items := make([]ast.Node, len(all))
	for i, spec := range all {
		name := spec.Name
		if name == "" {
			name = InferColName(spec.Expr)
		}
		names[i] = name
		items[i] = spec.Expr
	}
	var node ast.Node = &ast.Apply{
		Fn:   &ast.Var{Name: "flip"},
		Args: []ast.Node{&ast.Dyad{Op: "!", L: &ast.Lit{Val: names}, R: &ast.ListExpr{Items: items}}},
	}
	if len(keySpecs) > 0 {
		keyNames := make(qval.SymbolVec, len(keySpecs))
		for i, spec := range keySpecs {
			name := spec.Name
			if name == "" {
				name = InferColName(spec.Expr)
			}
			keyNames[i] = name
		}
		node = &ast.Dyad{Op: "xkey", L: &ast.Lit{Val: keyNames}, R: node}
	}
	return node, nil
}

// functionish reports whether a noun is plausibly a function, for the
// negative-literal juxtaposition rule.
func functionish(n ast.Node) bool {
	switch n.(type) {
	case *ast.Var, *ast.Lambda, *ast.AdverbExpr:
		return true
	default:
		return false
	}
}
