package parse

import (
	"testing"

	"hyperq/internal/qlang/ast"
	"hyperq/internal/qlang/qval"
)

func expr(t *testing.T, src string) ast.Node {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func TestLiteralExpr(t *testing.T) {
	e := expr(t, "42")
	lit, ok := e.(*ast.Lit)
	if !ok || !qval.EqualValues(lit.Val, qval.Long(42)) {
		t.Fatalf("42 = %#v", e)
	}
}

func TestVectorLiteralJuxtaposition(t *testing.T) {
	e := expr(t, "1 2 3")
	lit, ok := e.(*ast.Lit)
	if !ok {
		t.Fatalf("1 2 3 = %#v", e)
	}
	if !qval.EqualValues(lit.Val, qval.LongVec{1, 2, 3}) {
		t.Fatalf("1 2 3 val = %v", lit.Val)
	}
}

func TestNegativeLiterals(t *testing.T) {
	e := expr(t, "-5")
	lit, ok := e.(*ast.Lit)
	if !ok || !qval.EqualValues(lit.Val, qval.Long(-5)) {
		t.Fatalf("-5 = %#v", e)
	}
	e = expr(t, "1 -2 3")
	lit, ok = e.(*ast.Lit)
	if !ok || !qval.EqualValues(lit.Val, qval.LongVec{1, -2, 3}) {
		t.Fatalf("1 -2 3 = %#v", e)
	}
}

func TestSymbolVectorLiteral(t *testing.T) {
	e := expr(t, "`Symbol`Time")
	lit, ok := e.(*ast.Lit)
	if !ok || !qval.EqualValues(lit.Val, qval.SymbolVec{"Symbol", "Time"}) {
		t.Fatalf("`Symbol`Time = %#v", e)
	}
}

func TestRightToLeftNoPrecedence(t *testing.T) {
	// Q: 2*3+4 = 2*(3+4) = 14, strictly right-to-left (paper §2.2).
	e := expr(t, "2*3+4")
	d, ok := e.(*ast.Dyad)
	if !ok || d.Op != "*" {
		t.Fatalf("2*3+4 = %#v", e)
	}
	r, ok := d.R.(*ast.Dyad)
	if !ok || r.Op != "+" {
		t.Fatalf("right side should be 3+4, got %#v", d.R)
	}
}

func TestAssignment(t *testing.T) {
	e := expr(t, "x:1 2 3")
	a, ok := e.(*ast.Assign)
	if !ok || a.Name != "x" || a.Global {
		t.Fatalf("x:1 2 3 = %#v", e)
	}
	e = expr(t, "x::5")
	a, ok = e.(*ast.Assign)
	if !ok || !a.Global {
		t.Fatalf("x::5 = %#v", e)
	}
}

func TestMonadicJuxtaposition(t *testing.T) {
	e := expr(t, "count x")
	ap, ok := e.(*ast.Apply)
	if !ok {
		t.Fatalf("count x = %#v", e)
	}
	if v, ok := ap.Fn.(*ast.Var); !ok || v.Name != "count" {
		t.Fatalf("fn = %#v", ap.Fn)
	}
	if len(ap.Args) != 1 {
		t.Fatalf("args = %v", ap.Args)
	}
}

func TestBracketApplication(t *testing.T) {
	e := expr(t, "f[1;2]")
	ap, ok := e.(*ast.Apply)
	if !ok || len(ap.Args) != 2 {
		t.Fatalf("f[1;2] = %#v", e)
	}
	// projection: empty slot
	e = expr(t, "f[;2]")
	ap = e.(*ast.Apply)
	if ap.Args[0] != nil || ap.Args[1] == nil {
		t.Fatalf("projection args = %#v", ap.Args)
	}
}

func TestAsOfJoinExample2(t *testing.T) {
	// Paper Example 2: aj[`Symbol`Time; trades; quotes]
	e := expr(t, "aj[`Symbol`Time; trades; quotes]")
	ap, ok := e.(*ast.Apply)
	if !ok || len(ap.Args) != 3 {
		t.Fatalf("aj = %#v", e)
	}
	if v := ap.Fn.(*ast.Var); v.Name != "aj" {
		t.Fatalf("fn = %v", v.Name)
	}
	cols := ap.Args[0].(*ast.Lit)
	if !qval.EqualValues(cols.Val, qval.SymbolVec{"Symbol", "Time"}) {
		t.Fatalf("join cols = %v", cols.Val)
	}
}

func TestSelectTemplate(t *testing.T) {
	e := expr(t, "select Price from trades where Symbol=`GOOG")
	tpl, ok := e.(*ast.SQLTemplate)
	if !ok || tpl.Kind != ast.Select {
		t.Fatalf("template = %#v", e)
	}
	if len(tpl.Cols) != 1 || tpl.Cols[0].Name != "" {
		t.Fatalf("cols = %#v", tpl.Cols)
	}
	if v := tpl.From.(*ast.Var); v.Name != "trades" {
		t.Fatalf("from = %#v", tpl.From)
	}
	if len(tpl.Where) != 1 {
		t.Fatalf("where = %#v", tpl.Where)
	}
	w := tpl.Where[0].(*ast.Dyad)
	if w.Op != "=" {
		t.Fatalf("where op = %v", w.Op)
	}
}

func TestSelectAllColumns(t *testing.T) {
	e := expr(t, "select from trades")
	tpl := e.(*ast.SQLTemplate)
	if len(tpl.Cols) != 0 {
		t.Fatalf("select from trades cols = %#v", tpl.Cols)
	}
}

func TestSelectMultiColumnAndWhereList(t *testing.T) {
	// from the paper's Example 1
	e := expr(t, "select Symbol, Time, Bid, Ask from quotes where Date=SOMEDATE, Symbol in SYMLIST")
	tpl := e.(*ast.SQLTemplate)
	if len(tpl.Cols) != 4 {
		t.Fatalf("cols = %d: %#v", len(tpl.Cols), tpl.Cols)
	}
	if len(tpl.Where) != 2 {
		t.Fatalf("where = %d: %#v", len(tpl.Where), tpl.Where)
	}
	if d := tpl.Where[1].(*ast.Dyad); d.Op != "in" {
		t.Fatalf("second cond op = %v", d.Op)
	}
}

func TestSelectByClause(t *testing.T) {
	e := expr(t, "select mx:max Price, avg Size by Symbol from trades")
	tpl := e.(*ast.SQLTemplate)
	if len(tpl.Cols) != 2 || tpl.Cols[0].Name != "mx" {
		t.Fatalf("cols = %#v", tpl.Cols)
	}
	if len(tpl.By) != 1 {
		t.Fatalf("by = %#v", tpl.By)
	}
	if InferColName(tpl.Cols[1].Expr) != "Size" {
		t.Fatalf("inferred name = %v", InferColName(tpl.Cols[1].Expr))
	}
}

func TestUpdateDeleteExec(t *testing.T) {
	e := expr(t, "update Price:2*Price from trades where Symbol=`IBM")
	tpl := e.(*ast.SQLTemplate)
	if tpl.Kind != ast.Update || tpl.Cols[0].Name != "Price" {
		t.Fatalf("update = %#v", tpl)
	}
	e = expr(t, "delete Size from trades")
	tpl = e.(*ast.SQLTemplate)
	if tpl.Kind != ast.Delete {
		t.Fatalf("delete = %#v", tpl)
	}
	e = expr(t, "exec Price from trades")
	tpl = e.(*ast.SQLTemplate)
	if tpl.Kind != ast.Exec {
		t.Fatalf("exec = %#v", tpl)
	}
}

func TestNestedTemplateInAj(t *testing.T) {
	// Paper Example 1, in full.
	src := "aj[`Symbol`Time; select Price from trades where Date=SOMEDATE, Symbol in SYMLIST; select Symbol, Time, Bid, Ask from quotes where Date=SOMEDATE]"
	e := expr(t, src)
	ap := e.(*ast.Apply)
	if len(ap.Args) != 3 {
		t.Fatalf("aj args = %d", len(ap.Args))
	}
	if _, ok := ap.Args[1].(*ast.SQLTemplate); !ok {
		t.Fatalf("second arg should be template, got %#v", ap.Args[1])
	}
	if _, ok := ap.Args[2].(*ast.SQLTemplate); !ok {
		t.Fatalf("third arg should be template, got %#v", ap.Args[2])
	}
}

func TestLambdaExample3(t *testing.T) {
	// Paper Example 3.
	src := "f:{[Sym] dt: select Price from trades where Symbol=Sym; :select max Price from dt;}"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a := prog.Stmts[0].(*ast.Assign)
	if a.Name != "f" {
		t.Fatalf("assign name = %v", a.Name)
	}
	fn := a.Expr.(*ast.Lambda)
	if len(fn.Params) != 1 || fn.Params[0] != "Sym" {
		t.Fatalf("params = %v", fn.Params)
	}
	if len(fn.Body) != 2 {
		t.Fatalf("body = %d stmts", len(fn.Body))
	}
	if _, ok := fn.Body[0].(*ast.Assign); !ok {
		t.Fatalf("first stmt = %#v", fn.Body[0])
	}
	if _, ok := fn.Body[1].(*ast.Return); !ok {
		t.Fatalf("second stmt = %#v", fn.Body[1])
	}
	if fn.Source == "" || fn.Source[0] != '{' {
		t.Fatalf("source = %q", fn.Source)
	}
}

func TestImplicitParams(t *testing.T) {
	e := expr(t, "{x+y}")
	fn := e.(*ast.Lambda)
	if len(fn.Params) != 2 || fn.Params[0] != "x" || fn.Params[1] != "y" {
		t.Fatalf("implicit params = %v", fn.Params)
	}
}

func TestProgramMultipleStatements(t *testing.T) {
	prog, err := Parse("x:1; y:2; x+y")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 3 {
		t.Fatalf("stmts = %d", len(prog.Stmts))
	}
}

func TestGeneralListLiteral(t *testing.T) {
	e := expr(t, "(1;`a;\"s\")")
	l, ok := e.(*ast.ListExpr)
	if !ok || len(l.Items) != 3 {
		t.Fatalf("list = %#v", e)
	}
	// single-element parens are grouping
	e = expr(t, "(1+2)")
	if _, ok := e.(*ast.Dyad); !ok {
		t.Fatalf("(1+2) = %#v", e)
	}
}

func TestAdverbs(t *testing.T) {
	e := expr(t, "f each x")
	ap := e.(*ast.Apply)
	adv, ok := ap.Fn.(*ast.AdverbExpr)
	if !ok || adv.Adverb != "each" {
		t.Fatalf("f each x = %#v", e)
	}
	e = expr(t, "x+'y")
	ap, ok = e.(*ast.Apply)
	if !ok || len(ap.Args) != 2 {
		t.Fatalf("x+'y = %#v", e)
	}
}

func TestCondExpression(t *testing.T) {
	e := expr(t, "$[x>0;`pos;`neg]")
	ap := e.(*ast.Apply)
	if v := ap.Fn.(*ast.Var); v.Name != "$" {
		t.Fatalf("cond fn = %v", v.Name)
	}
	if len(ap.Args) != 3 {
		t.Fatalf("cond args = %d", len(ap.Args))
	}
}

func TestInfixJoinWords(t *testing.T) {
	e := expr(t, "trades lj quotes")
	d, ok := e.(*ast.Dyad)
	if !ok || d.Op != "lj" {
		t.Fatalf("lj = %#v", e)
	}
}

func TestTableLiteralSyntaxViaFlip(t *testing.T) {
	// flip `a`b!(1 2;3 4) — dict of columns flipped into a table
	e := expr(t, "flip `a`b!(1 2;3 4)")
	ap, ok := e.(*ast.Apply)
	if !ok {
		t.Fatalf("flip = %#v", e)
	}
	d, ok := ap.Args[0].(*ast.Dyad)
	if !ok || d.Op != "!" {
		t.Fatalf("dict arg = %#v", ap.Args[0])
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", ")", "select Price trades", "f:{[a", "(1;2", "x[1",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestQStringRoundTripParses(t *testing.T) {
	// QString output of a parsed tree must itself parse.
	srcs := []string{
		"select Price from trades where Symbol=`GOOG",
		"aj[`Symbol`Time; trades; quotes]",
		"x:1+2",
		"select mx:max Price by Symbol from trades",
	}
	for _, src := range srcs {
		e := expr(t, src)
		if _, err := ParseExpr(e.QString()); err != nil {
			t.Errorf("QString of %q = %q does not reparse: %v", src, e.QString(), err)
		}
	}
}

func TestVarsCollection(t *testing.T) {
	e := expr(t, "select Price from trades where Symbol=Sym")
	vars := ast.Vars(e)
	want := map[string]bool{"Price": true, "trades": true, "Symbol": true, "Sym": true}
	if len(vars) != len(want) {
		t.Fatalf("vars = %v", vars)
	}
	for _, v := range vars {
		if !want[v] {
			t.Errorf("unexpected var %q", v)
		}
	}
}
