// Package ast defines the abstract syntax tree the Q parser produces. As the
// paper's Algebrizer prescribes (§3.2.1), the AST is deliberately untyped:
// variable references carry only names, and all type decisions are deferred
// to the binder (or the interpreter), which resolves them against metadata.
package ast

import (
	"strings"

	"hyperq/internal/qlang/qval"
)

// Node is any Q syntax tree node.
type Node interface {
	// QString renders the node back to Q-like source, used in error
	// messages and in the variable store, which keeps function
	// definitions as text (paper §4.3).
	QString() string
}

// Lit is a literal expression carrying its decoded value — an atom or a
// vector literal such as 1 2 3 or `Symbol`Time.
type Lit struct {
	Val qval.Value
}

// QString implements Node.
func (l *Lit) QString() string { return l.Val.String() }

// Var references a named entity; whether it denotes a table, a function or a
// scalar is unknown until binding (paper §3.2.1).
type Var struct {
	Name string
}

// QString implements Node.
func (v *Var) QString() string { return v.Name }

// Monad applies a monadic operator or verb to one argument, e.g. count x or
// -y.
type Monad struct {
	Op string
	X  Node
}

// QString implements Node.
func (m *Monad) QString() string { return m.Op + " " + m.X.QString() }

// Dyad applies a dyadic operator to two arguments. Q evaluates strictly
// right-to-left with no precedence, so the right side of a dyad is always
// the entire remaining expression.
type Dyad struct {
	Op   string
	L, R Node
}

// QString implements Node.
func (d *Dyad) QString() string { return d.L.QString() + d.Op + d.R.QString() }

// Apply calls a function-valued expression with bracketed arguments:
// f[x;y] or aj[`Symbol`Time;t1;t2].
type Apply struct {
	Fn   Node
	Args []Node
}

// QString implements Node.
func (a *Apply) QString() string {
	parts := make([]string, len(a.Args))
	for i, x := range a.Args {
		if x == nil {
			continue
		}
		parts[i] = x.QString()
	}
	return a.Fn.QString() + "[" + strings.Join(parts, ";") + "]"
}

// Lambda is a function literal {[a;b] body}. Source preserves the original
// text: Hyper-Q stores definitions verbatim in the variable scope and
// re-algebrizes them on invocation (paper §4.3).
type Lambda struct {
	Params []string
	Body   []Node
	Source string
}

// QString implements Node.
func (l *Lambda) QString() string { return l.Source }

// Assign binds a name: name:expr, or name::expr for a global amend from
// inside a function body.
type Assign struct {
	Name   string
	Global bool
	Expr   Node
}

// QString implements Node.
func (a *Assign) QString() string {
	op := ":"
	if a.Global {
		op = "::"
	}
	return a.Name + op + a.Expr.QString()
}

// Return is an explicit early return `:expr` inside a function body.
type Return struct {
	Expr Node
}

// QString implements Node.
func (r *Return) QString() string { return ":" + r.Expr.QString() }

// ListExpr is a parenthesized list (a;b;c). A one-element parenthesis is
// grouping, not a list, and is unwrapped by the parser.
type ListExpr struct {
	Items []Node
}

// QString implements Node.
func (l *ListExpr) QString() string {
	parts := make([]string, len(l.Items))
	for i, x := range l.Items {
		parts[i] = x.QString()
	}
	return "(" + strings.Join(parts, ";") + ")"
}

// AdverbExpr modifies a verb with an adverb: +/ (over), f' (each-both),
// f each.
type AdverbExpr struct {
	Adverb string
	Verb   Node
}

// QString implements Node.
func (a *AdverbExpr) QString() string { return a.Verb.QString() + a.Adverb }

// TemplateKind distinguishes the four q-sql templates.
type TemplateKind int

// The q-sql template kinds.
const (
	Select TemplateKind = iota
	Exec
	Update
	Delete
)

func (k TemplateKind) String() string {
	switch k {
	case Select:
		return "select"
	case Exec:
		return "exec"
	case Update:
		return "update"
	case Delete:
		return "delete"
	default:
		return "?"
	}
}

// ColSpec is one entry of a q-sql column or by list: an optional result name
// and the defining expression. An empty Name means the name is inferred from
// the expression (its trailing column reference), as q does.
type ColSpec struct {
	Name string
	Expr Node
}

// QString renders the column spec.
func (c ColSpec) QString() string {
	if c.Name == "" {
		return c.Expr.QString()
	}
	return c.Name + ":" + c.Expr.QString()
}

// SQLTemplate is a q-sql expression:
//
//	select cols by bycols from t where c1, c2
//
// Where conditions are AND-combined in order; q applies each condition to
// the rows surviving the previous one. Update replaces columns in the query
// output only (paper §2.2) — persistence is a separate assignment.
type SQLTemplate struct {
	Kind  TemplateKind
	Cols  []ColSpec // empty for `select from t` (all columns)
	By    []ColSpec
	From  Node
	Where []Node
}

// QString implements Node.
func (s *SQLTemplate) QString() string {
	var b strings.Builder
	b.WriteString(s.Kind.String())
	for i, c := range s.Cols {
		if i == 0 {
			b.WriteByte(' ')
		} else {
			b.WriteString(", ")
		}
		b.WriteString(c.QString())
	}
	if len(s.By) > 0 {
		b.WriteString(" by ")
		for i, c := range s.By {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.QString())
		}
	}
	b.WriteString(" from ")
	b.WriteString(s.From.QString())
	for i, w := range s.Where {
		if i == 0 {
			b.WriteString(" where ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(w.QString())
	}
	return b.String()
}

// Program is a sequence of top-level statements separated by semicolons.
type Program struct {
	Stmts []Node
}

// QString implements Node.
func (p *Program) QString() string {
	parts := make([]string, len(p.Stmts))
	for i, s := range p.Stmts {
		parts[i] = s.QString()
	}
	return strings.Join(parts, ";")
}

// Walk applies fn to every node of the tree in depth-first pre-order; fn
// returning false prunes the subtree.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch x := n.(type) {
	case *Monad:
		Walk(x.X, fn)
	case *Dyad:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Apply:
		Walk(x.Fn, fn)
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *Lambda:
		for _, s := range x.Body {
			Walk(s, fn)
		}
	case *Assign:
		Walk(x.Expr, fn)
	case *Return:
		Walk(x.Expr, fn)
	case *ListExpr:
		for _, it := range x.Items {
			Walk(it, fn)
		}
	case *AdverbExpr:
		Walk(x.Verb, fn)
	case *SQLTemplate:
		for _, c := range x.Cols {
			Walk(c.Expr, fn)
		}
		for _, c := range x.By {
			Walk(c.Expr, fn)
		}
		Walk(x.From, fn)
		for _, w := range x.Where {
			Walk(w, fn)
		}
	case *Program:
		for _, s := range x.Stmts {
			Walk(s, fn)
		}
	}
}

// Vars returns the distinct free variable names referenced anywhere in the
// tree, in first-appearance order. Lambda parameters are not tracked as
// bound here; callers that care use scopes.
func Vars(n Node) []string {
	var out []string
	seen := map[string]bool{}
	Walk(n, func(m Node) bool {
		if v, ok := m.(*Var); ok && !seen[v.Name] {
			seen[v.Name] = true
			out = append(out, v.Name)
		}
		return true
	})
	return out
}
