package ast

import (
	"testing"

	"hyperq/internal/qlang/qval"
)

func TestQStringRendering(t *testing.T) {
	cases := []struct {
		n    Node
		want string
	}{
		{&Lit{Val: qval.Long(42)}, "42"},
		{&Var{Name: "trades"}, "trades"},
		{&Monad{Op: "count", X: &Var{Name: "x"}}, "count x"},
		{&Dyad{Op: "+", L: &Lit{Val: qval.Long(1)}, R: &Lit{Val: qval.Long(2)}}, "1+2"},
		{&Assign{Name: "x", Expr: &Lit{Val: qval.Long(5)}}, "x:5"},
		{&Assign{Name: "x", Global: true, Expr: &Lit{Val: qval.Long(5)}}, "x::5"},
		{&Return{Expr: &Var{Name: "y"}}, ":y"},
		{&Apply{Fn: &Var{Name: "f"}, Args: []Node{&Var{Name: "a"}, &Var{Name: "b"}}}, "f[a;b]"},
		{&ListExpr{Items: []Node{&Lit{Val: qval.Long(1)}, &Var{Name: "z"}}}, "(1;z)"},
		{&AdverbExpr{Adverb: "/", Verb: &Var{Name: "+"}}, "+/"},
	}
	for _, c := range cases {
		if got := c.n.QString(); got != c.want {
			t.Errorf("QString = %q, want %q", got, c.want)
		}
	}
}

func TestTemplateQString(t *testing.T) {
	tpl := &SQLTemplate{
		Kind: Select,
		Cols: []ColSpec{{Name: "mx", Expr: &Apply{Fn: &Var{Name: "max"}, Args: []Node{&Var{Name: "Price"}}}}},
		By:   []ColSpec{{Expr: &Var{Name: "Symbol"}}},
		From: &Var{Name: "trades"},
		Where: []Node{
			&Dyad{Op: "=", L: &Var{Name: "Sym"}, R: &Lit{Val: qval.Symbol("GOOG")}},
		},
	}
	want := "select mx:max[Price] by Symbol from trades where Sym=`GOOG"
	if got := tpl.QString(); got != want {
		t.Errorf("template QString = %q, want %q", got, want)
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	tpl := &SQLTemplate{
		Kind:  Select,
		Cols:  []ColSpec{{Expr: &Var{Name: "a"}}},
		From:  &Var{Name: "t"},
		Where: []Node{&Dyad{Op: ">", L: &Var{Name: "b"}, R: &Lit{Val: qval.Long(0)}}},
	}
	count := 0
	Walk(tpl, func(Node) bool { count++; return true })
	// template + col var + from var + dyad + dyad children
	if count != 6 {
		t.Errorf("visited %d nodes, want 6", count)
	}
}

func TestWalkPrunes(t *testing.T) {
	d := &Dyad{Op: "+", L: &Var{Name: "a"}, R: &Var{Name: "b"}}
	count := 0
	Walk(d, func(n Node) bool {
		count++
		return false // prune at root
	})
	if count != 1 {
		t.Errorf("pruned walk visited %d", count)
	}
}

func TestVarsOrderAndDedup(t *testing.T) {
	n := &Dyad{Op: "+",
		L: &Var{Name: "x"},
		R: &Dyad{Op: "*", L: &Var{Name: "y"}, R: &Var{Name: "x"}}}
	vars := Vars(n)
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Errorf("Vars = %v", vars)
	}
}

func TestTemplateKindStrings(t *testing.T) {
	for k, want := range map[TemplateKind]string{
		Select: "select", Exec: "exec", Update: "update", Delete: "delete",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
