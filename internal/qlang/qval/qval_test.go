package qval

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTypeCodes(t *testing.T) {
	cases := []struct {
		v    Value
		want Type
	}{
		{Bool(true), -1},
		{Byte(7), -4},
		{Short(1), -5},
		{Int(1), -6},
		{Long(1), -7},
		{Real(1), -8},
		{Float(1), -9},
		{Char('a'), -10},
		{Symbol("x"), -11},
		{Temporal{T: KTimestamp}, -12},
		{Temporal{T: KDate}, -14},
		{Datetime(0), -15},
		{BoolVec{true}, 1},
		{LongVec{1}, 7},
		{SymbolVec{"a"}, 11},
		{List{Long(1)}, 0},
		{&Table{}, 98},
		{&Dict{Keys: LongVec{}, Vals: LongVec{}}, 99},
		{&Lambda{}, 100},
	}
	for _, c := range cases {
		if got := c.v.Type(); got != c.want {
			t.Errorf("%v: type = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestAtomLenIsMinusOne(t *testing.T) {
	atoms := []Value{Bool(true), Byte(1), Short(1), Int(1), Long(1), Real(1), Float(1),
		Char('a'), Symbol("s"), Temporal{T: KDate, V: 1}, Datetime(1), &Lambda{}, Identity}
	for _, a := range atoms {
		if a.Len() != -1 {
			t.Errorf("%v: Len = %d, want -1", a, a.Len())
		}
		if !IsAtom(a) {
			t.Errorf("%v: IsAtom = false", a)
		}
	}
}

func TestAtomFormatting(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Bool(true), "1b"},
		{Bool(false), "0b"},
		{Byte(0xab), "0xab"},
		{Short(3), "3h"},
		{Int(42), "42i"},
		{Long(-7), "-7"},
		{Long(NullLong), "0N"},
		{Float(2.5), "2.5"},
		{Float(3), "3f"},
		{Float(math.NaN()), "0n"},
		{Float(math.Inf(1)), "0w"},
		{Float(math.Inf(-1)), "-0w"},
		{Symbol("GOOG"), "`GOOG"},
		{Symbol(""), "`"},
		{Char('q'), `"q"`},
		{MkDate(2024, 1, 15), "2024.01.15"},
		{MkTime(9, 30, 0, 0), "09:30:00.000"},
		{MkMinute(14, 5), "14:05"},
		{MkSecond(1, 2, 3), "01:02:03"},
		{MkMonth(2016, 6), "2016.06m"},
		{Temporal{T: KDate, V: NullLong}, "0Nd"},
		{Temporal{T: KTime, V: NullLong}, "0Nt"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestVectorFormatting(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{BoolVec{true, false, true}, "101b"},
		{ByteVec{0xde, 0xad}, "0xdead"},
		{LongVec{1, 2, 3}, "1 2 3"},
		{IntVec{4, 5}, "4 5i"},
		{FloatVec{1.5, 2.5}, "1.5 2.5"},
		{SymbolVec{"a", "b"}, "`a`b"},
		{CharVec("hi"), `"hi"`},
		{CharVec(`say "hi"`), `"say \"hi\""`},
		{LongVec{}, "`long$()"},
		{SymbolVec{}, "`symbol$()"},
		{List{}, "()"},
		{List{Long(1), Symbol("x")}, "(1;`x)"},
		{List{Long(9)}, "enlist 9"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTimestampFormat(t *testing.T) {
	ts := MkTimestamp(2016, 6, 26, 9, 30, 15, 123456789)
	want := "2016.06.26D09:30:15.123456789"
	if got := ts.String(); got != want {
		t.Errorf("timestamp = %q, want %q", got, want)
	}
}

func TestTemporalConversionsRoundTrip(t *testing.T) {
	base := time.Date(2016, 6, 26, 0, 0, 0, 0, time.UTC)
	days := DateFromTime(base)
	if got := TimeFromDate(days); !got.Equal(base) {
		t.Errorf("date round trip: got %v want %v", got, base)
	}
	ns := TimestampFromTime(base.Add(90 * time.Minute))
	if got := TimeFromTimestamp(ns); !got.Equal(base.Add(90 * time.Minute)) {
		t.Errorf("timestamp round trip failed")
	}
}

func TestNulls(t *testing.T) {
	for _, tc := range []Type{KShort, KInt, KLong, KReal, KFloat, KChar, KSymbol,
		KTimestamp, KMonth, KDate, KDatetime, KTimespan, KMinute, KSecond, KTime} {
		n := Null(tc)
		if !IsNull(n) {
			t.Errorf("Null(%s) not IsNull", TypeName(tc))
		}
		if n.Type() != -tc {
			t.Errorf("Null(%s).Type() = %d, want %d", TypeName(tc), n.Type(), -tc)
		}
	}
	if IsNull(Long(0)) || IsNull(Symbol("x")) || IsNull(Float(0)) {
		t.Error("non-null values reported null")
	}
}

func TestTwoValuedNullEquality(t *testing.T) {
	// Paper §2.2: two nulls compare equal in Q (unlike SQL).
	if !EqualValues(Null(KLong), Null(KLong)) {
		t.Error("0N = 0N should hold in Q")
	}
	if !EqualValues(Null(KFloat), Null(KFloat)) {
		t.Error("0n = 0n should hold in Q")
	}
	if !EqualValues(Null(KSymbol), Null(KSymbol)) {
		t.Error("` = ` should hold in Q")
	}
	if EqualValues(Null(KLong), Long(0)) {
		t.Error("0N = 0 should not hold")
	}
	if EqualValues(Null(KSymbol), Null(KLong)) {
		t.Error("nulls of unrelated families should not compare equal")
	}
	if !EqualValues(Null(KLong), Null(KInt)) {
		t.Error("integer-family nulls compare equal under numeric widening")
	}
}

func TestNumericWideningEquality(t *testing.T) {
	if !EqualValues(Int(5), Long(5)) {
		t.Error("5i = 5 should hold")
	}
	if !EqualValues(Long(5), Float(5)) {
		t.Error("5 = 5f should hold")
	}
	if EqualValues(Long(5), Long(6)) {
		t.Error("5 = 6 should not hold")
	}
	if !EqualValues(Bool(true), Long(1)) {
		t.Error("1b = 1 should hold")
	}
}

func TestIndexing(t *testing.T) {
	v := LongVec{10, 20, 30}
	if got := Index(v, 1); !EqualValues(got, Long(20)) {
		t.Errorf("Index = %v", got)
	}
	if got := Index(v, 5); !IsNull(got) {
		t.Errorf("out-of-range index should be null, got %v", got)
	}
	if got := Index(v, -1); !IsNull(got) {
		t.Errorf("negative index should be null, got %v", got)
	}
	s := SymbolVec{"a", "b"}
	if got := Index(s, 9); got.(Symbol) != "" {
		t.Errorf("oob symbol index = %v", got)
	}
	// atoms behave as constants under indexing
	if got := Index(Long(7), 3); !EqualValues(got, Long(7)) {
		t.Errorf("atom index = %v", got)
	}
}

func TestTakeIndexes(t *testing.T) {
	v := FloatVec{1, 2, 3}
	got := TakeIndexes(v, []int{2, 0, 7}).(FloatVec)
	if got[0] != 3 || got[1] != 1 || !math.IsNaN(got[2]) {
		t.Errorf("TakeIndexes = %v", got)
	}
	tv := TemporalVec{T: KDate, V: []int64{100, 200}}
	g2 := TakeIndexes(tv, []int{1, 5}).(TemporalVec)
	if g2.V[0] != 200 || g2.V[1] != NullLong || g2.T != KDate {
		t.Errorf("temporal TakeIndexes = %v", g2)
	}
}

func TestAppendAtomWidening(t *testing.T) {
	v := AppendAtom(LongVec{1, 2}, Long(3))
	if v.Type() != KLong || v.Len() != 3 {
		t.Fatalf("append same type = %v", v)
	}
	w := AppendAtom(LongVec{1, 2}, Symbol("x"))
	if w.Type() != KList || w.Len() != 3 {
		t.Fatalf("append mixed should widen to list, got %v", w)
	}
	if !EqualValues(Index(w, 2), Symbol("x")) {
		t.Errorf("widened element = %v", Index(w, 2))
	}
}

func TestFromAtoms(t *testing.T) {
	v := FromAtoms([]Value{Long(1), Long(2)})
	if v.Type() != KLong {
		t.Errorf("uniform atoms should pack to typed vector, got type %d", v.Type())
	}
	m := FromAtoms([]Value{Long(1), Symbol("a")})
	if m.Type() != KList {
		t.Errorf("mixed atoms should pack to list, got type %d", m.Type())
	}
	e := FromAtoms(nil)
	if e.Type() != KList || e.Len() != 0 {
		t.Errorf("empty pack = %v", e)
	}
	sy := FromAtoms([]Value{Symbol("a"), Symbol("b")})
	if sy.Type() != KSymbol {
		t.Errorf("symbols should pack to symbol vector")
	}
}

func TestDictLookup(t *testing.T) {
	d := NewDict(SymbolVec{"a", "b"}, LongVec{1, 2})
	if got := d.Lookup(Symbol("b")); !EqualValues(got, Long(2)) {
		t.Errorf("lookup = %v", got)
	}
	if got := d.Lookup(Symbol("zz")); !IsNull(got) {
		t.Errorf("missing key should yield null, got %v", got)
	}
	if d.Len() != 2 {
		t.Errorf("dict len = %d", d.Len())
	}
	if got := d.String(); got != "`a`b!1 2" {
		t.Errorf("dict string = %q", got)
	}
}

func TestDictLengthMismatchPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Error("NewDict with mismatched lengths should panic with 'length")
		}
	}()
	NewDict(SymbolVec{"a"}, LongVec{1, 2})
}

func newTradesTable() *Table {
	return NewTable(
		[]string{"Symbol", "Time", "Price"},
		[]Value{
			SymbolVec{"GOOG", "IBM", "GOOG"},
			TemporalVec{T: KTime, V: []int64{34200000, 34201000, 34202000}},
			FloatVec{101.5, 150.25, 101.75},
		})
}

func TestTableBasics(t *testing.T) {
	tr := newTradesTable()
	if tr.Len() != 3 || tr.NumCols() != 3 {
		t.Fatalf("table shape = %dx%d", tr.Len(), tr.NumCols())
	}
	col, ok := tr.Column("Price")
	if !ok || col.Len() != 3 {
		t.Fatal("Column(Price) lookup failed")
	}
	if _, ok := tr.Column("nope"); ok {
		t.Error("Column(nope) should miss")
	}
	row := tr.Row(1)
	if !EqualValues(row.Lookup(Symbol("Symbol")), Symbol("IBM")) {
		t.Errorf("Row(1) = %v", row)
	}
	sub := tr.Take([]int{2, 0})
	if sub.Len() != 2 {
		t.Fatalf("Take len = %d", sub.Len())
	}
	p, _ := sub.Column("Price")
	if p.(FloatVec)[0] != 101.75 {
		t.Errorf("Take order wrong: %v", p)
	}
}

func TestTableSlice(t *testing.T) {
	tr := newTradesTable()
	s := tr.Slice(1, 3)
	if s.Len() != 2 {
		t.Fatalf("Slice len = %d", s.Len())
	}
	sym, _ := s.Column("Symbol")
	if sym.(SymbolVec)[0] != "IBM" {
		t.Errorf("Slice content = %v", sym)
	}
}

func TestKeyTableAndUnkey(t *testing.T) {
	tr := newTradesTable()
	kt, err := KeyTable([]string{"Symbol"}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !kt.IsKeyedTable() {
		t.Fatal("KeyTable should produce a keyed table")
	}
	back, ok := Unkey(kt)
	if !ok {
		t.Fatal("Unkey failed")
	}
	if back.NumCols() != 3 || back.ColumnIndex("Symbol") != 0 {
		t.Errorf("Unkey columns = %v", back.Cols)
	}
	if _, err := KeyTable([]string{"missing"}, tr); err == nil {
		t.Error("KeyTable with missing column should error")
	}
}

func TestCompareOrdering(t *testing.T) {
	if Compare(Long(1), Long(2)) != -1 || Compare(Long(2), Long(1)) != 1 || Compare(Long(2), Long(2)) != 0 {
		t.Error("long compare broken")
	}
	if Compare(Null(KLong), Long(-100)) != -1 {
		t.Error("null should sort first")
	}
	if Compare(Symbol("a"), Symbol("b")) != -1 {
		t.Error("symbol compare broken")
	}
	if Compare(Int(3), Float(3.5)) != -1 {
		t.Error("cross-width numeric compare broken")
	}
}

func TestEnlist(t *testing.T) {
	if v := Enlist(Long(5)); v.Type() != KLong || v.Len() != 1 {
		t.Errorf("Enlist long = %v", v)
	}
	if v := Enlist(Symbol("a")); v.Type() != KSymbol {
		t.Errorf("Enlist symbol = %v", v)
	}
	if v := Enlist(&Table{}); v.Type() != KList {
		t.Errorf("Enlist table = %v", v)
	}
}

func TestCharCodeRoundTrip(t *testing.T) {
	for _, tc := range []Type{KBool, KByte, KShort, KInt, KLong, KReal, KFloat, KChar,
		KSymbol, KTimestamp, KMonth, KDate, KDatetime, KTimespan, KMinute, KSecond, KTime} {
		if got := TypeFromCharCode(CharCode(tc)); got != tc {
			t.Errorf("char code round trip %s -> %c -> %s", TypeName(tc), CharCode(tc), TypeName(got))
		}
	}
}

// Property: Index after FromAtoms recovers the original atoms.
func TestPropFromAtomsIndex(t *testing.T) {
	f := func(xs []int64) bool {
		atoms := make([]Value, len(xs))
		for i, x := range xs {
			atoms[i] = Long(x)
		}
		v := FromAtoms(atoms)
		for i := range xs {
			if !EqualValues(Index(v, i), atoms[i]) {
				return false
			}
		}
		return v.Len() == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EqualValues is reflexive for long/float/symbol vectors.
func TestPropEqualReflexive(t *testing.T) {
	f := func(xs []int64, ys []float64, zs []string) bool {
		lv := LongVec(xs)
		fv := FloatVec(ys)
		sv := SymbolVec(zs)
		return EqualValues(lv, lv) && EqualValues(fv, fv) && EqualValues(sv, sv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: TakeIndexes of til(n) is the identity permutation.
func TestPropTakeIdentity(t *testing.T) {
	f := func(xs []int64) bool {
		v := LongVec(xs)
		idx := make([]int, len(xs))
		for i := range idx {
			idx[i] = i
		}
		return EqualValues(TakeIndexes(v, idx), v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric on longs.
func TestPropCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Long(a), Long(b)) == -Compare(Long(b), Long(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTil(t *testing.T) {
	v := Til(4)
	if !EqualValues(v, LongVec{0, 1, 2, 3}) {
		t.Errorf("til 4 = %v", v)
	}
	if Til(0).Len() != 0 {
		t.Error("til 0 should be empty")
	}
}

func TestTableStringRendering(t *testing.T) {
	s := newTradesTable().String()
	if s == "" {
		t.Fatal("empty table rendering")
	}
	for _, want := range []string{"Symbol", "Price", "GOOG", "150.25"} {
		if !contains(s, want) {
			t.Errorf("table rendering missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
