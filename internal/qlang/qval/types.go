// Package qval implements the Q value model used throughout the Hyper-Q
// reproduction: typed atoms, typed vectors, general lists, dictionaries,
// tables and keyed tables, together with the per-type null values,
// two-valued-logic comparison, indexing and kx-style formatting that the
// kdb+ substrate, the QIPC wire protocol and the binder all rely on.
//
// Type codes follow the kx convention: a vector of longs has type 7, a long
// atom has type -7, a general list has type 0, dictionaries are 99, tables
// are 98 and lambdas are 100. Temporal values are stored relative to the kdb+
// epoch 2000.01.01.
package qval

import "fmt"

// Type is a kx type code. Positive codes denote vectors (and the compound
// types dict/table/lambda); the negation of a vector code denotes the
// corresponding atom. Code 0 is the general (mixed) list.
type Type int8

// Vector type codes (atoms are the negated values).
const (
	KList      Type = 0  // general list
	KBool      Type = 1  // boolean
	KGUID      Type = 2  // guid (unsupported payload, kept for completeness)
	KByte      Type = 4  // byte
	KShort     Type = 5  // 16-bit integer
	KInt       Type = 6  // 32-bit integer
	KLong      Type = 7  // 64-bit integer
	KReal      Type = 8  // 32-bit float
	KFloat     Type = 9  // 64-bit float
	KChar      Type = 10 // character
	KSymbol    Type = 11 // interned symbol
	KTimestamp Type = 12 // nanoseconds since 2000.01.01
	KMonth     Type = 13 // months since 2000.01
	KDate      Type = 14 // days since 2000.01.01
	KDatetime  Type = 15 // fractional days since 2000.01.01 (deprecated in kdb+)
	KTimespan  Type = 16 // nanoseconds
	KMinute    Type = 17 // minutes since midnight
	KSecond    Type = 18 // seconds since midnight
	KTime      Type = 19 // milliseconds since midnight
	KTable     Type = 98
	KDict      Type = 99
	KLambda    Type = 100
	KUnary     Type = 101 // unary primitive (e.g. ::)
	KError     Type = -128
)

// Value is a Q value: an atom, a vector, a general list, a dictionary, a
// table or a function. Len reports the number of elements and is -1 for
// atoms. String renders the value in kx display format.
type Value interface {
	// Type returns the kx type code of the value.
	Type() Type
	// Len returns the element count, or -1 when the value is an atom.
	Len() int
	// String renders the value in a kx-like display format.
	String() string
}

// IsAtom reports whether v is an atom (negative type code, or a lambda).
func IsAtom(v Value) bool { return v.Len() < 0 }

// IsVector reports whether v is a typed vector or general list.
func IsVector(v Value) bool {
	t := v.Type()
	return t >= KList && t <= KTime
}

// IsTemporal reports whether t (a vector code or its negation) denotes one of
// the temporal types.
func IsTemporal(t Type) bool {
	if t < 0 {
		t = -t
	}
	return t >= KTimestamp && t <= KTime
}

// IsNumeric reports whether t denotes a numeric (non-temporal) type.
func IsNumeric(t Type) bool {
	if t < 0 {
		t = -t
	}
	switch t {
	case KBool, KByte, KShort, KInt, KLong, KReal, KFloat:
		return true
	}
	return false
}

// TypeName returns the kdb+ name of a type code ("long", "symbol", ...).
func TypeName(t Type) string {
	if t < 0 {
		t = -t
	}
	switch t {
	case KList:
		return "list"
	case KBool:
		return "boolean"
	case KGUID:
		return "guid"
	case KByte:
		return "byte"
	case KShort:
		return "short"
	case KInt:
		return "int"
	case KLong:
		return "long"
	case KReal:
		return "real"
	case KFloat:
		return "float"
	case KChar:
		return "char"
	case KSymbol:
		return "symbol"
	case KTimestamp:
		return "timestamp"
	case KMonth:
		return "month"
	case KDate:
		return "date"
	case KDatetime:
		return "datetime"
	case KTimespan:
		return "timespan"
	case KMinute:
		return "minute"
	case KSecond:
		return "second"
	case KTime:
		return "time"
	case KTable:
		return "table"
	case KDict:
		return "dict"
	case KLambda:
		return "lambda"
	case KUnary:
		return "unary"
	default:
		return fmt.Sprintf("type%d", int(t))
	}
}

// CharCode returns the single-character type letter kdb+ uses in meta
// results ("j" for long, "s" for symbol, ...).
func CharCode(t Type) byte {
	if t < 0 {
		t = -t
	}
	switch t {
	case KBool:
		return 'b'
	case KGUID:
		return 'g'
	case KByte:
		return 'x'
	case KShort:
		return 'h'
	case KInt:
		return 'i'
	case KLong:
		return 'j'
	case KReal:
		return 'e'
	case KFloat:
		return 'f'
	case KChar:
		return 'c'
	case KSymbol:
		return 's'
	case KTimestamp:
		return 'p'
	case KMonth:
		return 'm'
	case KDate:
		return 'd'
	case KDatetime:
		return 'z'
	case KTimespan:
		return 'n'
	case KMinute:
		return 'u'
	case KSecond:
		return 'v'
	case KTime:
		return 't'
	default:
		return ' '
	}
}

// TypeFromCharCode is the inverse of CharCode; it returns the vector type
// for a meta type letter, or KList when the letter is unknown.
func TypeFromCharCode(c byte) Type {
	switch c {
	case 'b':
		return KBool
	case 'g':
		return KGUID
	case 'x':
		return KByte
	case 'h':
		return KShort
	case 'i':
		return KInt
	case 'j':
		return KLong
	case 'e':
		return KReal
	case 'f':
		return KFloat
	case 'c':
		return KChar
	case 's':
		return KSymbol
	case 'p':
		return KTimestamp
	case 'm':
		return KMonth
	case 'd':
		return KDate
	case 'z':
		return KDatetime
	case 'n':
		return KTimespan
	case 'u':
		return KMinute
	case 'v':
		return KSecond
	case 't':
		return KTime
	default:
		return KList
	}
}
