package qval

import (
	"fmt"
	"strings"
)

// Table is a Q table (kx type 98): an ordered collection of equal-length
// named columns. Order is a first-class property — rows are identified by
// position, which is exactly the semantics Hyper-Q must preserve when
// translating to set-oriented SQL (paper §2.2, §3.3).
type Table struct {
	Cols []string // column names, in declaration order
	Data []Value  // one vector (or general list) per column
}

// Type implements Value.
func (*Table) Type() Type { return KTable }

// Len implements Value; the length of a table is its row count.
func (t *Table) Len() int {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Data[0].Len()
}

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.Cols) }

// NewTable builds a table after validating that all columns have the same
// length; it panics with a 'length QError on mismatch.
func NewTable(cols []string, data []Value) *Table {
	if len(cols) != len(data) {
		panic(Errorf("mismatch: column names vs columns"))
	}
	n := -1
	for _, d := range data {
		if n == -1 {
			n = d.Len()
		} else if d.Len() != n {
			panic(Errorf("length"))
		}
	}
	return &Table{Cols: cols, Data: data}
}

// Column returns the column with the given name and whether it exists.
func (t *Table) Column(name string) (Value, bool) {
	for i, c := range t.Cols {
		if c == name {
			return t.Data[i], true
		}
	}
	return nil, false
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Row materializes row i as a dictionary from column names to atom values,
// matching Q's indexing of a table by a row number.
func (t *Table) Row(i int) *Dict {
	vals := make(List, len(t.Data))
	for j, col := range t.Data {
		vals[j] = Index(col, i)
	}
	return NewDict(SymbolVec(append([]string(nil), t.Cols...)), vals)
}

// Take returns a new table containing the rows selected by idx, in idx
// order. Out-of-range indexes yield nulls, matching Q indexing.
func (t *Table) Take(idx []int) *Table {
	data := make([]Value, len(t.Data))
	for j, col := range t.Data {
		data[j] = TakeIndexes(col, idx)
	}
	return &Table{Cols: append([]string(nil), t.Cols...), Data: data}
}

// Slice returns rows [lo,hi) as a new table sharing column storage.
func (t *Table) Slice(lo, hi int) *Table {
	data := make([]Value, len(t.Data))
	for j, col := range t.Data {
		data[j] = sliceVec(col, lo, hi)
	}
	return &Table{Cols: append([]string(nil), t.Cols...), Data: data}
}

// String renders the table in a bordered kx-console-like format, capped at
// 20 rows.
func (t *Table) String() string {
	var b strings.Builder
	n := t.Len()
	shown := n
	const cap = 20
	if shown > cap {
		shown = cap
	}
	cells := make([][]string, len(t.Cols))
	widths := make([]int, len(t.Cols))
	for j, c := range t.Cols {
		widths[j] = len(c)
		cells[j] = make([]string, shown)
		for i := 0; i < shown; i++ {
			s := cellString(t.Data[j], i)
			cells[j][i] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	for j, c := range t.Cols {
		if j > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%-*s", widths[j], c)
	}
	b.WriteByte('\n')
	total := 0
	for j := range t.Cols {
		total += widths[j] + 1
	}
	b.WriteString(strings.Repeat("-", max(total-1, 1)))
	b.WriteByte('\n')
	for i := 0; i < shown; i++ {
		for j := range t.Cols {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%-*s", widths[j], cells[j][i])
		}
		b.WriteByte('\n')
	}
	if n > shown {
		fmt.Fprintf(&b, "..(%d rows)\n", n)
	}
	return b.String()
}

func cellString(col Value, i int) string {
	v := Index(col, i)
	if s, ok := v.(Symbol); ok {
		return string(s) // console style: symbols in tables render bare
	}
	if c, ok := v.(CharVec); ok {
		return string(c)
	}
	s := v.String()
	return strings.TrimSuffix(s, "f")
}

// KeyTable splits a table into a keyed table (a dict of tables) on the given
// key columns, mirroring Q's xkey.
func KeyTable(keys []string, t *Table) (*Dict, error) {
	var kc, vc []string
	var kd, vd []Value
	for _, k := range keys {
		i := t.ColumnIndex(k)
		if i < 0 {
			return nil, Errorf(k)
		}
		kc = append(kc, k)
		kd = append(kd, t.Data[i])
	}
	for i, c := range t.Cols {
		if !containsStr(keys, c) {
			vc = append(vc, c)
			vd = append(vd, t.Data[i])
		}
	}
	return &Dict{Keys: &Table{Cols: kc, Data: kd}, Vals: &Table{Cols: vc, Data: vd}}, nil
}

// Unkey flattens a keyed table back into a plain table (Q's 0!).
func Unkey(v Value) (*Table, bool) {
	switch x := v.(type) {
	case *Table:
		return x, true
	case *Dict:
		kt, ok1 := x.Keys.(*Table)
		vt, ok2 := x.Vals.(*Table)
		if !ok1 || !ok2 {
			return nil, false
		}
		cols := append(append([]string(nil), kt.Cols...), vt.Cols...)
		data := append(append([]Value(nil), kt.Data...), vt.Data...)
		return &Table{Cols: cols, Data: data}, true
	default:
		return nil, false
	}
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
