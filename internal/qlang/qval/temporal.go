package qval

import (
	"fmt"
	"time"
)

// KdbEpoch is the kdb+ temporal epoch, 2000.01.01T00:00:00 UTC. Dates count
// days from it, timestamps count nanoseconds from it.
var KdbEpoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

const (
	nsPerDay    = int64(24) * 3600 * 1e9
	msPerDay    = int64(24) * 3600 * 1e3
	secPerDay   = int64(24) * 3600
	minPerDay   = int64(24) * 60
	nsPerSecond = int64(1e9)
)

// DateFromTime converts a wall-clock time to a kdb+ date count (days since
// 2000.01.01, UTC).
func DateFromTime(t time.Time) int64 {
	return int64(t.UTC().Truncate(24*time.Hour).Sub(KdbEpoch) / (24 * time.Hour))
}

// TimeOfDayMillis returns the kdb+ time-of-day (milliseconds since midnight)
// of t in UTC.
func TimeOfDayMillis(t time.Time) int64 {
	u := t.UTC()
	return int64(u.Hour())*3600000 + int64(u.Minute())*60000 + int64(u.Second())*1000 + int64(u.Nanosecond())/1e6
}

// TimestampFromTime converts a wall-clock time to kdb+ timestamp nanoseconds.
func TimestampFromTime(t time.Time) int64 { return t.UTC().Sub(KdbEpoch).Nanoseconds() }

// TimeFromTimestamp converts kdb+ timestamp nanoseconds back to wall-clock.
func TimeFromTimestamp(ns int64) time.Time { return KdbEpoch.Add(time.Duration(ns)) }

// TimeFromDate converts a kdb+ date count back to wall-clock midnight UTC.
func TimeFromDate(days int64) time.Time { return KdbEpoch.AddDate(0, 0, int(days)) }

// MkDate builds a date atom from calendar components.
func MkDate(y, m, d int) Temporal {
	t := time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
	return Temporal{T: KDate, V: DateFromTime(t)}
}

// MkTime builds a time atom (milliseconds since midnight).
func MkTime(h, m, s, ms int) Temporal {
	return Temporal{T: KTime, V: int64(h)*3600000 + int64(m)*60000 + int64(s)*1000 + int64(ms)}
}

// MkTimestamp builds a timestamp atom from calendar components.
func MkTimestamp(y, mo, d, h, mi, s int, ns int64) Temporal {
	t := time.Date(y, time.Month(mo), d, h, mi, s, int(ns), time.UTC)
	return Temporal{T: KTimestamp, V: TimestampFromTime(t)}
}

// MkMonth builds a month atom (months since 2000.01).
func MkMonth(y, m int) Temporal {
	return Temporal{T: KMonth, V: int64((y-2000)*12 + m - 1)}
}

// MkMinute builds a minute atom.
func MkMinute(h, m int) Temporal { return Temporal{T: KMinute, V: int64(h*60 + m)} }

// MkSecond builds a second atom.
func MkSecond(h, m, s int) Temporal { return Temporal{T: KSecond, V: int64(h*3600 + m*60 + s)} }

// MkTimespan builds a timespan atom from a duration.
func MkTimespan(d time.Duration) Temporal { return Temporal{T: KTimespan, V: d.Nanoseconds()} }

func formatTemporal(t Type, v int64) string {
	if v == NullLong {
		switch t {
		case KTimestamp:
			return "0Np"
		case KMonth:
			return "0Nm"
		case KDate:
			return "0Nd"
		case KTimespan:
			return "0Nn"
		case KMinute:
			return "0Nu"
		case KSecond:
			return "0Nv"
		case KTime:
			return "0Nt"
		}
	}
	switch t {
	case KDate:
		d := TimeFromDate(v)
		return fmt.Sprintf("%04d.%02d.%02d", d.Year(), d.Month(), d.Day())
	case KMonth:
		y := 2000 + int(v)/12
		m := int(v)%12 + 1
		if int(v) < 0 && int(v)%12 != 0 {
			y--
			m = int(v)%12 + 13
		}
		return fmt.Sprintf("%04d.%02dm", y, m)
	case KTime:
		neg := ""
		if v < 0 {
			neg, v = "-", -v
		}
		return fmt.Sprintf("%s%02d:%02d:%02d.%03d", neg, v/3600000, v/60000%60, v/1000%60, v%1000)
	case KSecond:
		neg := ""
		if v < 0 {
			neg, v = "-", -v
		}
		return fmt.Sprintf("%s%02d:%02d:%02d", neg, v/3600, v/60%60, v%60)
	case KMinute:
		neg := ""
		if v < 0 {
			neg, v = "-", -v
		}
		return fmt.Sprintf("%s%02d:%02d", neg, v/60, v%60)
	case KTimespan:
		neg := ""
		if v < 0 {
			neg, v = "-", -v
		}
		d := v / nsPerDay
		r := v % nsPerDay
		return fmt.Sprintf("%s%dD%02d:%02d:%02d.%09d", neg, d, r/3600000000000, r/60000000000%60, r/1000000000%60, r%1000000000)
	case KTimestamp:
		w := TimeFromTimestamp(v)
		return fmt.Sprintf("%04d.%02d.%02dD%02d:%02d:%02d.%09d",
			w.Year(), w.Month(), w.Day(), w.Hour(), w.Minute(), w.Second(), w.Nanosecond())
	default:
		return fmt.Sprintf("%d?%s", v, TypeName(t))
	}
}

func formatDatetime(v float64) string {
	if v != v { // NaN
		return "0Nz"
	}
	ns := int64(v * float64(nsPerDay))
	w := TimeFromTimestamp(ns)
	return fmt.Sprintf("%04d.%02d.%02dT%02d:%02d:%02d.%03d",
		w.Year(), w.Month(), w.Day(), w.Hour(), w.Minute(), w.Second(), w.Nanosecond()/1e6)
}
