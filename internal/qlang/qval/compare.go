package qval

import "math"

// EqualValues implements Q's two-valued-logic equality: nulls of the same
// type compare equal (in contrast to SQL, where NULL = NULL is unknown —
// paper §2.2). Numeric values of different widths compare by magnitude, as
// in Q. Compound values compare structurally.
func EqualValues(a, b Value) bool {
	if na, nb := IsNull(a), IsNull(b); na || nb {
		if na != nb {
			return false
		}
		// both null: equal when type families are comparable
		return comparableFamily(a.Type(), b.Type())
	}
	af, aok := numeric(a)
	bf, bok := numeric(b)
	if aok && bok {
		return af == bf
	}
	switch x := a.(type) {
	case Symbol:
		y, ok := b.(Symbol)
		return ok && x == y
	case Char:
		y, ok := b.(Char)
		return ok && x == y
	case Bool:
		y, ok := b.(Bool)
		return ok && x == y
	case Byte:
		y, ok := b.(Byte)
		return ok && x == y
	case Temporal:
		y, ok := b.(Temporal)
		return ok && x.T == y.T && x.V == y.V
	case Unary:
		y, ok := b.(Unary)
		return ok && x == y
	case CharVec:
		y, ok := b.(CharVec)
		return ok && string(x) == string(y)
	case *Dict:
		y, ok := b.(*Dict)
		return ok && EqualValues(x.Keys, y.Keys) && EqualValues(x.Vals, y.Vals)
	case *Table:
		y, ok := b.(*Table)
		if !ok || len(x.Cols) != len(y.Cols) {
			return false
		}
		for i := range x.Cols {
			if x.Cols[i] != y.Cols[i] || !EqualValues(x.Data[i], y.Data[i]) {
				return false
			}
		}
		return true
	}
	// vector vs vector, elementwise
	if !IsAtom(a) && !IsAtom(b) {
		n := a.Len()
		if n != b.Len() {
			return false
		}
		for i := 0; i < n; i++ {
			if !EqualValues(Index(a, i), Index(b, i)) {
				return false
			}
		}
		return true
	}
	return false
}

func comparableFamily(a, b Type) bool {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a == b {
		return true
	}
	return IsNumeric(a) && IsNumeric(b)
}

func numeric(v Value) (float64, bool) {
	switch x := v.(type) {
	case Bool:
		if x {
			return 1, true
		}
		return 0, true
	case Byte:
		return float64(x), true
	case Short:
		return float64(x), true
	case Int:
		return float64(x), true
	case Long:
		return float64(x), true
	case Real:
		return float64(x), true
	case Float:
		return float64(x), true
	case Temporal:
		return float64(x.V), true
	case Datetime:
		return float64(x), true
	default:
		return 0, false
	}
}

// AsLong extracts an integer magnitude from any integral atom.
func AsLong(v Value) (int64, bool) {
	switch x := v.(type) {
	case Bool:
		if x {
			return 1, true
		}
		return 0, true
	case Byte:
		return int64(x), true
	case Short:
		return int64(x), true
	case Int:
		return int64(x), true
	case Long:
		return int64(x), true
	case Temporal:
		return x.V, true
	default:
		return 0, false
	}
}

// AsFloat extracts a float magnitude from any numeric atom.
func AsFloat(v Value) (float64, bool) { return numeric(v) }

// Compare orders two atoms: -1, 0 or +1. Nulls sort first (kdb+ sort order),
// then numerics by magnitude, then strings/symbols lexically. Values of
// incomparable types order by type code, giving a stable total order for
// sorting mixed lists.
func Compare(a, b Value) int {
	na, nb := IsNull(a), IsNull(b)
	if na && nb {
		return 0
	}
	if na {
		return -1
	}
	if nb {
		return 1
	}
	af, aok := numeric(a)
	bf, bok := numeric(b)
	if aok && bok {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	as, aok := stringy(a)
	bs, bok := stringy(b)
	if aok && bok {
		switch {
		case as < bs:
			return -1
		case as > bs:
			return 1
		default:
			return 0
		}
	}
	ta, tb := a.Type(), b.Type()
	switch {
	case ta < tb:
		return -1
	case ta > tb:
		return 1
	default:
		return 0
	}
}

func stringy(v Value) (string, bool) {
	switch x := v.(type) {
	case Symbol:
		return string(x), true
	case CharVec:
		return string(x), true
	case Char:
		return string(rune(x)), true
	default:
		return "", false
	}
}

// LessAt compares elements i and j of the same vector without materializing
// atoms, used by sort routines on hot paths.
func LessAt(v Value, i, j int) bool {
	switch x := v.(type) {
	case LongVec:
		return x[i] < x[j]
	case FloatVec:
		xi, xj := x[i], x[j]
		if math.IsNaN(xi) {
			return !math.IsNaN(xj)
		}
		if math.IsNaN(xj) {
			return false
		}
		return xi < xj
	case IntVec:
		return x[i] < x[j]
	case SymbolVec:
		return x[i] < x[j]
	case TemporalVec:
		return x.V[i] < x.V[j]
	default:
		return Compare(Index(v, i), Index(v, j)) < 0
	}
}
