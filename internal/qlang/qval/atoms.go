package qval

import (
	"fmt"
	"math"
	"strconv"
)

// Bool is a boolean atom (kx type -1).
type Bool bool

// Type implements Value.
func (Bool) Type() Type { return -KBool }

// Len implements Value; atoms report -1.
func (Bool) Len() int { return -1 }

// String renders the atom as 0b or 1b.
func (b Bool) String() string {
	if b {
		return "1b"
	}
	return "0b"
}

// Byte is a byte atom (kx type -4).
type Byte byte

// Type implements Value.
func (Byte) Type() Type { return -KByte }

// Len implements Value.
func (Byte) Len() int { return -1 }

// String renders the atom as 0xNN.
func (b Byte) String() string { return fmt.Sprintf("0x%02x", byte(b)) }

// Short is a 16-bit integer atom (kx type -5).
type Short int16

// Type implements Value.
func (Short) Type() Type { return -KShort }

// Len implements Value.
func (Short) Len() int { return -1 }

// String renders the atom with the kdb+ "h" suffix.
func (s Short) String() string {
	if int16(s) == NullShort {
		return "0Nh"
	}
	return strconv.Itoa(int(s)) + "h"
}

// Int is a 32-bit integer atom (kx type -6).
type Int int32

// Type implements Value.
func (Int) Type() Type { return -KInt }

// Len implements Value.
func (Int) Len() int { return -1 }

// String renders the atom with the kdb+ "i" suffix.
func (i Int) String() string {
	if int32(i) == NullInt {
		return "0Ni"
	}
	return strconv.Itoa(int(i)) + "i"
}

// Long is a 64-bit integer atom (kx type -7), the default integer type of
// modern kdb+.
type Long int64

// Type implements Value.
func (Long) Type() Type { return -KLong }

// Len implements Value.
func (Long) Len() int { return -1 }

// String renders the atom without a suffix, matching kdb+ 3.x display.
func (l Long) String() string {
	if int64(l) == NullLong {
		return "0N"
	}
	return strconv.FormatInt(int64(l), 10)
}

// Real is a 32-bit float atom (kx type -8).
type Real float32

// Type implements Value.
func (Real) Type() Type { return -KReal }

// Len implements Value.
func (Real) Len() int { return -1 }

// String renders the atom with the kdb+ "e" suffix.
func (r Real) String() string {
	if math.IsNaN(float64(r)) {
		return "0Ne"
	}
	return strconv.FormatFloat(float64(r), 'g', -1, 32) + "e"
}

// Float is a 64-bit float atom (kx type -9), the default floating type.
type Float float64

// Type implements Value.
func (Float) Type() Type { return -KFloat }

// Len implements Value.
func (Float) Len() int { return -1 }

// String renders the atom in kdb+ style (NaN displays as 0n).
func (f Float) String() string {
	v := float64(f)
	if math.IsNaN(v) {
		return "0n"
	}
	if math.IsInf(v, 1) {
		return "0w"
	}
	if math.IsInf(v, -1) {
		return "-0w"
	}
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if v == math.Trunc(v) && !hasExp(s) {
		s += "f"
	}
	return s
}

func hasExp(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == 'e' || s[i] == 'E' || s[i] == '.' {
			return true
		}
	}
	return false
}

// Char is a character atom (kx type -10).
type Char byte

// Type implements Value.
func (Char) Type() Type { return -KChar }

// Len implements Value.
func (Char) Len() int { return -1 }

// String renders the atom in quotes.
func (c Char) String() string { return `"` + string(rune(c)) + `"` }

// Symbol is an interned-name atom (kx type -11). The empty symbol is the
// symbol null.
type Symbol string

// Type implements Value.
func (Symbol) Type() Type { return -KSymbol }

// Len implements Value.
func (Symbol) Len() int { return -1 }

// String renders the atom with a leading backtick.
func (s Symbol) String() string { return "`" + string(s) }

// Temporal is an atom of one of the seven integer-backed temporal types
// (timestamp, month, date, timespan, minute, second, time). The value is
// held as an int64 regardless of the wire width of the type; V is
// interpreted per T (e.g. days since 2000.01.01 for dates, nanoseconds since
// 2000.01.01 for timestamps).
type Temporal struct {
	T Type  // one of KTimestamp..KTime except KDatetime; stored positive
	V int64 // magnitude in the unit of T; NullLong encodes the null
}

// Type implements Value.
func (t Temporal) Type() Type { return -t.T }

// Len implements Value.
func (Temporal) Len() int { return -1 }

// String renders the atom in kx display format for its temporal type.
func (t Temporal) String() string { return formatTemporal(t.T, t.V) }

// Datetime is the deprecated float-backed datetime atom (kx type -15),
// fractional days since 2000.01.01.
type Datetime float64

// Type implements Value.
func (Datetime) Type() Type { return -KDatetime }

// Len implements Value.
func (Datetime) Len() int { return -1 }

// String renders the atom as date+time.
func (d Datetime) String() string { return formatDatetime(float64(d)) }

// Lambda is a function value (kx type 100). Body holds the parsed function
// body as an opaque value so that qval does not depend on the AST package;
// the interpreter stores its own representation there. Source preserves the
// original text, which Hyper-Q stores verbatim in the variable scope and
// re-algebrizes on invocation (paper §4.3).
type Lambda struct {
	Params []string // formal parameter names, in order
	Source string   // original "{[a;b] ...}" text
	Body   any      // interpreter- or binder-specific representation
}

// Type implements Value.
func (*Lambda) Type() Type { return KLambda }

// Len implements Value.
func (*Lambda) Len() int { return -1 }

// String renders the original source of the function.
func (l *Lambda) String() string { return l.Source }

// Unary is a named unary primitive value such as the identity (::),
// kx type 101.
type Unary byte

// Type implements Value.
func (Unary) Type() Type { return KUnary }

// Len implements Value.
func (Unary) Len() int { return -1 }

// String renders the primitive; 0 is the identity ::.
func (u Unary) String() string {
	if u == 0 {
		return "::"
	}
	return fmt.Sprintf("unary#%d", byte(u))
}

// Identity is the Q identity value (::), used where kdb+ returns "nothing".
var Identity = Unary(0)
