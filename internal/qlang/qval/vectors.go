package qval

import (
	"math"
	"strings"
)

// BoolVec is a boolean vector (kx type 1).
type BoolVec []bool

// Type implements Value.
func (BoolVec) Type() Type { return KBool }

// Len implements Value.
func (v BoolVec) Len() int { return len(v) }

// String renders the vector as e.g. 101b.
func (v BoolVec) String() string {
	if len(v) == 0 {
		return "`boolean$()"
	}
	var b strings.Builder
	for _, x := range v {
		if x {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	b.WriteByte('b')
	return b.String()
}

// ByteVec is a byte vector (kx type 4).
type ByteVec []byte

// Type implements Value.
func (ByteVec) Type() Type { return KByte }

// Len implements Value.
func (v ByteVec) Len() int { return len(v) }

// String renders the vector as 0x hex digits.
func (v ByteVec) String() string {
	if len(v) == 0 {
		return "`byte$()"
	}
	const hex = "0123456789abcdef"
	b := make([]byte, 0, 2+2*len(v))
	b = append(b, '0', 'x')
	for _, x := range v {
		b = append(b, hex[x>>4], hex[x&0xf])
	}
	return string(b)
}

// ShortVec is a 16-bit integer vector (kx type 5).
type ShortVec []int16

// Type implements Value.
func (ShortVec) Type() Type { return KShort }

// Len implements Value.
func (v ShortVec) Len() int { return len(v) }

// String renders the vector with a trailing "h".
func (v ShortVec) String() string {
	return joinNums(len(v), "`short$()", "h", func(i int) string { return Short(v[i]).stripSuffix() })
}

func (s Short) stripSuffix() string { return strings.TrimSuffix(s.String(), "h") }

// IntVec is a 32-bit integer vector (kx type 6).
type IntVec []int32

// Type implements Value.
func (IntVec) Type() Type { return KInt }

// Len implements Value.
func (v IntVec) Len() int { return len(v) }

// String renders the vector with a trailing "i".
func (v IntVec) String() string {
	return joinNums(len(v), "`int$()", "i", func(i int) string { return strings.TrimSuffix(Int(v[i]).String(), "i") })
}

// LongVec is a 64-bit integer vector (kx type 7).
type LongVec []int64

// Type implements Value.
func (LongVec) Type() Type { return KLong }

// Len implements Value.
func (v LongVec) Len() int { return len(v) }

// String renders the vector space-separated.
func (v LongVec) String() string {
	return joinNums(len(v), "`long$()", "", func(i int) string { return Long(v[i]).String() })
}

// RealVec is a 32-bit float vector (kx type 8).
type RealVec []float32

// Type implements Value.
func (RealVec) Type() Type { return KReal }

// Len implements Value.
func (v RealVec) Len() int { return len(v) }

// String renders the vector with a trailing "e".
func (v RealVec) String() string {
	return joinNums(len(v), "`real$()", "e", func(i int) string {
		s := Real(v[i]).String()
		return strings.TrimSuffix(s, "e")
	})
}

// FloatVec is a 64-bit float vector (kx type 9).
type FloatVec []float64

// Type implements Value.
func (FloatVec) Type() Type { return KFloat }

// Len implements Value.
func (v FloatVec) Len() int { return len(v) }

// String renders the vector space-separated.
func (v FloatVec) String() string {
	return joinNums(len(v), "`float$()", "", func(i int) string {
		x := v[i]
		if math.IsNaN(x) {
			return "0n"
		}
		return strings.TrimSuffix(Float(x).String(), "f")
	})
}

// CharVec is a character vector, i.e. a Q string (kx type 10).
type CharVec []byte

// Type implements Value.
func (CharVec) Type() Type { return KChar }

// Len implements Value.
func (v CharVec) Len() int { return len(v) }

// String renders the string in quotes with kx escaping.
func (v CharVec) String() string {
	var b strings.Builder
	b.WriteByte('"')
	for _, c := range v {
		switch c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// SymbolVec is a symbol vector (kx type 11).
type SymbolVec []string

// Type implements Value.
func (SymbolVec) Type() Type { return KSymbol }

// Len implements Value.
func (v SymbolVec) Len() int { return len(v) }

// String renders the vector as `a`b`c.
func (v SymbolVec) String() string {
	if len(v) == 0 {
		return "`symbol$()"
	}
	var b strings.Builder
	for _, s := range v {
		b.WriteByte('`')
		b.WriteString(s)
	}
	return b.String()
}

// TemporalVec is a vector of one of the integer-backed temporal types.
// Elements are held as int64 in the unit of T; NullLong encodes nulls.
type TemporalVec struct {
	T Type // positive temporal code (KTimestamp..KTime, excluding KDatetime)
	V []int64
}

// Type implements Value.
func (v TemporalVec) Type() Type { return v.T }

// Len implements Value.
func (v TemporalVec) Len() int { return len(v.V) }

// String renders the vector space-separated in the display format of T.
func (v TemporalVec) String() string {
	if len(v.V) == 0 {
		return "`" + TypeName(v.T) + "$()"
	}
	parts := make([]string, len(v.V))
	for i, x := range v.V {
		parts[i] = formatTemporal(v.T, x)
	}
	return strings.Join(parts, " ")
}

// DatetimeVec is a vector of float-backed datetimes (kx type 15).
type DatetimeVec []float64

// Type implements Value.
func (DatetimeVec) Type() Type { return KDatetime }

// Len implements Value.
func (v DatetimeVec) Len() int { return len(v) }

// String renders the vector space-separated.
func (v DatetimeVec) String() string {
	return joinNums(len(v), "`datetime$()", "", func(i int) string { return formatDatetime(v[i]) })
}

// List is a general (mixed) list (kx type 0).
type List []Value

// Type implements Value.
func (List) Type() Type { return KList }

// Len implements Value.
func (v List) Len() int { return len(v) }

// String renders the list in (a;b;c) form.
func (v List) String() string {
	if len(v) == 0 {
		return "()"
	}
	if len(v) == 1 {
		return "enlist " + v[0].String()
	}
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = x.String()
	}
	return "(" + strings.Join(parts, ";") + ")"
}

func joinNums(n int, empty, suffix string, at func(int) string) string {
	if n == 0 {
		return empty
	}
	parts := make([]string, n)
	for i := range parts {
		parts[i] = at(i)
	}
	return strings.Join(parts, " ") + suffix
}

// Enlist wraps a single value into a one-element list of the matching vector
// type where possible, falling back to a general list.
func Enlist(v Value) Value {
	switch x := v.(type) {
	case Bool:
		return BoolVec{bool(x)}
	case Byte:
		return ByteVec{byte(x)}
	case Short:
		return ShortVec{int16(x)}
	case Int:
		return IntVec{int32(x)}
	case Long:
		return LongVec{int64(x)}
	case Real:
		return RealVec{float32(x)}
	case Float:
		return FloatVec{float64(x)}
	case Char:
		return CharVec{byte(x)}
	case Symbol:
		return SymbolVec{string(x)}
	case Temporal:
		return TemporalVec{T: x.T, V: []int64{x.V}}
	case Datetime:
		return DatetimeVec{float64(x)}
	default:
		return List{v}
	}
}
