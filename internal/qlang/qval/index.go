package qval

// Index returns element i of a vector, list, table or dict. Out-of-range
// indexes return the type's null, matching Q indexing semantics. Indexing an
// atom returns the atom itself (atoms behave as infinitely replicated in Q).
func Index(v Value, i int) Value {
	n := v.Len()
	if n < 0 {
		return v
	}
	oob := i < 0 || i >= n
	switch x := v.(type) {
	case BoolVec:
		if oob {
			return Bool(false)
		}
		return Bool(x[i])
	case ByteVec:
		if oob {
			return Byte(0)
		}
		return Byte(x[i])
	case ShortVec:
		if oob {
			return Short(NullShort)
		}
		return Short(x[i])
	case IntVec:
		if oob {
			return Int(NullInt)
		}
		return Int(x[i])
	case LongVec:
		if oob {
			return Long(NullLong)
		}
		return Long(x[i])
	case RealVec:
		if oob {
			return Null(KReal)
		}
		return Real(x[i])
	case FloatVec:
		if oob {
			return Null(KFloat)
		}
		return Float(x[i])
	case CharVec:
		if oob {
			return Char(' ')
		}
		return Char(x[i])
	case SymbolVec:
		if oob {
			return Symbol("")
		}
		return Symbol(x[i])
	case TemporalVec:
		if oob {
			return Temporal{T: x.T, V: NullLong}
		}
		return Temporal{T: x.T, V: x.V[i]}
	case DatetimeVec:
		if oob {
			return Null(KDatetime)
		}
		return Datetime(x[i])
	case List:
		if oob {
			return Long(NullLong)
		}
		return x[i]
	case *Table:
		if oob {
			i = 0 // Row of an empty table is undefined; avoid panics
			if n == 0 {
				return x.Row(-1)
			}
		}
		return x.Row(i)
	default:
		return v
	}
}

// TakeIndexes gathers the elements of v at the given positions into a new
// vector of the same type. Out-of-range positions become nulls.
func TakeIndexes(v Value, idx []int) Value {
	n := v.Len()
	switch x := v.(type) {
	case BoolVec:
		out := make(BoolVec, len(idx))
		for k, i := range idx {
			if i >= 0 && i < n {
				out[k] = x[i]
			}
		}
		return out
	case ByteVec:
		out := make(ByteVec, len(idx))
		for k, i := range idx {
			if i >= 0 && i < n {
				out[k] = x[i]
			}
		}
		return out
	case ShortVec:
		out := make(ShortVec, len(idx))
		for k, i := range idx {
			if i >= 0 && i < n {
				out[k] = x[i]
			} else {
				out[k] = NullShort
			}
		}
		return out
	case IntVec:
		out := make(IntVec, len(idx))
		for k, i := range idx {
			if i >= 0 && i < n {
				out[k] = x[i]
			} else {
				out[k] = NullInt
			}
		}
		return out
	case LongVec:
		out := make(LongVec, len(idx))
		for k, i := range idx {
			if i >= 0 && i < n {
				out[k] = x[i]
			} else {
				out[k] = NullLong
			}
		}
		return out
	case RealVec:
		out := make(RealVec, len(idx))
		nul := Null(KReal).(Real)
		for k, i := range idx {
			if i >= 0 && i < n {
				out[k] = x[i]
			} else {
				out[k] = float32(nul)
			}
		}
		return out
	case FloatVec:
		out := make(FloatVec, len(idx))
		nul := float64(Null(KFloat).(Float))
		for k, i := range idx {
			if i >= 0 && i < n {
				out[k] = x[i]
			} else {
				out[k] = nul
			}
		}
		return out
	case CharVec:
		out := make(CharVec, len(idx))
		for k, i := range idx {
			if i >= 0 && i < n {
				out[k] = x[i]
			} else {
				out[k] = ' '
			}
		}
		return out
	case SymbolVec:
		out := make(SymbolVec, len(idx))
		for k, i := range idx {
			if i >= 0 && i < n {
				out[k] = x[i]
			}
		}
		return out
	case TemporalVec:
		out := TemporalVec{T: x.T, V: make([]int64, len(idx))}
		for k, i := range idx {
			if i >= 0 && i < n {
				out.V[k] = x.V[i]
			} else {
				out.V[k] = NullLong
			}
		}
		return out
	case DatetimeVec:
		out := make(DatetimeVec, len(idx))
		nul := float64(Null(KFloat).(Float))
		for k, i := range idx {
			if i >= 0 && i < n {
				out[k] = x[i]
			} else {
				out[k] = nul
			}
		}
		return out
	case List:
		out := make(List, len(idx))
		for k, i := range idx {
			if i >= 0 && i < n {
				out[k] = x[i]
			} else {
				out[k] = Long(NullLong)
			}
		}
		return out
	case *Table:
		return x.Take(idx)
	default:
		return v
	}
}

func sliceVec(v Value, lo, hi int) Value {
	switch x := v.(type) {
	case BoolVec:
		return x[lo:hi]
	case ByteVec:
		return x[lo:hi]
	case ShortVec:
		return x[lo:hi]
	case IntVec:
		return x[lo:hi]
	case LongVec:
		return x[lo:hi]
	case RealVec:
		return x[lo:hi]
	case FloatVec:
		return x[lo:hi]
	case CharVec:
		return x[lo:hi]
	case SymbolVec:
		return x[lo:hi]
	case TemporalVec:
		return TemporalVec{T: x.T, V: x.V[lo:hi]}
	case DatetimeVec:
		return x[lo:hi]
	case List:
		return x[lo:hi]
	default:
		return v
	}
}

// AppendAtom appends atom a to vector v, widening to a general list when the
// types are incompatible, and returns the extended vector.
func AppendAtom(v Value, a Value) Value {
	switch x := v.(type) {
	case BoolVec:
		if b, ok := a.(Bool); ok {
			return append(x, bool(b))
		}
	case ByteVec:
		if b, ok := a.(Byte); ok {
			return append(x, byte(b))
		}
	case ShortVec:
		if b, ok := a.(Short); ok {
			return append(x, int16(b))
		}
	case IntVec:
		if b, ok := a.(Int); ok {
			return append(x, int32(b))
		}
	case LongVec:
		if b, ok := a.(Long); ok {
			return append(x, int64(b))
		}
	case RealVec:
		if b, ok := a.(Real); ok {
			return append(x, float32(b))
		}
	case FloatVec:
		if b, ok := a.(Float); ok {
			return append(x, float64(b))
		}
	case CharVec:
		if b, ok := a.(Char); ok {
			return append(x, byte(b))
		}
	case SymbolVec:
		if b, ok := a.(Symbol); ok {
			return append(x, string(b))
		}
	case TemporalVec:
		if b, ok := a.(Temporal); ok && b.T == x.T {
			return TemporalVec{T: x.T, V: append(x.V, b.V)}
		}
	case DatetimeVec:
		if b, ok := a.(Datetime); ok {
			return append(x, float64(b))
		}
	case List:
		return append(x, a)
	}
	// widen
	n := v.Len()
	out := make(List, 0, n+1)
	for i := 0; i < n; i++ {
		out = append(out, Index(v, i))
	}
	return append(out, a)
}

// FromAtoms packs a slice of atoms into the narrowest vector that can hold
// them: a typed vector when all share a type, otherwise a general list. An
// empty input produces an empty general list.
func FromAtoms(atoms []Value) Value {
	if len(atoms) == 0 {
		return List{}
	}
	t := atoms[0].Type()
	uniform := true
	for _, a := range atoms[1:] {
		if a.Type() != t {
			uniform = false
			break
		}
	}
	if !uniform || t >= 0 {
		return append(List{}, atoms...)
	}
	out := EmptyVec(-t)
	for _, a := range atoms {
		out = AppendAtom(out, a)
	}
	return out
}

// EmptyVec returns an empty typed vector for the given vector type code.
func EmptyVec(t Type) Value {
	if t < 0 {
		t = -t
	}
	switch t {
	case KBool:
		return BoolVec{}
	case KByte:
		return ByteVec{}
	case KShort:
		return ShortVec{}
	case KInt:
		return IntVec{}
	case KLong:
		return LongVec{}
	case KReal:
		return RealVec{}
	case KFloat:
		return FloatVec{}
	case KChar:
		return CharVec{}
	case KSymbol:
		return SymbolVec{}
	case KTimestamp, KMonth, KDate, KTimespan, KMinute, KSecond, KTime:
		return TemporalVec{T: t, V: []int64{}}
	case KDatetime:
		return DatetimeVec{}
	default:
		return List{}
	}
}

// Til returns the long vector 0 1 ... n-1, Q's til primitive.
func Til(n int64) LongVec {
	out := make(LongVec, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}
