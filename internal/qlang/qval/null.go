package qval

import "math"

// Per-type null payloads, following kdb+ conventions: integer nulls are the
// minimum value of the width, float nulls are NaN, the symbol null is the
// empty symbol, the char null is a blank.
const (
	NullShort = int16(math.MinInt16)
	NullInt   = int32(math.MinInt32)
	NullLong  = int64(math.MinInt64)
)

// Infinity payloads (0W per type).
const (
	InfShort = int16(math.MaxInt16)
	InfInt   = int32(math.MaxInt32)
	InfLong  = int64(math.MaxInt64)
)

// Null returns the null atom of the given type code (vector code or its
// negation). Types without a dedicated null (boolean, byte) return their
// zero value, matching kdb+.
func Null(t Type) Value {
	if t < 0 {
		t = -t
	}
	switch t {
	case KBool:
		return Bool(false)
	case KByte:
		return Byte(0)
	case KShort:
		return Short(NullShort)
	case KInt:
		return Int(NullInt)
	case KLong, KList:
		return Long(NullLong)
	case KReal:
		return Real(float32(math.NaN()))
	case KFloat:
		return Float(math.NaN())
	case KChar:
		return Char(' ')
	case KSymbol:
		return Symbol("")
	case KDatetime:
		return Datetime(math.NaN())
	case KTimestamp, KMonth, KDate, KTimespan, KMinute, KSecond, KTime:
		return Temporal{T: t, V: NullLong}
	default:
		return Identity
	}
}

// IsNull reports whether v is the null of its type. Q uses two-valued logic:
// nulls are ordinary values that compare equal to each other (paper §2.2),
// so this predicate is all that is needed — there is no "unknown" state.
func IsNull(v Value) bool {
	switch x := v.(type) {
	case Short:
		return int16(x) == NullShort
	case Int:
		return int32(x) == NullInt
	case Long:
		return int64(x) == NullLong
	case Real:
		return math.IsNaN(float64(x))
	case Float:
		return math.IsNaN(float64(x))
	case Char:
		return x == ' '
	case Symbol:
		return x == ""
	case Temporal:
		return x.V == NullLong
	case Datetime:
		return math.IsNaN(float64(x))
	default:
		return false
	}
}

// NullAt reports whether element i of vector v is null. Atoms and compound
// values report false.
func NullAt(v Value, i int) bool {
	switch x := v.(type) {
	case ShortVec:
		return x[i] == NullShort
	case IntVec:
		return x[i] == NullInt
	case LongVec:
		return x[i] == NullLong
	case RealVec:
		return math.IsNaN(float64(x[i]))
	case FloatVec:
		return math.IsNaN(x[i])
	case CharVec:
		return x[i] == ' '
	case SymbolVec:
		return x[i] == ""
	case TemporalVec:
		return x.V[i] == NullLong
	case DatetimeVec:
		return math.IsNaN(x[i])
	case List:
		return IsNull(x[i])
	default:
		return false
	}
}
