package qval

// Dict is a Q dictionary (kx type 99): an ordered mapping from a key list to
// a value list of the same length. Keyed tables are dictionaries whose Keys
// and Vals are both tables, exactly as in kdb+.
type Dict struct {
	Keys Value // a vector or general list (or a *Table for keyed tables)
	Vals Value // same length as Keys
}

// Type implements Value.
func (*Dict) Type() Type { return KDict }

// Len implements Value; the length of a dict is its key count.
func (d *Dict) Len() int { return d.Keys.Len() }

// String renders the dict as keys!vals.
func (d *Dict) String() string { return d.Keys.String() + "!" + d.Vals.String() }

// NewDict builds a dictionary after validating that keys and values have
// equal lengths; it panics on mismatch, mirroring kdb+'s 'length error.
func NewDict(keys, vals Value) *Dict {
	if keys.Len() != vals.Len() {
		panic(&QError{Msg: "length"})
	}
	return &Dict{Keys: keys, Vals: vals}
}

// Lookup returns the value stored under key, or the null of the value list's
// element type when the key is absent (Q indexing semantics).
func (d *Dict) Lookup(key Value) Value {
	n := d.Keys.Len()
	for i := 0; i < n; i++ {
		if EqualValues(Index(d.Keys, i), key) {
			return Index(d.Vals, i)
		}
	}
	return Null(elemType(d.Vals))
}

// IsKeyedTable reports whether the dict represents a keyed table (both
// sides are tables).
func (d *Dict) IsKeyedTable() bool {
	_, kt := d.Keys.(*Table)
	_, vt := d.Vals.(*Table)
	return kt && vt
}

// QError is a Q-level error value, rendered as 'msg like kdb+ errors.
type QError struct {
	Msg string
}

// Type implements Value.
func (*QError) Type() Type { return KError }

// Len implements Value.
func (*QError) Len() int { return -1 }

// String renders the error with the leading quote kdb+ uses.
func (e *QError) String() string { return "'" + e.Msg }

// Error implements the error interface so QError values can travel through
// Go error returns as well as through Q results.
func (e *QError) Error() string { return "'" + e.Msg }

// Errorf builds a QError from a preformatted message.
func Errorf(msg string) *QError { return &QError{Msg: msg} }

func elemType(v Value) Type {
	t := v.Type()
	if t > 0 && t <= KTime {
		return t
	}
	return KLong
}
