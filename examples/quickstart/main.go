// Quickstart: translate a Q query to SQL and run it end-to-end against the
// embedded PostgreSQL-dialect backend, entirely in-process.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"hyperq/internal/core"
	"hyperq/internal/pgdb"
	"hyperq/internal/qlang/qval"
)

func main() {
	ctx := context.Background()
	// 1. Start an embedded PG-compatible backend and load a Q table into it.
	db := pgdb.NewDB()
	backend := core.NewDirectBackend(db)
	trades := qval.NewTable(
		[]string{"Symbol", "Time", "Price", "Size"},
		[]qval.Value{
			qval.SymbolVec{"GOOG", "IBM", "GOOG", "IBM", "GOOG"},
			qval.TemporalVec{T: qval.KTime, V: []int64{
				34200000, 34201000, 34202000, 34203000, 34204000}},
			qval.FloatVec{740.10, 150.55, 740.35, 150.60, 740.20},
			qval.LongVec{100, 200, 300, 400, 500},
		})
	if err := core.LoadQTable(ctx, backend, "trades", trades); err != nil {
		log.Fatal(err)
	}

	// 2. Open a Hyper-Q session.
	platform := core.NewPlatform()
	session := platform.NewSession(backend, core.Config{})
	defer session.Close()

	// 3. Show the translation: Q in, SQL out.
	q := "select mx:max Price, vol:sum Size by Symbol from trades where Price>100"
	sql, _, err := session.Translate(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q:  ", q)
	fmt.Println("SQL:", sql)
	fmt.Println()

	// 4. Run it for real and print the Q-side result.
	v, stats, err := session.Run(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v)
	fmt.Printf("translation %v (parse %v, bind %v, optimize %v, serialize %v), execution %v\n",
		stats.Stages.Translation(), stats.Stages.Parse, stats.Stages.Bind,
		stats.Stages.Xform, stats.Stages.Serialize, stats.Execute)
}
