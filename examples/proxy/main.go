// Proxy: the full network deployment of Figure 1, in one process for
// demonstration. It starts (a) the embedded PG-compatible database behind a
// real PG v3 TCP server, (b) the Hyper-Q proxy listening on a QIPC port and
// connecting to the database through the Gateway, and (c) a Q application
// that performs the QIPC handshake and sends sync queries — three actual
// TCP connections, every byte crossing real sockets in both wire formats.
//
//	go run ./examples/proxy
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"hyperq/internal/core"
	"hyperq/internal/endpoint"
	"hyperq/internal/gateway"
	"hyperq/internal/pgdb"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/taq"
	"hyperq/internal/wire/pgv3"
	"hyperq/internal/wire/qipc"
	"hyperq/internal/xc"
)

func main() {
	// --- backend: embedded engine behind a PG v3 server with MD5 auth ---
	db := pgdb.NewDB()
	loader := core.NewDirectBackend(db)
	data := taq.Generate(taq.Config{Seed: 5, Trades: 5000})
	for _, t := range []struct {
		name string
		tbl  *qval.Table
	}{{"trades", data.Trades}, {"quotes", data.Quotes}, {"daily", data.Daily}} {
		if err := core.LoadQTable(context.Background(), loader, t.name, t.tbl); err != nil {
			log.Fatal(err)
		}
	}
	pgL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go pgdb.Serve(context.Background(), pgL, db, pgdb.AuthConfig{
		Method: pgv3.AuthMethodMD5,
		Users:  map[string]string{"hyperq": "s3cret"},
	})
	fmt.Println("pg backend  :", pgL.Addr(), "(PG v3, MD5 auth)")

	// --- Hyper-Q proxy: QIPC in, PG v3 out ---
	platform := core.NewPlatform()
	qL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go endpoint.Serve(context.Background(), qL, endpoint.Config{
		Auth: func(user, pass string) bool { return user == "trader" && pass == "moneybags" },
		NewHandler: func(creds *qipc.Credentials) (endpoint.Handler, func(), error) {
			gw, err := gateway.Dial(context.Background(), pgL.Addr().String(), "hyperq", "s3cret", "hyperq")
			if err != nil {
				return nil, nil, err
			}
			session := platform.NewSession(gw, core.Config{})
			compiler := xc.New(session)
			h := endpoint.HandlerFunc(func(ctx context.Context, q string) (qval.Value, error) {
				v, _, err := compiler.HandleQuery(ctx, q)
				return v, err
			})
			return h, func() { session.Close() }, nil
		},
	})
	fmt.Println("hyperq proxy:", qL.Addr(), "(QIPC)")

	// --- the Q application: dials the "kdb+" port, none the wiser ---
	conn, err := net.Dial("tcp", qL.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	if err := qipc.ClientHandshake(conn, "trader", "moneybags"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("q app       : handshake accepted")
	fmt.Println()

	ask := func(q string) {
		if err := qipc.WriteMessage(conn, qipc.Sync, qval.CharVec(q)); err != nil {
			log.Fatal(err)
		}
		msg, err := qipc.ReadMessage(conn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("q)", q)
		fmt.Println(msg.Value)
	}

	ask("select n:count Price, hi:max Price by Symbol from trades")
	ask("aj[`Symbol`Time; select Symbol, Time, Price from trades where Symbol=`AAPL; select Symbol, Time, Bid, Ask from quotes]")
	ask("select from daily")
}
