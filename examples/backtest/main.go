// Backtest: the historical-analytics scenario that motivates the paper —
// the same Q code a trading desk runs in real time against kdb+ executes
// unchanged against the scale-out SQL backend for backtesting over history.
// This example computes per-symbol VWAP benchmarks and evaluates a simple
// "buy below VWAP" fill-quality rule, entirely in Q, through Hyper-Q.
//
//	go run ./examples/backtest
package main

import (
	"context"
	"fmt"
	"log"

	"hyperq/internal/core"
	"hyperq/internal/pgdb"
	"hyperq/internal/qlang/qval"
	"hyperq/internal/taq"
	"hyperq/internal/workload"
)

func main() {
	ctx := context.Background()
	db := pgdb.NewDB()
	backend := core.NewDirectBackend(db)
	// a bigger "historical" data set than a single in-memory day
	if _, err := workload.Setup(ctx, backend, taq.Config{Seed: 7, Trades: 30000}); err != nil {
		log.Fatal(err)
	}
	session := core.NewPlatform().NewSession(backend, core.Config{})
	defer session.Close()

	run := func(q string) qval.Value {
		v, _, err := session.Run(ctx, q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		return v
	}

	fmt.Println("== per-symbol VWAP benchmark (analytical aggregate over history) ==")
	fmt.Println(run("select vwap:Size wavg Price, vol:sum Size by Symbol from trades"))

	fmt.Println("== intraday volume profile, 15-minute buckets, AAPL ==")
	fmt.Println(run("select vol:sum Size by bucket:900000 xbar Time from trades where Symbol=`AAPL"))

	// a Q function, exactly as an analyst would define on a kdb+ server;
	// Hyper-Q stores the definition and unrolls it on each invocation
	// (paper §4.3), materializing the local variable as a temp table
	fmt.Println("== fill-quality function, unrolled per symbol ==")
	run("fillq:{[s] dt: select Price, Size from trades where Symbol=s; :select worst:max Price, best:min Price, avgpx:avg Price from dt;}")
	for _, sym := range []string{"AAPL", "GOOG", "JPM"} {
		fmt.Printf("-- fillq[`%s]\n", sym)
		fmt.Println(run(fmt.Sprintf("fillq[`%s]", sym)))
	}

	fmt.Println("== enriched execution report: trades joined to daily stats and sector ==")
	fmt.Println(run("select Symbol, Price, Size, Close, Sector from trades lj daily lj refdata where Size>4500"))
}
