// As-of join: the paper's Example 1 — "a standard point-in-time query to
// get the prevailing quote as of each trade", described as one of the most
// commonly used queries by financial market analysts. The example runs the
// query both on the kdb+ substrate (the real-time baseline) and through
// Hyper-Q against the SQL backend, then uses the side-by-side framework
// (paper §5) to verify the two agree.
//
//	go run ./examples/asofjoin
package main

import (
	"context"
	"fmt"
	"log"

	"hyperq/internal/core"
	"hyperq/internal/pgdb"
	"hyperq/internal/qlang/interp"
	"hyperq/internal/sidebyside"
	"hyperq/internal/taq"
)

func main() {
	ctx := context.Background()
	// synthetic TAQ market data (stand-in for NYSE TAQ)
	data := taq.Generate(taq.Config{
		Seed: 2016, Trades: 2000, Quotes: 4000,
		Symbols: []string{"GOOG", "IBM", "AAPL"},
	})

	// the two worlds: a kdb+ substrate and a Hyper-Q session over SQL
	kdb := interp.New()
	db := pgdb.NewDB()
	backend := core.NewDirectBackend(db)
	session := core.NewPlatform().NewSession(backend, core.Config{})
	defer session.Close()

	fw := sidebyside.New(kdb, session, backend)
	if err := fw.LoadTable(ctx, "trades", data.Trades); err != nil {
		log.Fatal(err)
	}
	if err := fw.LoadTable(ctx, "quotes", data.Quotes); err != nil {
		log.Fatal(err)
	}

	// Example 1, adapted to the generated schema: prevailing quote as of
	// each GOOG trade
	q := "aj[`Symbol`Time; select Symbol, Time, Price, Size from trades where Symbol=`GOOG; select Symbol, Time, Bid, Ask from quotes]"

	sql, _, err := session.Translate(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q query (paper Example 1):")
	fmt.Println(" ", q)
	fmt.Println("\ntranslates to the left-outer-join + window SQL of Figure 2:")
	fmt.Println(" ", truncate(sql, 240))
	fmt.Println()

	rep, err := fw.Compare(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("side-by-side verdict:", verdict(rep.Match))
	if rep.HyperQResult != nil {
		fmt.Println("\nfirst rows through Hyper-Q:")
		fmt.Println(rep.HyperQResult.Slice(0, min(5, rep.HyperQResult.Len())))
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + " ..."
}

func verdict(ok bool) string {
	if ok {
		return "MATCH — kdb+ substrate and Hyper-Q/SQL agree row for row"
	}
	return "MISMATCH"
}
