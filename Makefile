GO ?= go

.PHONY: all build vet test race tier1 bench bench-storage bench-e2e bench-shard bench-persist profile qdiff fmt

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l .

tier1: build vet test race

# bench measures the embedded executor (interpreted vs compiled vs
# vectorized engine) over a 100k-row fact table and refreshes
# BENCH_pgdb.json. The file is committed as a non-gating before/after
# artifact; CI also prints the Go benchmark output for the same cases.
bench:
	$(GO) run ./cmd/benchfig -bench -out BENCH_pgdb.json
	$(GO) test ./internal/pgdb/ -run '^$$' -bench PgdbExec -benchtime 2x

# bench-storage is the columnar-storage acceptance view of the same
# measurement: it refreshes BENCH_pgdb.json and prints the per-op speedup of
# the vectorized engine over the compiled row engine.
bench-storage:
	$(GO) run ./cmd/benchfig -bench -out BENCH_pgdb.json

# bench-e2e measures the result pipeline (columnar builders vs text
# round-trip) end to end — typed conversion, PG v3 wire decode, and a full
# QIPC serve loop — and refreshes BENCH_e2e.json, the committed non-gating
# before/after artifact. The go test line prints the same cases as standard
# benchmark output.
bench-e2e:
	$(GO) run ./cmd/benchfig -bench-e2e -out BENCH_e2e.json
	$(GO) test -run '^$$' -bench 'ResultPipeline|ServeTrade' -benchtime 2x .

# bench-shard measures scatter-gather scaling: the same queries against a
# single backend and 1/2/4/8-shard embedded clusters, each member's
# per-statement Delay proportional to its data share (modeled remote scan +
# shipping). Refreshes BENCH_shard.json, committed as a non-gating artifact.
bench-shard:
	$(GO) run ./cmd/benchfig -bench-shard -out BENCH_shard.json

# bench-persist measures the durable-storage layer over a 1M-row
# date-partitioned table: WAL append throughput per sync mode, the cold-open
# pruned scan against the fully resident baseline (zone maps from the
# manifest prune to one partition before any column data is read), the
# unpruned cold scan for contrast, catalog-open latency, and the
# evict/reload steady state. Refreshes BENCH_persist.json, committed as a
# non-gating artifact.
bench-persist:
	$(GO) run ./cmd/benchfig -bench-persist -bench-rows 1000000 -out BENCH_persist.json

# profile captures CPU and allocation profiles of the result-pipeline
# benchmarks and prints the hottest frames; inspect interactively with
# `go tool pprof cpu.prof` / `go tool pprof -alloc_objects mem.prof`.
profile:
	$(GO) test -run '^$$' -bench 'ResultPipeline|ServeTrade' -benchtime 20x \
		-cpuprofile cpu.prof -memprofile mem.prof .
	$(GO) tool pprof -top -nodecount 15 cpu.prof
	$(GO) tool pprof -top -nodecount 15 -alloc_objects mem.prof

# qdiff replays the differential fuzzer at the CI seeds against the compiled
# engine, plus one interpreted-engine run to pin the retained AST walker,
# a vectorized sweep pinning the columnar batch executor, and a 3-shard
# cluster sweep pinning the scatter-gather backend.
qdiff:
	$(GO) run ./cmd/qdiff -seed 1 -n 10000 -shrink > /dev/null
	$(GO) run ./cmd/qdiff -seed 2 -n 10000 -shrink > /dev/null
	$(GO) run ./cmd/qdiff -seed 7 -n 10000 -shrink > /dev/null
	$(GO) run ./cmd/qdiff -seed 42 -n 10000 -shrink > /dev/null
	$(GO) run ./cmd/qdiff -seed 1 -n 10000 -exec interpreted > /dev/null
	for s in 1 2 7 42; do $(GO) run ./cmd/qdiff -seed $$s -n 10000 -exec vectorized -shrink > /dev/null; done
	for s in 1 2 7 42; do $(GO) run ./cmd/qdiff -seed $$s -n 10000 -shards 3 -shrink > /dev/null; done
	for s in 1 2 7 42; do $(GO) run ./cmd/qdiff -seed $$s -n 10000 -persist -shrink > /dev/null; done
