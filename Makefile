GO ?= go

.PHONY: all build vet test race tier1 bench qdiff fmt

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l .

tier1: build vet test race

# bench measures the embedded executor (interpreted vs compiled engine) over
# a 100k-row fact table and refreshes BENCH_pgdb.json. The file is committed
# as a non-gating before/after artifact; CI also prints the Go benchmark
# output for the same cases.
bench:
	$(GO) run ./cmd/benchfig -bench -out BENCH_pgdb.json
	$(GO) test ./internal/pgdb/ -run '^$$' -bench PgdbExec -benchtime 2x

# qdiff replays the differential fuzzer at the CI seeds against the compiled
# engine, plus one interpreted-engine run to pin the retained AST walker.
qdiff:
	$(GO) run ./cmd/qdiff -seed 1 -n 10000 -shrink > /dev/null
	$(GO) run ./cmd/qdiff -seed 2 -n 10000 -shrink > /dev/null
	$(GO) run ./cmd/qdiff -seed 7 -n 10000 -shrink > /dev/null
	$(GO) run ./cmd/qdiff -seed 42 -n 10000 -shrink > /dev/null
	$(GO) run ./cmd/qdiff -seed 1 -n 10000 -exec interpreted > /dev/null
